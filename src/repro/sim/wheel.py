"""Event-queue back ends: the classic heap and the hierarchical timer wheel.

The kernel's scheduling contract is simple and absolute: events are
processed in ``(time, eid)`` order, where ``eid`` is assigned in
scheduling order — so simultaneous events fire FIFO.  Every back end
here implements exactly that contract, which is why swapping one for
the other is digest-invisible (the determinism checker verifies it on
every registered scenario).

Two implementations:

- :class:`HeapQueue` — the seed kernel's single ``heapq`` of
  ``(time, eid, event)`` tuples.  O(log n) per operation, C-accelerated,
  and the A/B baseline for the wheel.
- :class:`TimerWheel` — a two-level bucketed wheel with an overflow
  heap, tuned for the repository's actual load: most events are either
  *immediate* (``succeed``/``fail`` at the current time), *near-future*
  (sub-second network latencies and compute costs), or *far-future*
  (TTL expirations, lease sweeps, refresh-ahead deferrals).  Layout:

  - an **immediate deque** for entries scheduled at the current time —
    the ``delay == 0`` fast path is one ``list.append``-class operation,
    no heap or bucket work at all;
  - a **fine wheel** of ``SLOTS`` one-millisecond buckets covering the
    next ~quarter second; a bucket is sorted once, when the cursor
    reaches it, so insertion is an append and ordering cost is one
    timsort over an already-mostly-ordered small list;
  - a **coarse level** of ~quarter-second epoch buckets (a dict keyed
    by epoch index) holding everything beyond the fine horizon, with a
    **heap of epoch indices** as the far-future overflow structure.
    When the fine wheel drains, the next epoch is popped and scattered
    into fine buckets (one ``rotation``).

  Scheduling is O(1) amortized; the only log factor left is the epoch
  heap, whose size is the number of distinct ~quarter-second epochs
  with pending events — thousands of times smaller than the event
  count that dominates the seed heap.

Entries never compare beyond ``eid`` (eids are unique), so the
``Event`` in slot 2 of an entry tuple is never ordered.
"""

from __future__ import annotations

import typing
from bisect import insort
from collections import deque
from heapq import heappop, heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: One queue entry: (absolute time ms, eid, event).
Entry = typing.Tuple[float, int, "Event"]

_INF = float("inf")


class HeapQueue:
    """The seed kernel's queue: one binary heap of (time, eid, event)."""

    __slots__ = ("_heap", "low_push")

    #: Wheel-only instrumentation, zero here so callers can read the
    #: same attributes off either back end.
    rotations = 0
    fastpath_schedules = 0

    def __init__(self, now: float = 0.0):
        self._heap: typing.List[Entry] = []
        #: Lowest time pushed since the last :meth:`take_batch` — the
        #: kernel's batched drain reads it to detect a mid-batch push
        #: that could belong before the batch's unprocessed suffix.
        self.low_push = _INF

    def push(self, time: float, eid: int, event: "Event") -> None:
        if time < self.low_push:
            self.low_push = time
        heappush(self._heap, (time, eid, event))

    def pop(self) -> typing.Optional[Entry]:
        heap = self._heap
        if not heap:
            return None
        return heappop(heap)

    def peek(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def take_batch(self) -> typing.Optional[typing.List[Entry]]:
        """Detach the maximal same-timestamp cohort, in (time, eid) order."""
        heap = self._heap
        if not heap:
            return None
        self.low_push = _INF
        entry = heappop(heap)
        batch = [entry]
        time = entry[0]
        while heap and heap[0][0] == time:
            batch.append(heappop(heap))
        return batch

    def requeue(self, batch: typing.List[Entry], start: int) -> None:
        """Return ``batch[start:]`` (unprocessed suffix) to the queue."""
        heap = self._heap
        for index in range(start, len(batch)):
            heappush(heap, batch[index])

    def __len__(self) -> int:
        return len(self._heap)


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: a bijective 64-bit avalanche mix.

    Bijectivity is what the perturbed queue needs — distinct eids map
    to distinct keys, so the permuted tie-break order is still a total
    order and no entry ever compares into the :class:`Event` slot.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class PerturbedHeapQueue(HeapQueue):
    """A heap queue whose same-timestamp tie-break is a seeded shuffle.

    The kernel's contract is ``(time, eid)`` order: simultaneous events
    fire FIFO.  Real systems make no such promise — two messages due at
    the same instant can be delivered either way — so code that is only
    correct because of the FIFO tie-break is relying on an accident of
    the scheduler.  This queue replaces the eid tie-break with
    ``_mix64(eid ^ salt)``, a seed-keyed permutation: event *times* are
    untouched (the virtual clock reads identically), but every
    same-timestamp cohort drains in a seed-dependent shuffled order.
    Each seed yields one fixed, replayable order, so a perturbed run is
    exactly as deterministic as a plain one.

    Used by the hnsracer confirmation mode
    (:mod:`repro.analysis.perturb`); never a default.  The timer wheel
    and the kernel's batched drain both lean on the "eids grow" half of
    the contract, which the shuffle deliberately breaks — so perturbed
    environments always run this heap back end through the kernel's
    ``step()`` loop.
    """

    __slots__ = ("perturb_seed", "_salt")

    def __init__(self, now: float = 0.0, perturb_seed: int = 0):
        super().__init__(now)
        self.perturb_seed = perturb_seed
        self._salt = _mix64(perturb_seed ^ 0x9E3779B97F4A7C15)

    def push(self, time: float, eid: int, event: "Event") -> None:
        if time < self.low_push:
            self.low_push = time
        heappush(self._heap, (time, _mix64(eid ^ self._salt), event))


class TimerWheel:
    """Two-level timer wheel + overflow heap (see module docstring).

    The ordering contract is the global ``(time, eid)`` order.  The
    structural invariants that deliver it:

    - ``_immediate`` holds entries pushed with ``time <= _qnow``; the
      clock never goes backward and eids grow, so the deque is already
      sorted by ``(time, eid)`` and its head is minimal among them.
      Any remaining fine/coarse entry is *strictly* later in time than
      the immediate head, so the only head-to-head comparison needed is
      immediate-vs-active.
    - ``_active`` is the current fine bucket, sorted, consumed from
      ``_pos``.  Entries landing at or before the cursor's tick (which
      can happen after ``run(until=<float>)`` parks the clock past the
      last pop) are ``insort``-ed into it; they always land at or after
      ``_pos`` because their times exceed every consumed entry's.
    - fine buckets strictly after the cursor hold ticks in
      ``(cursor, SLOTS)`` relative to ``_base``; coarse epochs hold
      everything later; the epoch heap yields epochs in order.
    """

    __slots__ = (
        "_qnow",
        "_base",
        "_cursor",
        "_fine",
        "_occ",
        "_active",
        "_pos",
        "_immediate",
        "_coarse",
        "_epochs",
        "_n",
        "rotations",
        "fastpath_schedules",
        "low_push",
    )

    #: Fine buckets per rotation; one bucket spans 1 simulated ms, so
    #: the fine horizon is ~a quarter second — sized to hold the
    #: sub-second latency/compute events that dominate between TTL
    #: sweeps.
    SLOTS = 256
    SHIFT = 8  # log2(SLOTS): epoch index = tick >> SHIFT

    def __init__(self, now: float = 0.0):
        tick = int(now)
        self._qnow = now
        self._base = (tick >> self.SHIFT) << self.SHIFT
        self._cursor = tick - self._base
        self._fine: typing.List[typing.List[Entry]] = [
            [] for _ in range(self.SLOTS)
        ]
        #: Bitmask of occupied fine buckets — bit ``i`` set iff
        #: ``_fine[i]`` is nonempty.  All set bits are strictly past the
        #: cursor, so ``_settle`` finds the next occupied bucket with
        #: one shift and one lowest-set-bit extraction instead of a
        #: Python-level scan over empty slots.
        self._occ = 0
        self._active: typing.List[Entry] = []
        self._pos = 0
        self._immediate: typing.Deque[Entry] = deque()
        self._coarse: typing.Dict[int, typing.List[Entry]] = {}
        self._epochs: typing.List[int] = []
        self._n = 0
        #: Fine-wheel refills from the coarse level (diagnostics).
        self.rotations = 0
        #: Entries that took the immediate (delay == 0) fast path.
        self.fastpath_schedules = 0
        #: Lowest time pushed since the last :meth:`take_batch` — the
        #: kernel's batched drain reads it to detect a mid-batch push
        #: that could belong before the batch's unprocessed suffix.
        self.low_push = _INF

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: float, eid: int, event: "Event") -> None:
        self._n += 1
        if time < self.low_push:
            self.low_push = time
        entry = (time, eid, event)
        if time <= self._qnow:
            # The succeed()/fail()/timeout(0) fast path: no bucket math.
            self._immediate.append(entry)
            self.fastpath_schedules += 1
            return
        offset = int(time) - self._base
        if offset <= self._cursor:
            insort(self._active, entry)
        elif offset < self.SLOTS:
            self._fine[offset].append(entry)
            self._occ |= 1 << offset
        else:
            epoch = int(time) >> self.SHIFT
            bucket = self._coarse.get(epoch)
            if bucket is None:
                self._coarse[epoch] = [entry]
                heappush(self._epochs, epoch)
            else:
                bucket.append(entry)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def pop(self) -> typing.Optional[Entry]:
        while True:
            pos = self._pos
            active = self._active
            if pos < len(active):
                entry = active[pos]
                immediate = self._immediate
                if immediate and immediate[0] < entry:
                    entry = immediate.popleft()
                else:
                    self._pos = pos + 1
                self._n -= 1
                self._qnow = entry[0]
                return entry
            immediate = self._immediate
            if immediate:
                # Everything still in the wheel is strictly later than
                # the immediate head (see class docstring).
                entry = immediate.popleft()
                self._n -= 1
                self._qnow = entry[0]
                return entry
            if self._n == 0:
                return None
            self._settle()

    def peek(self) -> float:
        if self._pos >= len(self._active) and self._n > len(self._immediate):
            self._settle()
        head = _INF
        if self._pos < len(self._active):
            head = self._active[self._pos][0]
        immediate = self._immediate
        if immediate and immediate[0][0] < head:
            head = immediate[0][0]
        return head

    def take_batch(self) -> typing.Optional[typing.List[Entry]]:
        """Detach a sorted run of ready entries for the kernel to drain.

        The batch is everything currently due: the active bucket's
        remainder, the immediate deque, or their merge — all of it in
        global (time, eid) order *provided no new entries are pushed
        while it is processed*.  The kernel's drain loop watches
        :attr:`low_push` (reset here) and hands the unprocessed suffix
        back via :meth:`requeue` the moment a pushed entry could belong
        before it, so detachment never reorders.

        When the active bucket and immediate deque are spent, a whole
        *rotation* is promoted at once: every occupied fine bucket (in
        tick order, each sorted) is concatenated into one batch —
        consecutive sorted buckets concatenate into a sorted run, so
        this is order-exact and turns a sparse rotation's worth of
        bucket-at-a-time takes into a single detach.

        ``_qnow`` deliberately does not advance with the batch: a stale
        (lagging) ``_qnow`` only narrows the immediate fast path — a
        push at the current clock routes to the insort path instead
        (into the detached-empty active list, so it is equally cheap) —
        it can never misorder.  Advancing ``_qnow`` to the batch tail
        would be wrong: mid-batch pushes at *varying* future times would
        then all take the immediate deque, breaking its sortedness
        invariant.
        """
        self.low_push = _INF
        pos = self._pos
        active = self._active
        immediate = self._immediate
        if pos < len(active):
            if immediate:
                batch = active[pos:]
                batch.extend(immediate)
                batch.sort()
                immediate.clear()
            elif pos:
                batch = active[pos:]
            else:
                batch = active
            self._active = []
            self._pos = 0
            self._n -= len(batch)
            return batch
        if immediate:
            batch = list(immediate)
            immediate.clear()
            self._n -= len(batch)
            return batch
        if self._n == 0:
            return None
        occ = self._occ
        if not occ:
            # Fine wheel empty: the next coarse epoch *is* the next
            # batch.  Skip the scatter entirely — one sort of the epoch
            # bucket is the same (time, eid) order the fine wheel would
            # have produced tick by tick.  The cursor parks at the end
            # of the epoch window so pushes landing inside it insort
            # into the (detached-empty) active list.
            epoch = heappop(self._epochs)
            batch = self._coarse.pop(epoch)
            self._base = epoch << self.SHIFT
            self._cursor = self.SLOTS - 1
            batch.sort()
            self.rotations += 1
            self._n -= len(batch)
            return batch
        fine = self._fine
        batch = []
        extend = batch.extend
        cursor = self._cursor
        while occ:
            low = occ & -occ
            cursor = low.bit_length() - 1
            occ ^= low
            bucket = fine[cursor]
            fine[cursor] = []
            if len(bucket) > 1:
                bucket.sort()
            extend(bucket)
        self._occ = 0
        self._cursor = cursor
        self._active = []
        self._pos = 0
        self._n -= len(batch)
        return batch

    def requeue(self, batch: typing.List[Entry], start: int) -> None:
        """Return ``batch[start:]`` (unprocessed suffix) to the queue.

        Merged with whatever callbacks insorted into ``_active`` while
        the batch was detached; both runs are sorted, so the merge is a
        single near-linear timsort.
        """
        rest = batch[start:]
        self._n += len(rest)
        pos = self._pos
        active = self._active
        if pos < len(active):
            rest.extend(active[pos:] if pos else active)
            rest.sort()
        self._active = rest
        self._pos = 0

    def _settle(self) -> None:
        """Advance the cursor until ``_active`` has a head (or nothing
        but immediate entries remains)."""
        while self._pos >= len(self._active):
            occ = self._occ
            if occ:
                # Every set bit is strictly past the cursor (earlier
                # buckets were drained or insorted into the active
                # list), so the lowest set bit is the next bucket.
                low = occ & -occ
                cursor = low.bit_length() - 1
                self._occ = occ ^ low
                fine = self._fine
                bucket = fine[cursor]
                fine[cursor] = []
                if len(bucket) > 1:
                    bucket.sort()
                self._active = bucket
                self._pos = 0
                self._cursor = cursor
                return
            if self._epochs:
                epoch = heappop(self._epochs)
                entries = self._coarse.pop(epoch)
                base = epoch << self.SHIFT
                self._base = base
                self._cursor = -1
                fine = self._fine
                occ = 0
                for entry in entries:
                    index = int(entry[0]) - base
                    fine[index].append(entry)
                    occ |= 1 << index
                self._occ = occ
                self._active = []
                self._pos = 0
                self.rotations += 1
                continue
            return

    def __len__(self) -> int:
        return self._n


#: kernel_impl name -> queue factory.
QUEUE_IMPLS: typing.Dict[str, typing.Callable[[float], object]] = {
    "heap": HeapQueue,
    "wheel": TimerWheel,
}
