"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes ``yield`` events to suspend until they trigger.  Events carry a
value (delivered to the waiting process) or an exception (raised inside
the waiting process), mirroring the success/failure duality of remote
calls in the systems built on top of the kernel.

Every event class is ``__slots__``-backed: events are the single most
allocated object in a run (one per timeout, one per process, one per
trigger), and dict-backed attributes were a measurable share of the
kernel hot loop.  Subclasses outside this package may still add
attributes freely — a subclass without ``__slots__`` gets a ``__dict__``
as usual.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Environment


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value supplied by the interrupter
    (for example, a description of an injected failure).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from "value is None".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle::

        e = Event(env)       # untriggered
        e.succeed(value)     # or e.fail(exc); schedules callbacks at `now`
        # -> triggered, then processed once callbacks have run

    Events may only be triggered once; a second trigger raises
    ``RuntimeError``.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: typing.Optional[
            typing.List[typing.Callable[["Event"], None]]
        ] = []
        self._value: object = _PENDING
        self._exception: typing.Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        if not self.triggered:
            raise RuntimeError("event has not been triggered")
        return self._exception is None

    @property
    def value(self) -> object:
        """The value the event carried, or raises its exception."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError("event already triggered")
        self._value = value
        env = self.env
        if env.monitor is not None:
            env.monitor.event_triggered(self)
        env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        If no process ever waits on a failed event, the kernel surfaces
        the exception at ``run()`` time so failures never pass silently.
        """
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        env = self.env
        if env.monitor is not None:
            env.monitor.event_triggered(self)
        env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled (suppresses kernel surfacing)."""
        self._defused = True

    def _add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks; called by the kernel when the event comes due."""
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(self)
        elif self._exception is not None and not self._defused:
            # Nobody was listening; re-raise so the failure is visible.
            raise self._exception


class Timeout(Event):
    """An event that triggers ``delay`` milliseconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        # Inlined Event.__init__ plus direct queue insertion: a Timeout
        # is the hottest allocation in the kernel, and its delay is
        # already validated, so the _schedule() re-check is skipped.
        self.env = env
        self.callbacks = []
        self._exception = None
        self._defused = False
        self.delay = delay = float(delay)
        self._value = value
        eid = env._eid
        env._eid = eid + 1
        env._queue.push(env._now + delay, eid, self)

    def succeed(self, value: object = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout triggers itself; do not call succeed()")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout triggers itself; do not call fail()")

    @property
    def triggered(self) -> bool:
        # A Timeout is scheduled at construction; it is "triggered" in the
        # sense that its value is fixed, but it remains waitable until
        # processed.  Report True so double-trigger guards hold.
        return True


class _ConditionBase(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: typing.Sequence[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        self._done = 0
        for event in self.events:
            if event.callbacks is None:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self) -> typing.Dict[Event, object]:
        results: typing.Dict[Event, object] = {}
        for event in self.events:
            if event.triggered and event._exception is None and event.processed:
                results[event] = event._value
        return results

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_ConditionBase):
    """Triggers as soon as any child event triggers.

    Carries a dict mapping each already-processed successful child to its
    value.  A failing child fails the condition.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defuse()
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
        else:
            self.succeed(self._collect() or {event: event._value})


class AllOf(_ConditionBase):
    """Triggers once every child event has triggered.

    Carries a dict mapping every child to its value.  The first failing
    child fails the condition.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defuse()
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})
