"""Measurement primitives: counters, timers, histograms.

The benchmark harness reads these to build its paper-vs-measured tables.
All statistics live in a per-environment :class:`StatsRegistry` so that
independent simulation runs never share state.
"""

from __future__ import annotations

import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Timer:
    """Accumulates durations (ms) and summarises them."""

    def __init__(self, name: str):
        self.name = name
        self.samples: typing.List[float] = []

    def record(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError(f"negative duration: {duration_ms}")
        self.samples.append(duration_ms)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return self.total / len(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return min(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return max(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        value = ordered[low] * (1 - frac) + ordered[high] * frac
        # Clamp: interpolation of denormal floats can round outside the
        # bracketing samples.
        return min(max(value, ordered[low]), ordered[high])

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)


class Histogram:
    """Fixed-bucket histogram for latency distributions."""

    def __init__(self, name: str, bounds: typing.Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and sorted")
        self.name = name
        self.bounds = [float(b) for b in bounds]
        # One bucket per bound plus overflow.
        self.counts = [0] * (len(self.bounds) + 1)

    def record(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def buckets(self) -> typing.List[typing.Tuple[str, int]]:
        """(label, count) pairs including the overflow bucket."""
        labels = [f"<= {b:g}" for b in self.bounds] + [f"> {self.bounds[-1]:g}"]
        return list(zip(labels, self.counts))


class StatsRegistry:
    """Per-environment home for named counters, timers, histograms."""

    def __init__(self, env: "Environment"):
        self._env = env
        self._counters: typing.Dict[str, Counter] = {}
        self._timers: typing.Dict[str, Timer] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def histogram(self, name: str, bounds: typing.Sequence[float]) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def counters(self) -> typing.Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}
