"""Measurement primitives: counters, timers, histograms.

The benchmark harness reads these to build its paper-vs-measured tables.
All statistics live in a per-environment :class:`StatsRegistry` so that
independent simulation runs never share state.
"""

from __future__ import annotations

import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> typing.Dict[str, int]:
        """The counter's state as plain data."""
        return {"value": self.value}


class Timer:
    """Accumulates durations (ms) and summarises them."""

    def __init__(self, name: str):
        self.name = name
        self.samples: typing.List[float] = []

    def record(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError(f"negative duration: {duration_ms}")
        self.samples.append(duration_ms)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return self.total / len(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return min(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        return max(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise ValueError(f"timer {self.name!r} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        value = ordered[low] * (1 - frac) + ordered[high] * frac
        # Clamp: interpolation of denormal floats can round outside the
        # bracketing samples.
        return min(max(value, ordered[low]), ordered[high])

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def snapshot(self) -> typing.Dict[str, float]:
        """Summary statistics as plain data (empty-safe)."""
        if not self.samples:
            return {"count": 0.0, "total": 0.0}
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "stdev": self.stdev,
        }


class Histogram:
    """Fixed-bucket histogram for latency distributions.

    Alongside the bucket counts it tracks the smallest and largest
    recorded values, which anchor :meth:`percentile`'s interpolation —
    without them an estimate could only name a bucket bound, and the
    empty / single-sample / p0 / p100 edge cases would have no honest
    answer at all.
    """

    def __init__(self, name: str, bounds: typing.Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and sorted")
        self.name = name
        self.bounds = [float(b) for b in bounds]
        # One bucket per bound plus overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self._min: typing.Optional[float] = None
        self._max: typing.Optional[float] = None

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls in (last = overflow)."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def record(self, value: float) -> None:
        self.counts[self.bucket_index(value)] += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated percentile, ``p`` in [0, 100].

        Locates the bucket holding the requested rank and interpolates
        linearly within it, clamped to the observed [min, max] — so an
        empty histogram raises, a single sample is returned exactly for
        any ``p``, p0/p100 return the true extremes, and the unbounded
        overflow bucket reports the observed maximum instead of
        infinity.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        total = self.total
        if total == 0 or self._min is None or self._max is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        rank = (p / 100) * total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = self.bounds[i - 1] if i > 0 else self._min
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self._max
                )
                fraction = (rank - cumulative) / count
                value = lower + fraction * (upper - lower)
                return min(max(value, self._min), self._max)
            cumulative += count
        return self._max  # pragma: no cover - rank <= total always hits

    def buckets(self) -> typing.List[typing.Tuple[str, int]]:
        """(label, count) pairs including the overflow bucket."""
        labels = [f"<= {b:g}" for b in self.bounds] + [f"> {self.bounds[-1]:g}"]
        return list(zip(labels, self.counts))

    def snapshot(self) -> typing.Dict[str, object]:
        """Bucket counts and extremes as plain data (empty-safe)."""
        data: typing.Dict[str, object] = {
            "total": self.total,
            "buckets": [list(pair) for pair in self.buckets()],
        }
        if self._min is not None and self._max is not None:
            data["min"] = self._min
            data["max"] = self._max
        return data


class StatsRegistry:
    """Per-environment home for named counters, timers, histograms."""

    def __init__(self, env: "Environment"):
        self._env = env
        self._counters: typing.Dict[str, Counter] = {}
        self._timers: typing.Dict[str, Timer] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def histogram(self, name: str, bounds: typing.Sequence[float]) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def counters(self) -> typing.Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}

    def timers(self) -> typing.Dict[str, typing.Dict[str, float]]:
        """Snapshot of all timers (name -> summary statistics)."""
        return {name: t.snapshot() for name, t in self._timers.items()}

    def histograms(self) -> typing.Dict[str, typing.Dict[str, object]]:
        """Snapshot of all histograms (name -> buckets + extremes)."""
        return {name: h.snapshot() for name, h in self._histograms.items()}
