"""Measurement primitives: counters, timers, histograms.

The benchmark harness reads these to build its paper-vs-measured tables.
All statistics live in a per-environment :class:`StatsRegistry` so that
independent simulation runs never share state.

Hot-path notes: every class here is ``__slots__``-backed, running
aggregates (count/total/min/max) are maintained on :meth:`Timer.record`
instead of being recomputed per property access, and
:meth:`Histogram.bucket_index` / :meth:`Histogram.percentile` use
``bisect`` over a linear scan — with arithmetic chosen to be
bit-identical to the original scans (the regression tests pin that).

:class:`Timer` has two modes:

- **exact** (the default): keeps every sample, so percentiles are
  exact and ``samples`` stays inspectable.  Running totals use the same
  left-to-right float summation the original ``sum(samples)`` did, so
  snapshots are bit-identical to the seed implementation.
- **streaming** (``streaming=True``): drops the sample list entirely,
  keeping running moments plus a geometric bucket ladder with ratio
  ``2**(1/8)`` per bucket — quantile estimates are within ~±4.4% of the
  true value (half a bucket), memory is O(distinct magnitudes), and a
  million-client scenario no longer holds a million floats per timer.
"""

from __future__ import annotations

import math
import typing
from bisect import bisect_left
from itertools import accumulate

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

_INF = float("inf")

#: Streaming-mode bucket ratio: 8 buckets per octave (~9% wide), so a
#: quantile estimate is at most ~4.4% off the true sample value.
_STREAM_RATIO = 2.0 ** 0.125
_LOG_RATIO = math.log(_STREAM_RATIO)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> typing.Dict[str, int]:
        """The counter's state as plain data."""
        return {"value": self.value}


class Timer:
    """Accumulates durations (ms) and summarises them.

    ``count``/``total``/``minimum``/``maximum`` are running aggregates
    (O(1) per access).  ``percentile`` is exact when the sample list is
    kept (the default) and a geometric-bucket estimate in streaming
    mode (see module docstring for the accuracy bound).
    """

    __slots__ = (
        "name",
        "streaming",
        "samples",
        "_count",
        "_total",
        "_min",
        "_max",
        "_sumsq",
        "_zero",
        "_buckets",
    )

    def __init__(self, name: str, streaming: bool = False):
        self.name = name
        self.streaming = streaming
        #: Exact mode keeps every sample; streaming mode keeps none.
        self.samples: typing.Optional[typing.List[float]] = (
            None if streaming else []
        )
        self._count = 0
        self._total = 0.0
        self._min = _INF
        self._max = -_INF
        # Streaming-only state.
        self._sumsq = 0.0
        self._zero = 0
        self._buckets: typing.Optional[typing.Dict[int, int]] = (
            {} if streaming else None
        )

    def record(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError(f"negative duration: {duration_ms}")
        self._count += 1
        # Left-to-right addition, same order as the seed's sum(samples):
        # totals stay bit-identical to the original implementation.
        self._total += duration_ms
        if duration_ms < self._min:
            self._min = duration_ms
        if duration_ms > self._max:
            self._max = duration_ms
        if self.samples is not None:
            self.samples.append(duration_ms)
        else:
            self._sumsq += duration_ms * duration_ms
            if duration_ms > 0.0:
                bucket = math.floor(math.log(duration_ms) / _LOG_RATIO)
                buckets = self._buckets
                buckets[bucket] = buckets.get(bucket, 0) + 1  # type: ignore[index]
            else:
                self._zero += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"timer {self.name!r} has no samples")
        return self._total / self._count

    @property
    def minimum(self) -> float:
        if not self._count:
            raise ValueError(f"timer {self.name!r} has no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if not self._count:
            raise ValueError(f"timer {self.name!r} has no samples")
        return self._max

    def percentile(self, p: float) -> float:
        """Percentile, ``p`` in [0, 100].

        Exact (linear interpolation over the sorted samples) in exact
        mode; a geometric-bucket estimate in streaming mode.
        """
        if not self._count:
            raise ValueError(f"timer {self.name!r} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.samples is None:
            return self._estimate_percentile(p)
        return self._percentile_sorted(sorted(self.samples), p)

    @staticmethod
    def _percentile_sorted(ordered: typing.List[float], p: float) -> float:
        """Interpolated percentile over an already-sorted sample list."""
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        value = ordered[low] * (1 - frac) + ordered[high] * frac
        # Clamp: interpolation of denormal floats can round outside the
        # bracketing samples.
        return min(max(value, ordered[low]), ordered[high])

    def _estimate_percentile(self, p: float) -> float:
        """Streaming-mode estimate from the geometric bucket ladder."""
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        rank = (p / 100) * self._count
        cumulative = self._zero
        if rank <= cumulative:
            return max(0.0, self._min)
        for bucket in sorted(self._buckets):  # type: ignore[arg-type]
            count = self._buckets[bucket]  # type: ignore[index]
            if cumulative + count >= rank:
                # Bucket k covers (ratio**k, ratio**(k+1)]; interpolate
                # geometrically within it.
                frac = (rank - cumulative) / count
                value = _STREAM_RATIO ** (bucket + frac)
                return min(max(value, self._min), self._max)
            cumulative += count
        return self._max  # pragma: no cover - rank <= count always hits

    @property
    def stdev(self) -> float:
        if self._count < 2:
            return 0.0
        if self.samples is not None:
            # Two-pass formula, unchanged from the seed implementation.
            mean = self.mean
            var = sum((s - mean) ** 2 for s in self.samples) / (self._count - 1)
            return math.sqrt(var)
        mean = self._total / self._count
        var = (self._sumsq - self._count * mean * mean) / (self._count - 1)
        return math.sqrt(max(var, 0.0))

    def snapshot(self) -> typing.Dict[str, float]:
        """Summary statistics as plain data (empty-safe).

        Exact mode sorts the sample list once and derives both
        percentiles from it (the seed version paid two full sorts, one
        per ``percentile()`` call).
        """
        if not self._count:
            return {"count": 0.0, "total": 0.0}
        if self.samples is None:
            p50 = self._estimate_percentile(50)
            p99 = self._estimate_percentile(99)
        else:
            ordered = sorted(self.samples)
            p50 = self._percentile_sorted(ordered, 50)
            p99 = self._percentile_sorted(ordered, 99)
        return {
            "count": float(self._count),
            "total": self._total,
            "mean": self._total / self._count,
            "min": self._min,
            "max": self._max,
            "p50": p50,
            "p99": p99,
            "stdev": self.stdev,
        }


class Histogram:
    """Fixed-bucket histogram for latency distributions.

    Alongside the bucket counts it tracks the smallest and largest
    recorded values, which anchor :meth:`percentile`'s interpolation —
    without them an estimate could only name a bucket bound, and the
    empty / single-sample / p0 / p100 edge cases would have no honest
    answer at all.
    """

    __slots__ = ("name", "bounds", "counts", "_min", "_max")

    def __init__(self, name: str, bounds: typing.Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and sorted")
        self.name = name
        self.bounds = [float(b) for b in bounds]
        # One bucket per bound plus overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self._min: typing.Optional[float] = None
        self._max: typing.Optional[float] = None

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls in (last = overflow).

        ``bisect_left`` returns the first index whose bound is >= value
        — exactly the first ``value <= bound`` the original linear scan
        found, in O(log buckets).
        """
        return bisect_left(self.bounds, value)

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated percentile, ``p`` in [0, 100].

        Locates the bucket holding the requested rank (binary search
        over the cumulative counts — the first cumulative >= rank is
        the same bucket the original linear scan stopped at, since a
        zero-count bucket can never be the leftmost such index) and
        interpolates linearly within it, clamped to the observed
        [min, max] — so an empty histogram raises, a single sample is
        returned exactly for any ``p``, p0/p100 return the true
        extremes, and the unbounded overflow bucket reports the
        observed maximum instead of infinity.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        cums = list(accumulate(self.counts))
        total = cums[-1]
        if total == 0 or self._min is None or self._max is None:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        rank = (p / 100) * total
        i = bisect_left(cums, rank)
        lower = self.bounds[i - 1] if i > 0 else self._min
        upper = self.bounds[i] if i < len(self.bounds) else self._max
        cumulative = cums[i - 1] if i > 0 else 0
        fraction = (rank - cumulative) / self.counts[i]
        value = lower + fraction * (upper - lower)
        return min(max(value, self._min), self._max)

    def buckets(self) -> typing.List[typing.Tuple[str, int]]:
        """(label, count) pairs including the overflow bucket."""
        labels = [f"<= {b:g}" for b in self.bounds] + [f"> {self.bounds[-1]:g}"]
        return list(zip(labels, self.counts))

    def snapshot(self) -> typing.Dict[str, object]:
        """Bucket counts and extremes as plain data (empty-safe)."""
        data: typing.Dict[str, object] = {
            "total": self.total,
            "buckets": [list(pair) for pair in self.buckets()],
        }
        if self._min is not None and self._max is not None:
            data["min"] = self._min
            data["max"] = self._max
        return data


class StatsRegistry:
    """Per-environment home for named counters, timers, histograms.

    Lookups are ``dict.get``-based so the hot-loop idiom
    ``env.stats.counter("x").increment()`` costs one hash probe, not a
    ``__contains__`` probe plus a ``__getitem__`` probe.
    """

    __slots__ = ("_env", "_counters", "_timers", "_histograms")

    def __init__(self, env: "Environment"):
        self._env = env
        self._counters: typing.Dict[str, Counter] = {}
        self._timers: typing.Dict[str, Timer] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str, streaming: bool = False) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name, streaming=streaming)
        elif streaming and not timer.streaming:
            raise ValueError(
                f"timer {name!r} already exists in exact mode; "
                "streaming must be chosen at first use"
            )
        return timer

    def histogram(self, name: str, bounds: typing.Sequence[float]) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def counters(self) -> typing.Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}

    def timers(self) -> typing.Dict[str, typing.Dict[str, float]]:
        """Snapshot of all timers (name -> summary statistics)."""
        return {name: t.snapshot() for name, t in self._timers.items()}

    def histograms(self) -> typing.Dict[str, typing.Dict[str, object]]:
        """Snapshot of all histograms (name -> buckets + extremes)."""
        return {name: h.snapshot() for name, h in self._histograms.items()}
