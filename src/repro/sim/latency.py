"""Latency models used by the network and device layers.

A latency model maps an operation (optionally parameterised by payload
size) to a delay in simulated milliseconds.  The calibration module
(:mod:`repro.harness.calibration`) instantiates these with the component
costs measured in the paper.
"""

from __future__ import annotations

import bisect
import random
import typing


class LatencyModel:
    """Base class: ``sample(rng, size_bytes)`` returns a delay in ms."""

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        raise NotImplementedError

    def mean(self, size_bytes: int = 0) -> float:
        """Expected delay; used by analytic models (equation (1))."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed base delay plus an optional per-byte transfer cost."""

    def __init__(self, base_ms: float, per_byte_ms: float = 0.0):
        if base_ms < 0 or per_byte_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base_ms = float(base_ms)
        self.per_byte_ms = float(per_byte_ms)

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return self.base_ms + self.per_byte_ms * size_bytes

    def mean(self, size_bytes: int = 0) -> float:
        return self.base_ms + self.per_byte_ms * size_bytes

    def __repr__(self) -> str:
        return f"ConstantLatency({self.base_ms}, per_byte={self.per_byte_ms})"


class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low_ms, high_ms]`` plus per-byte cost."""

    def __init__(self, low_ms: float, high_ms: float, per_byte_ms: float = 0.0):
        if not 0 <= low_ms <= high_ms:
            raise ValueError(f"bad uniform range [{low_ms}, {high_ms}]")
        self.low_ms = float(low_ms)
        self.high_ms = float(high_ms)
        self.per_byte_ms = float(per_byte_ms)

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return rng.uniform(self.low_ms, self.high_ms) + self.per_byte_ms * size_bytes

    def mean(self, size_bytes: int = 0) -> float:
        return (self.low_ms + self.high_ms) / 2.0 + self.per_byte_ms * size_bytes


class ExponentialLatency(LatencyModel):
    """Exponential service time with a fixed floor (queueing-ish tails)."""

    def __init__(self, floor_ms: float, mean_extra_ms: float):
        if floor_ms < 0 or mean_extra_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        self.floor_ms = float(floor_ms)
        self.mean_extra_ms = float(mean_extra_ms)

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        extra = rng.expovariate(1.0 / self.mean_extra_ms) if self.mean_extra_ms else 0.0
        return self.floor_ms + extra

    def mean(self, size_bytes: int = 0) -> float:
        return self.floor_ms + self.mean_extra_ms


class EmpiricalLatency(LatencyModel):
    """Samples from a measured distribution given as (value, weight) pairs."""

    def __init__(self, samples: typing.Sequence[typing.Tuple[float, float]]):
        if not samples:
            raise ValueError("empirical distribution needs at least one sample")
        self.values = [float(v) for v, _ in samples]
        weights = [float(w) for _, w in samples]
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        total = sum(weights)
        acc = 0.0
        self._cumulative: typing.List[float] = []
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._mean = sum(
            v * w / total for v, w in zip(self.values, weights)
        )

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self.values) - 1)
        return self.values[index]

    def mean(self, size_bytes: int = 0) -> float:
        return self._mean
