"""The simulation environment: virtual clock plus event queue.

:class:`Environment` is deliberately small.  Everything else in the
repository — network messages, RPC calls, disk reads, cache probes — is
expressed as processes and events scheduled here.  Time is in simulated
milliseconds, matching the units of every number in the paper.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.obs.span import Observability
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rng import RngRegistry
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class KernelMonitor:
    """Observer hooks the kernel calls when one is attached.

    The interleaving sanitizer (:mod:`repro.analysis.sanitizer`)
    subclasses this to reconstruct happens-before ordering between
    process segments.  Every hook is a no-op here, and no hook is
    invoked at all unless :attr:`Environment.monitor` is set — the
    instrumentation is off by default and costs one ``is None`` check
    per kernel operation.

    Monitors must be *passive*: they may record what they see but must
    never schedule events, trigger events, or otherwise perturb the run,
    or they would break the determinism they exist to check.
    """

    def segment_begin(self, process: Process) -> None:
        """``process`` is resuming: a new segment (yield-to-yield) starts."""

    def segment_end(self, process: Process) -> None:
        """``process`` suspended (or finished): its current segment ends."""

    def event_triggered(self, event: Event) -> None:
        """``succeed``/``fail`` was called on ``event``."""

    def note_resume(self, process: Process, event: Event) -> None:
        """``event`` is about to resume ``process``."""

    def event_processing(self, event: Event) -> None:
        """The kernel is about to run ``event``'s callbacks."""

    def event_processed(self, event: Event) -> None:
        """The kernel finished running ``event``'s callbacks."""


class Environment:
    """Owns the virtual clock, the event queue, and run control.

    Parameters
    ----------
    seed:
        Master seed for the per-purpose random streams handed out by
        :attr:`rng`.  Two environments with the same seed replay the
        same simulation exactly.
    """

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._queue: typing.List[typing.Tuple[float, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: typing.Optional[Process] = None
        self.rng = RngRegistry(seed)
        self.trace = Tracer(self)
        self.stats = StatsRegistry(self)
        #: Span-based causal tracing (:mod:`repro.obs`); off by default
        #: and digest-neutral when enabled.
        self.obs = Observability(self)
        #: Optional :class:`KernelMonitor`; None (the default) disables
        #: all instrumentation.
        self.monitor: typing.Optional[KernelMonitor] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> typing.Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event triggering ``delay`` ms from now, carrying ``value``."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: typing.Optional[str] = None
    ) -> Process:
        """Start ``generator`` as a process at the current time."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event triggering when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event triggering when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms into the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        if self.monitor is not None:
            self.monitor.event_processing(event)
            try:
                event._process()
            finally:
                self.monitor.event_processed(event)
        else:
            event._process()

    def run(
        self,
        until: typing.Union[None, float, Event] = None,
    ) -> object:
        """Run the simulation.

        - ``until=None``: run until the event queue drains.
        - ``until=<float>``: run until the clock reaches that time.
        - ``until=<Event>``: run until that event has been processed and
          return its value (raising its exception if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            # Defuse so the kernel does not double-report a failure we are
            # about to raise from .value below.
            target._add_callback(lambda e: e.defuse() if not e.ok else None)
            while not target.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event "
                        "triggered (deadlock?)"
                    )
                self.step()
            return target.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
