"""The simulation environment: virtual clock plus event queue.

:class:`Environment` is deliberately small.  Everything else in the
repository — network messages, RPC calls, disk reads, cache probes — is
expressed as processes and events scheduled here.  Time is in simulated
milliseconds, matching the units of every number in the paper.

The event queue has two back ends (:mod:`repro.sim.wheel`): the seed
kernel's binary heap and a hierarchical timer wheel.  Both process
events in identical ``(time, eid)`` order, so every scenario digest is
bit-identical across back ends — the determinism checker
(:mod:`repro.analysis.determinism`) verifies exactly that.  The wheel
is the default; pass ``kernel_impl="heap"`` (or flip
:data:`DEFAULT_KERNEL_IMPL`) for A/B comparison.
"""

from __future__ import annotations

import typing

from repro.obs.span import Observability
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rng import RngRegistry
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.sim.wheel import (
    QUEUE_IMPLS,
    HeapQueue,
    PerturbedHeapQueue,
    TimerWheel,
)

#: Queue back end used when ``Environment(kernel_impl=None)``.  The
#: cross-back-end determinism check flips this module global the same
#: way :attr:`~repro.obs.span.Observability.default_enabled` is flipped
#: for the traced determinism run.
DEFAULT_KERNEL_IMPL = "wheel"

#: Schedule-perturbation seed used when ``Environment(perturb_seed=None)``.
#: ``None`` (always, outside the racer) means no perturbation: the FIFO
#: ``(time, eid)`` tie-break, digest-identical behaviour.  The hnsracer
#: confirmation mode (:mod:`repro.analysis.perturb`) flips this module
#: global around a scenario builder the same way the determinism
#: checker flips :data:`DEFAULT_KERNEL_IMPL`, so every environment the
#: builder constructs drains same-timestamp cohorts in a seeded
#: shuffled order.
DEFAULT_PERTURB_SEED: typing.Optional[int] = None

#: Optional factory consulted at :class:`Environment` construction: when
#: set, every new environment gets ``monitor = factory(env)`` before any
#: event is scheduled.  This is how the racer attaches an
#: :class:`~repro.analysis.sanitizer.InterleavingSanitizer` to the
#: environments a scenario builder creates internally, without the
#: builder knowing.  Monitors installed this way must be passive, like
#: any :class:`KernelMonitor`.
DEFAULT_MONITOR_FACTORY: typing.Optional[
    typing.Callable[["Environment"], "KernelMonitor"]
] = None

#: Measured back-end guidance, by workload shape (the dispatch sweeps
#: in ``BENCH_kernel.json``; see docs/architecture.md §14).  The wheel
#: wins when most events are timers that fire or cancel in bulk
#: (>=2.5x on the pure-timeout sweep); the heap's cheaper push/pop wins
#: when events are mostly immediate and processes are short-lived
#: (~3% on process churn, ~20% on the mixed-conditions sweep).
KERNEL_IMPL_RECOMMENDATIONS: typing.Dict[str, str] = {
    "standing_timers": "wheel",
    "pure_timeout": "wheel",
    "mixed_conditions": "heap",
    "process_churn": "heap",
}


def resolve_kernel_impl(
    kernel_impl: typing.Optional[str],
    workload: typing.Optional[str] = None,
) -> str:
    """Resolve a requested back end to a concrete ``QUEUE_IMPLS`` key.

    ``None`` means :data:`DEFAULT_KERNEL_IMPL`; ``"auto"`` consults
    :data:`KERNEL_IMPL_RECOMMENDATIONS` for the given ``workload``
    shape and falls back to the default when the shape is unknown (the
    back ends are digest-identical by contract, so the fallback is a
    performance choice, never a correctness one).
    """
    if kernel_impl is None:
        kernel_impl = DEFAULT_KERNEL_IMPL
    if kernel_impl == "auto":
        kernel_impl = KERNEL_IMPL_RECOMMENDATIONS.get(
            workload or "", DEFAULT_KERNEL_IMPL
        )
    if kernel_impl not in QUEUE_IMPLS:
        known = ", ".join(sorted(QUEUE_IMPLS) + ["auto"])
        raise ValueError(f"unknown kernel_impl {kernel_impl!r}; known: {known}")
    return kernel_impl


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class KernelMonitor:
    """Observer hooks the kernel calls when one is attached.

    The interleaving sanitizer (:mod:`repro.analysis.sanitizer`)
    subclasses this to reconstruct happens-before ordering between
    process segments.  Every hook is a no-op here, and no hook is
    invoked at all unless :attr:`Environment.monitor` is set — the
    instrumentation is off by default, and the ``monitor is None``
    check is hoisted out of the per-event path: ``run()`` selects a
    monitored or unmonitored inner loop once, up front.

    Monitors must be *passive*: they may record what they see but must
    never schedule events, trigger events, or otherwise perturb the run,
    or they would break the determinism they exist to check.
    """

    def segment_begin(self, process: Process) -> None:
        """``process`` is resuming: a new segment (yield-to-yield) starts."""

    def segment_end(self, process: Process) -> None:
        """``process`` suspended (or finished): its current segment ends."""

    def event_triggered(self, event: Event) -> None:
        """``succeed``/``fail`` was called on ``event``."""

    def note_resume(self, process: Process, event: Event) -> None:
        """``event`` is about to resume ``process``."""

    def event_processing(self, event: Event) -> None:
        """The kernel is about to run ``event``'s callbacks."""

    def event_processed(self, event: Event) -> None:
        """The kernel finished running ``event``'s callbacks."""


class Environment:
    """Owns the virtual clock, the event queue, and run control.

    Parameters
    ----------
    seed:
        Master seed for the per-purpose random streams handed out by
        :attr:`rng`.  Two environments with the same seed replay the
        same simulation exactly.
    kernel_impl:
        Event-queue back end: ``"wheel"`` (hierarchical timer wheel,
        the default via :data:`DEFAULT_KERNEL_IMPL`), ``"heap"`` (the
        seed kernel's binary heap), or ``"auto"`` (pick from
        :data:`KERNEL_IMPL_RECOMMENDATIONS` by the ``workload`` hint).
        Digest-identical by contract.
    workload:
        Optional workload-shape hint (``"standing_timers"``,
        ``"process_churn"``, ...) consulted only by
        ``kernel_impl="auto"``.
    """

    def __init__(
        self,
        seed: int = 0,
        kernel_impl: typing.Optional[str] = None,
        workload: typing.Optional[str] = None,
        perturb_seed: typing.Optional[int] = None,
    ):
        kernel_impl = resolve_kernel_impl(kernel_impl, workload)
        self.kernel_impl = kernel_impl
        self._now: float = 0.0
        if perturb_seed is None:
            perturb_seed = DEFAULT_PERTURB_SEED
        #: When set, same-timestamp events drain in a seeded shuffled
        #: order instead of FIFO (hnsracer confirmation runs only).
        self.perturb_seed = perturb_seed
        if perturb_seed is not None:
            # The shuffled tie-break breaks the wheel's deque-sortedness
            # invariant and the batched drain's ordering argument, so a
            # perturbed environment runs the plain heap through step().
            self._queue: typing.Union[HeapQueue, TimerWheel] = (
                PerturbedHeapQueue(0.0, perturb_seed)
            )
        else:
            self._queue = QUEUE_IMPLS[kernel_impl](0.0)  # type: ignore[assignment]
        #: Next event id; assigned in scheduling order so simultaneous
        #: events fire FIFO.  Doubles as the events-scheduled count.
        self._eid = 0
        self._active_process: typing.Optional[Process] = None
        self.rng = RngRegistry(seed)
        self.trace = Tracer(self)
        self.stats = StatsRegistry(self)
        #: Span-based causal tracing (:mod:`repro.obs`); off by default
        #: and digest-neutral when enabled.
        self.obs = Observability(self)
        #: Optional :class:`KernelMonitor`; None (the default) disables
        #: all instrumentation.
        self.monitor: typing.Optional[KernelMonitor] = None
        if DEFAULT_MONITOR_FACTORY is not None:
            self.monitor = DEFAULT_MONITOR_FACTORY(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> typing.Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event triggering ``delay`` ms from now, carrying ``value``."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: typing.Optional[str] = None
    ) -> Process:
        """Start ``generator`` as a process at the current time."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event triggering when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event triggering when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms into the past")
        eid = self._eid
        self._eid = eid + 1
        self._queue.push(self._now + delay, eid, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue.peek()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        entry = self._queue.pop()
        if entry is None:
            raise SimulationError("step() on an empty event queue")
        self._now = entry[0]
        event = entry[2]
        monitor = self.monitor
        if monitor is not None:
            monitor.event_processing(event)
            try:
                event._process()
            finally:
                monitor.event_processed(event)
        else:
            event._process()

    def run(
        self,
        until: typing.Union[None, float, Event] = None,
    ) -> object:
        """Run the simulation.

        - ``until=None``: run until the event queue drains.
        - ``until=<float>``: run until the clock reaches that time.
        - ``until=<Event>``: run until that event has been processed and
          return its value (raising its exception if it failed).

        The inner loops are specialised: with no monitor attached the
        kernel drains detached batches of ready entries (same-timestamp
        cohorts and sorted bucket runs) with events' callbacks inlined —
        no ``step()`` call, no per-event hook checks, no per-event queue
        method call.  A push counter guards the batch: the moment a
        callback schedules anything that could precede the batch's
        unprocessed suffix, the suffix goes back to the queue and the
        drain re-synchronises.
        """
        queue = self._queue
        # The batched drain's ordering argument assumes the FIFO eid
        # tie-break ("time ties break toward the batch, whose eids are
        # smaller"), which a perturbed queue deliberately violates — so
        # perturbed runs take the step() loops even without a monitor.
        batched = self.monitor is None and self.perturb_seed is None
        if until is None:
            if batched:
                self._drain(queue, None)
                return None
            while len(queue):
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            # Defuse so the kernel does not double-report a failure we are
            # about to raise from .value below.
            target._add_callback(lambda e: e.defuse() if not e.ok else None)
            if batched:
                if not target.processed:
                    self._drain(queue, target)
                if not target.processed:
                    raise SimulationError(
                        "event queue drained before the awaited event "
                        "triggered (deadlock?)"
                    )
            else:
                while not target.processed:
                    if not len(queue):
                        raise SimulationError(
                            "event queue drained before the awaited event "
                            "triggered (deadlock?)"
                        )
                    self.step()
            return target.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        if self.monitor is None:
            pop = queue.pop
            peek = queue.peek
            while peek() <= horizon:
                entry = pop()
                self._now = entry[0]  # type: ignore[index]
                entry[2]._process()  # type: ignore[index]
        else:
            while queue.peek() <= horizon:
                self.step()
        self._now = horizon
        return None

    def _drain(
        self,
        queue: typing.Union[HeapQueue, TimerWheel],
        target: typing.Optional[Event],
    ) -> None:
        """Monitor-free batched inner loop (see :meth:`run`).

        Processes detached batches with :meth:`Event._process` inlined.
        Ordering argument: a batch is in global (time, eid) order when
        detached, and everything still *in* the queue is strictly later
        than every batch entry (later time, or same time with a larger
        eid) — so only a *push* can introduce an entry that belongs
        before the batch's unprocessed suffix.  The queue keeps a
        running minimum of times pushed since the batch was detached
        (``queue.low_push``, reset by ``take_batch``), and only
        callbacks push — so events with no callbacks are drained with
        zero checks, and a push check is one attribute compare, never a
        ``peek()``.  When a callback pushed, either ``low_push`` is at
        or past the batch's *last* entry (time ties break toward the
        batch, whose eids are smaller) and the whole suffix is still
        safe at full speed, or the drain drops to a *careful* gait:
        before each remaining entry, compare ``low_push`` against its
        time and hand the suffix back via ``requeue`` the moment a
        pushed entry could come first.  Careful mode ends with the
        batch.

        Stops when the queue drains, or — with ``target`` — as soon as
        ``target`` has been processed (remaining suffix requeued).
        """
        take_batch = queue.take_batch
        while True:
            batch = take_batch()
            if batch is None:
                return
            tail = batch[-1][0]
            careful = False
            # ``_now`` is written lazily: only callbacks (and a raised
            # unhandled failure) can observe the clock mid-drain, so
            # events nobody waits on skip the store and the batch's
            # final time is written once in the ``else`` arm.  A
            # careful-mode break leaves ``_now`` at the last observed
            # point, which is fine — the next observation re-syncs it.
            for index, entry in enumerate(batch):
                if careful and queue.low_push < entry[0]:
                    queue.requeue(batch, index)
                    break
                event = entry[2]
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    self._now = entry[0]
                    for callback in callbacks:
                        callback(event)
                    if target is not None and target.callbacks is None:
                        queue.requeue(batch, index + 1)
                        return
                    if not careful and queue.low_push < tail:
                        careful = True
                elif event._exception is not None and not event._defused:
                    # Nobody was listening; surface the failure (the
                    # inlined equivalent of Event._process's re-raise).
                    self._now = entry[0]
                    raise event._exception
            else:
                self._now = tail

    # ------------------------------------------------------------------
    # Kernel self-instrumentation
    # ------------------------------------------------------------------
    def kernel_counters(self) -> typing.Dict[str, int]:
        """The kernel's own performance counters, as plain data.

        Deliberately *not* recorded in :attr:`stats` during the run:
        ``wheel_rotations`` and ``fastpath_schedules`` are back-end
        implementation details, and folding them into the stats
        registry would make scenario digests differ between the heap
        and wheel back ends.  Call :meth:`publish_kernel_stats` (once,
        after a run) when a benchmark wants them in the registry.
        """
        queue = self._queue
        return {
            "sim.kernel.events_scheduled": self._eid,
            "sim.kernel.events_processed": self._eid - len(queue),
            "sim.kernel.fastpath_schedules": queue.fastpath_schedules,
            "sim.kernel.wheel_rotations": queue.rotations,
        }

    def publish_kernel_stats(self) -> None:
        """Copy :meth:`kernel_counters` into the stats registry.

        Opt-in and additive: call it once at the end of a run (the
        benchmark harness does) — never from inside a registered
        scenario, where back-end-specific counts would break the
        cross-back-end digest contract.
        """
        counters = self.kernel_counters()
        stats = self.stats
        stats.counter("sim.kernel.events_scheduled").increment(
            counters["sim.kernel.events_scheduled"]
        )
        stats.counter("sim.kernel.events_processed").increment(
            counters["sim.kernel.events_processed"]
        )
        stats.counter("sim.kernel.fastpath_schedules").increment(
            counters["sim.kernel.fastpath_schedules"]
        )
        stats.counter("sim.kernel.wheel_rotations").increment(
            counters["sim.kernel.wheel_rotations"]
        )
