"""Generator-based simulated processes.

A process is a Python generator that ``yield``\\ s :class:`Event` objects
to suspend until they trigger.  The value of a successful event is sent
back into the generator; the exception of a failed event is thrown into
it.  When the generator returns, the process (itself an event) succeeds
with the generator's return value, so processes compose: one process may
``yield`` another.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

ProcessGenerator = typing.Generator[Event, object, object]


class Process(Event):
    """A running simulated activity; also an event others can wait on."""

    __slots__ = ("generator", "name", "_target")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: typing.Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: typing.Optional[Event] = None
        # Kick the process off at the current simulated time: a start
        # event, pre-succeeded and scheduled directly (the general
        # succeed() path re-checks trigger state we know to be fresh).
        start = Event(env)
        start.callbacks.append(self._resume)
        start._value = None
        if env.monitor is not None:
            env.monitor.event_triggered(start)
        env._schedule(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Used by failure injection (crash a server mid-call) and by
        timeout wrappers.  Interrupting a finished process is an error.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        # Detach from whatever the process was waiting on so the stale
        # resume callback never fires.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        punch = Event(self.env)
        punch._add_callback(self._resume_with_interrupt(cause))
        punch.succeed(None)

    def _resume_with_interrupt(
        self, cause: object
    ) -> typing.Callable[[Event], None]:
        def callback(_event: Event) -> None:
            if self.env.monitor is not None:
                self.env.monitor.note_resume(self, _event)
            self._step(throw=Interrupt(cause))

        return callback

    def _resume(self, event: Event) -> None:
        if self.env.monitor is not None:
            self.env.monitor.note_resume(self, event)
        if event._exception is not None:
            event.defuse()
            self._step(throw=event._exception)
        else:
            self._step(send=event._value)

    def _step(self, send: object = None, throw: object = None) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.segment_begin(self)
        self.env._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.env._active_process = None
            if monitor is not None:
                monitor.segment_end(self)
        if not isinstance(target, Event):
            error = RuntimeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event objects"
            )
            # Surface inside the generator so user code sees a clear error.
            self._step(throw=error)
            return
        self._target = target
        target._add_callback(self._resume)
