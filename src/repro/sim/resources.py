"""Contended devices: generic resources, CPUs, and disks.

The Clearinghouse's slowness in the paper comes from authenticating every
access and reading virtually all data from disk; BIND is fast because it
keeps everything in primary memory.  We model that by charging simulated
service time on per-host CPU and Disk resources, so concurrent load
queues realistically.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Request(Event):
    """Pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._admit(self)

    def release(self) -> None:
        self.resource._release(self)


class Resource:
    """A FIFO resource with fixed capacity.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            req.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: typing.Set[Request] = set()
        self._waiting: typing.Deque[Request] = collections.deque()

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        return Request(self)

    def _admit(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(None)
        else:
            self._waiting.append(req)

    def _release(self, req: Request) -> None:
        if req not in self._users:
            raise RuntimeError("release() of a request that does not hold the resource")
        self._users.remove(req)
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed(None)

    def use(self, service_ms: float) -> typing.Generator[Event, object, None]:
        """Convenience process fragment: acquire, hold ``service_ms``, release."""
        if service_ms < 0:
            raise ValueError(f"negative service time: {service_ms}")
        req = self.request()
        yield req
        try:
            if service_ms > 0:
                yield self.env.timeout(service_ms)
        finally:
            req.release()


class CPU(Resource):
    """A host processor charging compute time in ms.

    ``speed_factor`` scales charged costs, letting scenarios model the
    mixed hardware of the HCS testbed (a Tektronix workstation is slower
    than a MicroVAX-II).
    """

    def __init__(self, env: "Environment", name: str = "", speed_factor: float = 1.0):
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {speed_factor}")
        super().__init__(env, capacity=1, name=name)
        self.speed_factor = speed_factor

    def compute(self, cost_ms: float) -> typing.Generator[Event, object, None]:
        """Charge ``cost_ms`` of compute, scaled by the host's speed."""
        yield from self.use(cost_ms / self.speed_factor)


class Disk(Resource):
    """A disk with per-access latency plus per-byte transfer time."""

    def __init__(
        self,
        env: "Environment",
        name: str = "",
        access_ms: float = 30.0,
        per_kb_ms: float = 1.0,
    ):
        if access_ms < 0 or per_kb_ms < 0:
            raise ValueError("disk parameters must be non-negative")
        super().__init__(env, capacity=1, name=name)
        self.access_ms = access_ms
        self.per_kb_ms = per_kb_ms

    def read(self, size_bytes: int = 0) -> typing.Generator[Event, object, None]:
        """One disk access transferring ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError(f"negative read size: {size_bytes}")
        yield from self.use(self.access_ms + self.per_kb_ms * size_bytes / 1024.0)

    write = read  # Same cost model either direction.
