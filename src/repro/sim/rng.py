"""Deterministic, named random streams.

Every stochastic decision in the simulator (network jitter, workload
inter-arrival times, Zipf draws) pulls from a stream named after its
purpose.  Streams are derived from one master seed, so adding a new
consumer never perturbs existing ones — runs stay reproducible as the
codebase evolves, which the benchmark harness depends on.
"""

from __future__ import annotations

import hashlib
import random
import typing


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: typing.Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created (deterministically) on demand."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
