"""Structured event tracing.

The Figure 2.1 reproduction and several tests rely on being able to
replay *what happened* in a run: which component called which, when, and
with what payload.  The tracer records ``TraceRecord`` tuples; consumers
filter by category.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    message: str
    data: typing.Mapping[str, object]

    def __str__(self) -> str:
        return f"[{self.time:10.3f} ms] {self.category:<12} {self.message}"


class Tracer:
    """Collects :class:`TraceRecord` objects when enabled.

    Tracing is off by default so benchmark runs pay no collection cost;
    tests and the walkthrough example enable it.
    """

    def __init__(self, env: "Environment"):
        self._env = env
        self.enabled = False
        self.records: typing.List[TraceRecord] = []

    def emit(self, category: str, message: str, **data: object) -> None:
        """Record one occurrence (no-op unless enabled)."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(self._env.now, category, message, dict(data))
        )

    def filter(self, category: str) -> typing.List[TraceRecord]:
        """All records in ``category``, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def format(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(r) for r in self.records)
