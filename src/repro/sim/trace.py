"""Structured event tracing.

The Figure 2.1 reproduction and several tests rely on being able to
replay *what happened* in a run: which component called which, when, and
with what payload.  The tracer records ``TraceRecord`` tuples; consumers
filter by category.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    message: str
    data: typing.Mapping[str, object]

    def __str__(self) -> str:
        return f"[{self.time:10.3f} ms] {self.category:<12} {self.message}"


class Tracer:
    """Collects :class:`TraceRecord` objects when enabled.

    Tracing is off by default so benchmark runs pay no collection cost;
    tests and the walkthrough example enable it.
    """

    def __init__(self, env: "Environment"):
        self._env = env
        self.enabled = False
        self.records: typing.List[TraceRecord] = []

    def emit(self, category: str, message: str, **data: object) -> None:
        """Record one occurrence (no-op unless enabled)."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(self._env.now, category, message, dict(data))
        )

    def filter(self, category: str) -> typing.List[TraceRecord]:
        """All records in ``category``, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def format(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(r) for r in self.records)

    # ------------------------------------------------------------------
    # Canonical serialization (determinism checking)
    # ------------------------------------------------------------------
    def canonical_lines(self) -> typing.List[str]:
        """One canonical string per record, in recorded order.

        Data mappings are rendered with sorted keys so the serialization
        depends only on what was traced, never on dict insertion order.
        Two same-seed runs of a deterministic simulation produce
        identical canonical lines; the determinism checker
        (:mod:`repro.analysis.determinism`) diffs them.
        """
        lines = []
        for record in self.records:
            data = ",".join(
                f"{key}={record.data[key]!r}" for key in sorted(record.data)
            )
            lines.append(
                f"{record.time!r}|{record.category}|{record.message}|{data}"
            )
        return lines

    def digest(self) -> str:
        """SHA-256 over the canonical serialization of the trace."""
        hasher = hashlib.sha256()
        for line in self.canonical_lines():
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()
