"""Deterministic discrete-event simulation kernel.

This package is the substrate on which every other subsystem runs.  The
paper's evaluation (Tables 3.1 and 3.2, and the surrounding measurements)
is a function of *how many* remote calls, cache probes, disk accesses, and
marshalling operations each design performs, multiplied by per-primitive
costs measured on the 1987 testbed.  A discrete-event simulator that
charges calibrated costs for those primitives therefore reproduces the
paper's tradeoffs exactly, while being deterministic and laptop-scale.

The kernel is a small SimPy-flavoured engine:

- :class:`~repro.sim.kernel.Environment` owns the virtual clock and the
  event queue and runs generator-based processes.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf` and :class:`~repro.sim.events.AllOf`
  are the things a process may ``yield``.
- :class:`~repro.sim.resources.Resource`, ``CPU`` and ``Disk`` model
  contended devices with service times.
- :class:`~repro.sim.rng.RngRegistry` hands out independent, named,
  seeded random streams so that runs are reproducible.
- :class:`~repro.sim.trace.Tracer` and :mod:`repro.sim.stats` provide the
  instrumentation the benchmark harness reads.

All simulated time is in **milliseconds** (float), matching the paper's
reporting units.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.kernel import Environment, SimulationError
from repro.sim.process import Process
from repro.sim.resources import CPU, Disk, Resource
from repro.sim.rng import RngRegistry
from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.stats import Counter, Histogram, StatsRegistry, Timer

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU",
    "ConstantLatency",
    "Counter",
    "Disk",
    "EmpiricalLatency",
    "Environment",
    "Event",
    "ExponentialLatency",
    "Histogram",
    "Interrupt",
    "LatencyModel",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StatsRegistry",
    "Timeout",
    "TraceRecord",
    "Timer",
    "Tracer",
    "UniformLatency",
]
