"""Fault-tolerant resolution: the :class:`ResolutionPolicy` API.

The paper leans on replicated meta-storage ("a modified BIND") and
specialized caching for availability, but says little about what a
client should *do* when a lookup fails mid-flight.  This module is that
missing layer: one declarative policy object that every stage of the
resolution path (the meta resolver, ``FindNSM``, ``Import``, the HRPC
runtime) consults to decide

- how many times to try a remote call and with what per-call timeout,
- how long to back off between attempts (exponential, with jitter drawn
  from the simulation's named RNG streams so runs stay deterministic),
- whether to cache negative (NXDOMAIN) answers and for how long,
- whether to serve *stale* cached data when the authoritative server is
  unreachable, and for how long past expiry, and
- when to trip a per-target circuit breaker and fail fast instead of
  burning timeouts against a dead server.

The degradation ladder is: fresh cache hit -> retry with backoff ->
stale cache hit -> fail fast (breaker open).  Every rung is observable
in the stats registry (``*.retries``, ``*.stale_hits``,
``*.breaker.*``).

The module sits below :mod:`repro.bind`, :mod:`repro.hrpc`, and
:mod:`repro.core` in the dependency order so all of them can share it.

Its sibling :class:`FastPathPolicy` governs the *performance* side of
the same path: single-flight coalescing of identical in-flight lookups,
refresh-ahead cache renewal, and batched meta lookups.  Both policies
follow the same pattern — a frozen dataclass whose ``.disabled()``
constructor reproduces the paper-faithful prototype behaviour, so
benchmarks can ablate each mechanism independently.
"""

from __future__ import annotations

import dataclasses
import random
import typing
import warnings

from repro.net.errors import is_transient
from repro.sim.kernel import Environment


@dataclasses.dataclass(frozen=True)
class ResolutionPolicy:
    """Declarative fault-tolerance knobs for the whole resolution path.

    One instance is typically shared by a :class:`~repro.core.metastore.
    MetaStore`, its :class:`~repro.core.hns.HNS`, and the
    :class:`~repro.core.import_call.HrpcImporter` built on top, so the
    layers degrade coherently.
    """

    #: total tries per logical operation (1 = no retry)
    attempts: int = 4
    #: first backoff delay; doubles (by ``backoff_multiplier``) per retry
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    #: ceiling on any single backoff delay
    backoff_max_ms: float = 2_000.0
    #: fraction of the delay randomised away (0 = deterministic ladder);
    #: jittered delays are drawn from a named ``sim.rng`` stream
    jitter: float = 0.5
    #: per-call transport timeout; None defers to the transport default
    call_timeout_ms: typing.Optional[float] = 1_000.0
    #: TTL for cached NXDOMAIN answers (0 disables negative caching)
    negative_ttl_ms: float = 30_000.0
    #: how long past expiry a cached answer may be served when the
    #: authoritative server is unreachable (0 disables serve-stale)
    stale_window_ms: float = 120_000.0
    #: consecutive failures that trip a per-target circuit breaker
    #: (0 disables circuit breaking)
    breaker_threshold: int = 3
    #: how long a tripped breaker stays open before one probe is allowed
    breaker_reset_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.call_timeout_ms is not None and self.call_timeout_ms <= 0:
            raise ValueError("call timeout must be positive or None")
        if self.negative_ttl_ms < 0:
            raise ValueError("negative-cache TTL must be >= 0")
        if self.stale_window_ms < 0:
            raise ValueError("stale window must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker threshold must be >= 0")
        if self.breaker_reset_ms < 0:
            raise ValueError("breaker reset delay must be >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "ResolutionPolicy":
        """The pre-fault-tolerance behaviour: one try, no caching of
        failures, no stale serving, no breaker.  Benchmarks use this as
        the ablation baseline."""
        return cls(
            attempts=1,
            call_timeout_ms=None,
            negative_ttl_ms=0.0,
            stale_window_ms=0.0,
            breaker_threshold=0,
        )

    def backoff_ms(self, retry_index: int, rng: random.Random) -> float:
        """Delay before retry ``retry_index`` (0 = first retry).

        Exponential in ``retry_index``, capped at ``backoff_max_ms``,
        with up to ``jitter`` of the delay replaced by a uniform draw so
        synchronised clients do not retry in lockstep.
        """
        if retry_index < 0:
            raise ValueError("retry index must be >= 0")
        delay = min(
            self.backoff_base_ms * (self.backoff_multiplier ** retry_index),
            self.backoff_max_ms,
        )
        if self.jitter and delay > 0:
            floor = delay * (1.0 - self.jitter)
            delay = floor + rng.random() * (delay - floor)
        return delay


#: The policy used throughout the stack unless a caller overrides it.
DEFAULT_RESOLUTION_POLICY = ResolutionPolicy()


@dataclasses.dataclass(frozen=True)
class FastPathPolicy:
    """Performance knobs for the hot resolution path.

    The paper's cold ``FindNSM`` is six strictly sequential data
    mappings, "each of which involves a remote call in the case of a
    cache miss", and every concurrent miss on a host fires its own
    duplicate remote call.  This policy enables the three mechanisms
    that fix that under load:

    - **single-flight coalescing** (``coalesce``): concurrent identical
      ``(owner, rtype)`` lookups on one host share one in-flight remote
      call; followers park on the leader's event and pay only the
      cache-copy cost.  A leader failure propagates the one classified
      error to every follower.
    - **refresh-ahead renewal** (``refresh_ahead_fraction``): a probe
      that hits within the last ``fraction`` of an entry's TTL spawns a
      background renewal, so hot keys never go cold and tail latency
      stays at cache-hit cost.  Renewal failures are silent — the entry
      simply ages out and the :class:`ResolutionPolicy` serve-stale
      ladder takes over.
    - **batched meta lookups** (``batch_meta_lookups``): ``FindNSM``
      fetches mappings 1–3 as one chained multi-question query and the
      NSM-host address as one more — two round trips instead of six.

    ``None`` anywhere a :class:`FastPathPolicy` is accepted means the
    same as :meth:`disabled`: the paper-faithful sequential behaviour.
    """

    #: share one remote call among concurrent identical lookups
    coalesce: bool = True
    #: a hit this close to expiry (as a fraction of the entry's TTL)
    #: triggers a background renewal; 0 disables refresh-ahead
    refresh_ahead_fraction: float = 0.2
    #: resolve FindNSM's meta mappings with chained batch queries
    batch_meta_lookups: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.refresh_ahead_fraction <= 1.0:
            raise ValueError("refresh-ahead fraction must be in [0, 1]")

    @classmethod
    def disabled(cls) -> "FastPathPolicy":
        """The paper's six-sequential-mapping behaviour: no coalescing,
        no refresh-ahead, no batching.  The ablation baseline."""
        return cls(
            coalesce=False,
            refresh_ahead_fraction=0.0,
            batch_meta_lookups=False,
        )


#: Everything on: what the fast-path benchmarks opt into.  The stack
#: default stays ``None`` (off) so the paper-reproduction numbers hold.
DEFAULT_FAST_PATH_POLICY = FastPathPolicy()


@dataclasses.dataclass(frozen=True)
class ReplicaPolicy:
    """Replica-aware meta reads: how a resolver *exploits* replication.

    The paper replicates the meta store "for the usual reasons of
    performance, availability, and scalability" but the prototype client
    walks its replicas as a static ordered failover list: the primary is
    tried first, every time, and a dead or slow replica is only
    discovered by burning a full timeout against it.  This policy gates
    the three mechanisms that make reads replica-aware:

    - **adaptive replica selection** (``adaptive``): per-endpoint EWMA
      latency and in-flight counters; the first replica tried is the
      better of two sampled at random (power-of-two-choices), the rest
      are ordered by score.  Endpoints whose per-replica circuit breaker
      is open are skipped up front (``skip_open_breakers``) instead of
      timed out in order.
    - **hedged queries** (``hedge_quantile``): once a lookup has been
      outstanding for the given quantile of the observed per-replica
      latency distribution, the same question is re-issued to the
      next-best replica; the first answer wins and the loser's result is
      discarded.  Hedging composes with single-flight coalescing (only
      the coalescing leader ever hedges) and with the
      :class:`ResolutionPolicy` retry ladder (each retry round hedges
      independently).
    - **incremental zone transfer** (``ixfr``): secondaries and
      cache preloads request only the dynamic updates past their SOA
      serial from the primary's bounded per-zone journal, falling back
      to a full AXFR when the journal has been truncated.  Steady-state
      refresh cost is then proportional to churn, not zone size.

    ``None`` anywhere a :class:`ReplicaPolicy` is accepted means the
    same as :meth:`disabled`: the prototype's static
    primary-then-secondaries failover and full-transfer refresh.
    """

    #: EWMA/in-flight scoring with power-of-two-choices selection;
    #: False preserves the static ``[primary] + secondaries`` order
    adaptive: bool = True
    #: weight of the newest latency sample in the per-endpoint EWMA
    ewma_alpha: float = 0.3
    #: score penalty per outstanding request on an endpoint, so load
    #: spreads even while latency estimates are equal
    inflight_penalty_ms: float = 25.0
    #: hedge once a lookup is outstanding past this quantile of the
    #: recent successful-latency distribution (0 disables hedging)
    hedge_quantile: float = 0.95
    #: successful samples required before hedging arms
    hedge_min_samples: int = 8
    #: clamp on the computed hedge delay
    hedge_min_delay_ms: float = 1.0
    hedge_max_delay_ms: float = 1_000.0
    #: extra replicas a single exchange may hedge onto
    max_hedges: int = 1
    #: skip endpoints whose per-replica breaker is open during selection
    skip_open_breakers: bool = True
    #: consecutive failures that trip a *per-replica* breaker (0
    #: disables the per-replica breakers entirely)
    breaker_threshold: int = 3
    #: how long a tripped replica stays skipped before one probe
    breaker_reset_ms: float = 10_000.0
    #: request serial-delta zone transfers (IXFR) for secondary refresh
    #: and cache re-preload, with automatic AXFR fallback
    ixfr: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("EWMA alpha must be in (0, 1]")
        if self.inflight_penalty_ms < 0:
            raise ValueError("in-flight penalty must be >= 0")
        if not 0.0 <= self.hedge_quantile < 1.0:
            raise ValueError("hedge quantile must be in [0, 1)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge min samples must be >= 1")
        if self.hedge_min_delay_ms < 0 or self.hedge_max_delay_ms < 0:
            raise ValueError("hedge delays must be >= 0")
        if self.hedge_min_delay_ms > self.hedge_max_delay_ms:
            raise ValueError("hedge min delay must be <= max delay")
        if self.max_hedges < 0:
            raise ValueError("max hedges must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker threshold must be >= 0")
        if self.breaker_reset_ms < 0:
            raise ValueError("breaker reset delay must be >= 0")

    # ------------------------------------------------------------------
    @property
    def hedging(self) -> bool:
        """Whether hedged queries are enabled at all."""
        return self.hedge_quantile > 0.0 and self.max_hedges > 0

    @property
    def scheduling(self) -> bool:
        """Whether the replica scheduler is in play on the read path.

        When False (and ``ixfr`` aside), the resolver runs the exact
        static-failover code path the prototype uses.
        """
        return self.adaptive or self.hedging or self.skip_open_breakers

    @classmethod
    def disabled(cls) -> "ReplicaPolicy":
        """The prototype behaviour: static primary-then-secondaries
        failover, no hedging, no per-replica breakers, full-transfer
        refresh.  The ablation baseline."""
        return cls(
            adaptive=False,
            hedge_quantile=0.0,
            max_hedges=0,
            skip_open_breakers=False,
            breaker_threshold=0,
            ixfr=False,
        )


#: Everything on: what the replica-scheduling benchmarks opt into.  The
#: stack default stays ``None`` (off) so existing numbers hold.
DEFAULT_REPLICA_POLICY = ReplicaPolicy()


@dataclasses.dataclass(frozen=True)
class UpdatePolicy:
    """Write-path knobs: batched dynamic update and cache invalidation.

    The paper's prototype writes one record per round trip and lets
    caches find out about changes only when their TTL runs out — yet
    "evolving systems" (system merges, NSM rebinding waves, mass host
    renumbering) is the paper's core story.  This policy gates the
    production write path:

    - **batched updates** (``batch``): registrations issued within the
      ``batch_window_ms`` coalescing window on one host travel as a
      single ``UpdateBatchRequest`` datagram, with last-writer-wins
      merging of same-owner operations.  An NSM rebinding wave becomes
      one round trip instead of one per mapping.
    - **lease-based invalidation** (``invalidation="lease"``):
      registrations carry a lease the client must keep renewing; when
      the renewals stop, the primary retracts the binding on expiry and
      caps advertised TTLs to the lease remainder so caches never hold
      a binding longer than its owner is known to be alive.
    - **NOTIFY-based invalidation** (``invalidation="notify"``): the
      primary pushes SOA-serial bumps to secondaries and subscribed
      resolvers, which pull just the deltas through the IXFR journal
      and install them straight into their caches.

    ``None`` anywhere an :class:`UpdatePolicy` is accepted means the
    same as :meth:`disabled`: the prototype's one-record-at-a-time,
    TTL-only behaviour.
    """

    #: coalesce concurrent registrations into one batched round trip
    batch: bool = True
    #: operations per batch datagram (wire-format cap: 64)
    max_batch_ops: int = 64
    #: how long the first writer holds the batch open for followers
    batch_window_ms: float = 5.0
    #: how caches learn about changes: "ttl" (wait for expiry),
    #: "lease" (bindings lapse with their owner), or "notify"
    #: (primary pushes serial bumps; subscribers pull IXFR deltas)
    invalidation: str = "ttl"
    #: lease duration granted with each registration (lease mode)
    lease_ms: float = 10_000.0
    #: renew when this fraction of the lease has elapsed
    lease_renew_fraction: float = 0.5
    #: debounce before a serial bump fans out to subscribers
    notify_delay_ms: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= self.max_batch_ops <= 64:
            raise ValueError("max batch ops must be in [1, 64]")
        if self.batch_window_ms < 0:
            raise ValueError("batch window must be >= 0")
        if self.invalidation not in ("ttl", "lease", "notify"):
            raise ValueError("invalidation must be ttl, lease, or notify")
        if self.lease_ms <= 0:
            raise ValueError("lease duration must be positive")
        if not 0.0 < self.lease_renew_fraction < 1.0:
            raise ValueError("lease renew fraction must be in (0, 1)")
        if self.notify_delay_ms < 0:
            raise ValueError("notify delay must be >= 0")

    # ------------------------------------------------------------------
    @property
    def leases(self) -> bool:
        """Whether registrations carry (and must renew) leases."""
        return self.invalidation == "lease"

    @property
    def notify(self) -> bool:
        """Whether the primary pushes serial bumps to subscribers."""
        return self.invalidation == "notify"

    @property
    def active(self) -> bool:
        """Whether any part of the pipeline diverges from the prototype.

        When False, registration runs the exact one-record-at-a-time
        code path the prototype uses (bit-identical traces).
        """
        return self.batch or self.invalidation != "ttl"

    @classmethod
    def disabled(cls) -> "UpdatePolicy":
        """The prototype behaviour: one record per round trip, caches
        invalidated only by TTL expiry.  The ablation baseline."""
        return cls(batch=False, invalidation="ttl")


#: Everything on: what the update-path benchmarks opt into.  The stack
#: default stays ``None`` (off) so the paper-reproduction numbers hold.
DEFAULT_UPDATE_POLICY = UpdatePolicy()


@dataclasses.dataclass(frozen=True)
class DiscoveryPolicy:
    """Ad-hoc discovery knobs: beacons, liveness, and re-query fallback.

    The broadcast tier (:mod:`repro.broadcast`) locates a name with one
    multicast question per lookup — every query taxes every host on the
    segment.  The discovery tier (:mod:`repro.discovery`) amortizes
    that: each host periodically broadcasts a signed presence beacon
    (name set + address + incarnation), every listener folds beacons
    into a passive membership view, and lookups become local table
    probes.  This policy gates the mechanisms that make the view safe
    to trust:

    - **beaconing** (``beacon_period_ms`` / ``beacon_jitter``): the
      advertisement cadence, jittered per host so a segment of peers
      never beats in lockstep.
    - **watchdog liveness** (``watchdog_multiplier``): an entry whose
      owner has been silent for ``period x multiplier`` is evicted —
      liveness-driven eviction racing (and normally beating) plain TTL
      expiry.  0 disables the watchdog: entries die by TTL only.
    - **suspect-before-evict probing** (``probe_before_evict``): a
      lapsed entry gets one direct unicast probe before eviction, so a
      host whose beacons were merely lost is refreshed, not dropped.
    - **re-query on miss** (``requery_on_miss``): a lookup that misses
      the membership view falls back to a one-shot broadcast
      :class:`~repro.broadcast.NameQuery` before failing.

    ``None`` anywhere a :class:`DiscoveryPolicy` is accepted means the
    same as :meth:`disabled`: no beacons, no membership view — every
    lookup is the one-shot broadcast locator the paper rejects.
    """

    #: run the beacon/watchdog machinery at all; False degrades the
    #: discovery NSM to the one-shot broadcast locator
    enabled: bool = True
    #: nominal gap between presence beacons
    beacon_period_ms: float = 1_000.0
    #: fraction of the period randomised away (named RNG stream per
    #: host), so peers never beacon in lockstep
    beacon_jitter: float = 0.2
    #: TTL stamped on membership entries — the slow eviction path the
    #: watchdog races
    entry_ttl_ms: float = 30_000.0
    #: watchdog deadline = beacon period x this; 0 disables
    #: liveness-driven eviction (entries die by TTL only)
    watchdog_multiplier: float = 3.0
    #: probe a lapsed entry once (direct unicast) before evicting it
    probe_before_evict: bool = True
    #: how long the watchdog waits for a probe reply
    probe_timeout_ms: float = 250.0
    #: fall back to a one-shot broadcast NameQuery on a view miss
    requery_on_miss: bool = True
    #: reply window for the broadcast fallback
    broadcast_wait_ms: float = 60.0

    def __post_init__(self) -> None:
        if self.beacon_period_ms <= 0:
            raise ValueError("beacon period must be positive")
        if not 0.0 <= self.beacon_jitter < 1.0:
            raise ValueError("beacon jitter must be in [0, 1)")
        if self.entry_ttl_ms <= 0:
            raise ValueError("entry TTL must be positive")
        if self.watchdog_multiplier < 0:
            raise ValueError("watchdog multiplier must be >= 0")
        if self.probe_timeout_ms <= 0:
            raise ValueError("probe timeout must be positive")
        if self.broadcast_wait_ms <= 0:
            raise ValueError("broadcast wait window must be positive")

    # ------------------------------------------------------------------
    @property
    def liveness(self) -> bool:
        """Whether watchdog (liveness-driven) eviction is armed."""
        return self.enabled and self.watchdog_multiplier > 0

    def watchdog_deadline_ms(self) -> float:
        """How long after the last beacon an entry is considered live."""
        return self.beacon_period_ms * self.watchdog_multiplier

    @classmethod
    def disabled(cls) -> "DiscoveryPolicy":
        """No beacons, no membership view: every lookup is the existing
        one-shot broadcast locator.  The ablation baseline."""
        return cls(
            enabled=False,
            watchdog_multiplier=0.0,
            probe_before_evict=False,
            requery_on_miss=True,
        )


#: Everything on: what the discovery scenarios and benchmarks opt into.
DEFAULT_DISCOVERY_POLICY = DiscoveryPolicy()


@dataclasses.dataclass(frozen=True)
class PolicySet:
    """One frozen bundle of the resolution-path policies.

    Five PRs grew four independent policy objects, and every layer
    (:class:`~repro.core.metastore.MetaStore`,
    :class:`~repro.core.hns.HNS`, ``BindResolver``) took them as four
    separate keyword arguments with subtly different ``None`` fallback
    rules.  A :class:`PolicySet` is the one object callers pass instead;
    ``None`` in any slot uniformly means that mechanism's
    ``.disabled()`` prototype behaviour.  The ``discovery`` slot (PR 10)
    configures the ad-hoc beacon tier the same way.

    The legacy per-policy kwargs still work as deprecated aliases (they
    warn once per call site and fold over the base set via
    :func:`merge_policies`).
    """

    resolution: typing.Optional[ResolutionPolicy] = None
    fast_path: typing.Optional[FastPathPolicy] = None
    replica: typing.Optional[ReplicaPolicy] = None
    update: typing.Optional[UpdatePolicy] = None
    discovery: typing.Optional[DiscoveryPolicy] = None

    @classmethod
    def default(cls) -> "PolicySet":
        """What the stack runs with when nothing is specified: fault
        tolerance on, the opt-in mechanisms (fast path, replica
        scheduling, write pipeline, discovery) off — matching the
        historical per-kwarg defaults."""
        return cls(resolution=DEFAULT_RESOLUTION_POLICY)

    @classmethod
    def paper_prototype(cls) -> "PolicySet":
        """Every mechanism at its ``.disabled()`` baseline: the paper's
        prototype, end to end.  Ablation benchmarks start here."""
        return cls(
            resolution=ResolutionPolicy.disabled(),
            fast_path=FastPathPolicy.disabled(),
            replica=ReplicaPolicy.disabled(),
            update=UpdatePolicy.disabled(),
            discovery=DiscoveryPolicy.disabled(),
        )


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()

#: call sites that already got their deprecation warning
_WARNED: typing.Set[typing.Tuple[str, str]] = set()


def reset_policy_deprecation_warnings() -> None:
    """Forget which call sites warned already (for tests)."""
    _WARNED.clear()


def merge_policies(
    base: PolicySet,
    policy: typing.Any = _UNSET,
    fast_path: typing.Any = _UNSET,
    replica_policy: typing.Any = _UNSET,
    update_policy: typing.Any = _UNSET,
    caller: str = "",
) -> PolicySet:
    """Fold explicitly-passed legacy per-policy kwargs over ``base``.

    Constructors that grew up taking ``policy=`` / ``fast_path=`` /
    ``replica_policy=`` route those kwargs here: each one that was
    actually passed (sentinel-checked, so an explicit ``None`` still
    means "disabled") overrides the matching :class:`PolicySet` slot and
    triggers a one-time :class:`DeprecationWarning` per call site.
    """
    changes: typing.Dict[str, typing.Any] = {}
    for kwarg, field, value in (
        ("policy", "resolution", policy),
        ("fast_path", "fast_path", fast_path),
        ("replica_policy", "replica", replica_policy),
        ("update_policy", "update", update_policy),
    ):
        if isinstance(value, _Unset):
            continue
        mark = (caller, kwarg)
        if mark not in _WARNED:
            _WARNED.add(mark)
            warnings.warn(
                f"{caller}: the {kwarg!r} kwarg is deprecated; pass "
                "policies=PolicySet(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        changes[field] = value
    if not changes:
        return base
    return dataclasses.replace(base, **changes)


def retrying(
    env: Environment,
    policy: typing.Optional[ResolutionPolicy],
    attempt: typing.Callable[[int], typing.Generator],
    classify: typing.Callable[[BaseException], bool] = is_transient,
    rng_stream: str = "resolution.backoff",
    stat: str = "",
) -> typing.Generator:
    """Drive ``attempt(i)`` up to ``policy.attempts`` times.

    ``attempt`` must return a *fresh* generator per call (generators are
    single-use).  Only exceptions ``classify`` deems transient are
    retried; everything else — and the final exhausted attempt — raises
    to the caller.  Backoff delays are simulated time, jittered from the
    ``rng_stream`` named stream.  ``stat``, if given, names a counter
    incremented once per retry.
    """
    attempts = policy.attempts if policy is not None else 1
    for i in range(attempts):
        try:
            with env.obs.span("resolution.attempt", op=rng_stream, attempt=i):
                result = yield from attempt(i)
            return result
        except Exception as err:  # noqa: BLE001 - classified below
            if i == attempts - 1 or not classify(err):
                raise
            if stat:
                env.stats.counter(stat).increment()
            assert policy is not None
            delay = policy.backoff_ms(i, env.rng.stream(rng_stream))
            if delay > 0:
                yield env.timeout(delay)
    raise AssertionError("unreachable")  # pragma: no cover


class CircuitOpen(Exception):
    """A call was refused because the target's circuit breaker is open.

    Raised *before* any network traffic: failing fast is the point.
    """

    def __init__(self, target: str, retry_at_ms: float):
        super().__init__(
            f"circuit breaker for {target!r} is open (probe at "
            f"t={retry_at_ms:.0f} ms)"
        )
        self.target = target
        self.retry_at_ms = retry_at_ms


class CircuitBreaker:
    """Consecutive-failure circuit breaker over simulated time.

    Closed until ``threshold`` consecutive recorded failures, then open
    for ``reset_ms``; after that, half-open: one probe call is allowed
    through, and its outcome closes or re-opens the circuit.  A
    ``threshold`` of 0 disables the breaker entirely (always closed).
    """

    def __init__(
        self,
        env: Environment,
        target: str,
        threshold: int,
        reset_ms: float,
    ):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.env = env
        self.target = target
        self.threshold = threshold
        self.reset_ms = reset_ms
        self.consecutive_failures = 0
        self.opened_at: typing.Optional[float] = None
        self._probe_outstanding = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self.opened_at is None:
            return "closed"
        if self.env.now >= self.opened_at + self.reset_ms:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a call proceed right now?

        In the half-open state only the first caller gets through (the
        probe); concurrent callers are refused until its outcome lands.
        """
        if self.threshold == 0:
            return True
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probe_outstanding:
            self._probe_outstanding = True
            return True
        return False

    def check(self) -> None:
        """Raise :class:`CircuitOpen` unless :meth:`allow` passes."""
        if not self.allow():
            assert self.opened_at is not None
            raise CircuitOpen(self.target, self.opened_at + self.reset_ms)

    def record_success(self) -> None:
        """A call to the target completed: close the circuit."""
        self.consecutive_failures = 0
        self.opened_at = None
        self._probe_outstanding = False

    def record_failure(self) -> None:
        """A call to the target failed: maybe trip the circuit."""
        self._probe_outstanding = False
        self.consecutive_failures += 1
        if self.threshold and self.consecutive_failures >= self.threshold:
            self.opened_at = self.env.now


class CircuitBreakerRegistry:
    """Lazily creates one :class:`CircuitBreaker` per target name."""

    def __init__(self, env: Environment, policy: ResolutionPolicy):
        self.env = env
        self.policy = policy
        self._breakers: typing.Dict[str, CircuitBreaker] = {}

    def breaker(self, target: str) -> CircuitBreaker:
        """The breaker guarding ``target``, created on first use."""
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(
                self.env,
                target,
                self.policy.breaker_threshold,
                self.policy.breaker_reset_ms,
            )
            self._breakers[target] = breaker
        return breaker

    def states(self) -> typing.Dict[str, str]:
        """target -> breaker state, for observability and tests."""
        return {name: b.state for name, b in self._breakers.items()}
