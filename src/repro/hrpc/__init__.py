"""Heterogeneous RPC (HRPC).

The HRPC facility [Bershad et al. 1987] separates an RPC system into
five components — stubs, binding protocol, data representation,
transport protocol, and control protocol — each a "black box" that can
be mixed and matched *at bind time* to emulate a foreign RPC system.

This package models:

- :class:`~repro.hrpc.binding.HRPCBinding` — the system-independent
  handle a client receives, naming the component set plus the server
  endpoint;
- :mod:`~repro.hrpc.suites` — the component sets (Sun RPC = UDP + XDR +
  portmapper binding; Courier = stream + Courier representation +
  Courier binder; Raw = the request/response protocol the HNS uses to
  talk to BIND) with their calibrated per-call control costs;
- :class:`~repro.hrpc.server.HrpcServer` — server-side program/procedure
  dispatch;
- :class:`~repro.hrpc.runtime.HrpcRuntime` — client-side call execution
  that selects components from the binding dynamically;
- :class:`~repro.hrpc.portmapper.Portmapper` and
  :class:`~repro.hrpc.courier_binder.CourierBinder` — the native
  binding protocols the binding NSMs must emulate.
"""

from repro.hrpc.binding import HRPCBinding
from repro.hrpc.errors import (
    BindingProtocolError,
    HrpcError,
    NoSuchProcedure,
    NoSuchProgram,
)
from repro.hrpc.suites import PROTOCOL_SUITES, ProtocolSuite, suite_named
from repro.hrpc.server import HrpcServer, RpcRequest, RpcReply
from repro.hrpc.runtime import HrpcRuntime
from repro.hrpc.portmapper import Portmapper, PortmapperClient
from repro.hrpc.courier_binder import CourierBinder, CourierBinderClient

__all__ = [
    "BindingProtocolError",
    "CourierBinder",
    "CourierBinderClient",
    "HRPCBinding",
    "HrpcError",
    "HrpcRuntime",
    "HrpcServer",
    "NoSuchProcedure",
    "NoSuchProgram",
    "PROTOCOL_SUITES",
    "Portmapper",
    "PortmapperClient",
    "ProtocolSuite",
    "RpcReply",
    "RpcRequest",
    "suite_named",
]
