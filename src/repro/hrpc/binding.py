"""HRPC bindings: the system-independent server handle.

"The client presents a name and is returned a Binding to an NSM that
understands exactly how to do binding on the system type from which the
name came. ... This Binding is system-independent from the point of
view of the client, even though the means by which this information is
gathered by the NSM varies widely from system to system."
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.addresses import Endpoint


@dataclasses.dataclass(frozen=True)
class HRPCBinding:
    """Everything needed to call a remote program.

    ``suite`` selects the transport / data representation / control
    protocol black boxes; ``endpoint`` is where the server listens;
    ``program`` names the RPC program to dispatch to.
    """

    endpoint: Endpoint
    program: str
    suite: str = "sunrpc"
    system_type: str = "unix"
    metadata: typing.Mapping[str, str] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.program:
            raise ValueError("binding needs a program name")
        # Late import to avoid a cycle at module load.
        from repro.hrpc.suites import suite_named

        suite_named(self.suite)  # validates

    def describe(self) -> str:
        return (
            f"HRPCBinding({self.program} @ {self.endpoint}, suite={self.suite}, "
            f"system={self.system_type})"
        )

    def wire_size(self) -> int:
        """Approximate marshalled size of the binding structure."""
        return 48 + len(self.program) + sum(
            len(k) + len(v) for k, v in self.metadata.items()
        )
