"""The Courier binding agent: the Xerox-side binding protocol.

Courier systems locate services through a binding agent rather than a
portmapper; exchanges run over the stream transport and cost more,
which is why the paper's NSM call range tops out higher on the Xerox
side.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.errors import BindingProtocolError
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint
from repro.net.host import Host, Service
from repro.net.transport import RemoteCallError, Transport


@dataclasses.dataclass
class LocateService:
    """Where does this service listen?"""
    service: str


@dataclasses.dataclass
class AdvertiseService:
    """A server advertises (or withdraws) its port."""
    service: str
    port: int  # 0 withdraws


@dataclasses.dataclass
class LocateReply:
    """The advertised port (0 = unknown)."""
    port: int


class CourierBinder(Service):
    """Per-host Courier binding agent."""

    def __init__(self, host: Host, calibration: Calibration = DEFAULT_CALIBRATION):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self._services: typing.Dict[str, int] = {}
        self.endpoint: typing.Optional[Endpoint] = None

    def listen(self, port: int = WELL_KNOWN_PORTS["courier-binder"]) -> Endpoint:
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def advertise_local(self, service: str, port: int) -> None:
        if not 0 < port <= 65535:
            raise ValueError(f"bad port {port}")
        self._services[service] = port

    def handle(self, datagram, responder):
        request = datagram.payload
        yield from self.host.cpu.compute(self.calibration.courier_binder_server_ms)
        if isinstance(request, LocateService):
            responder(LocateReply(self._services.get(request.service, 0)), 16)
        elif isinstance(request, AdvertiseService):
            if request.port == 0:
                self._services.pop(request.service, None)
            else:
                self._services[request.service] = request.port
            responder(LocateReply(request.port), 16)
        else:
            responder(LocateReply(0), 16)


class CourierBinderClient:
    """Client side of the Courier binding protocol (one stream exchange)."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.host = host
        self.transport = transport
        self.calibration = calibration

    def locate(self, server_address, service: str) -> typing.Generator:
        endpoint = Endpoint(server_address, WELL_KNOWN_PORTS["courier-binder"])
        try:
            reply = yield from self.transport.request(
                self.host, endpoint, LocateService(service), 48
            )
        except RemoteCallError as err:
            raise BindingProtocolError(str(err)) from err
        if not isinstance(reply, LocateReply):
            raise BindingProtocolError(f"malformed binder reply {reply!r}")
        if reply.port == 0:
            raise BindingProtocolError(
                f"service {service!r} not advertised at {server_address}"
            )
        return reply.port

    def advertise(self, server_address, service: str, port: int) -> typing.Generator:
        endpoint = Endpoint(server_address, WELL_KNOWN_PORTS["courier-binder"])
        reply = yield from self.transport.request(
            self.host, endpoint, AdvertiseService(service, port), 48
        )
        if not isinstance(reply, LocateReply):
            raise BindingProtocolError(f"malformed binder reply {reply!r}")
        return reply.port
