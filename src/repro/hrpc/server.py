"""Server-side HRPC: program and procedure dispatch.

An :class:`HrpcServer` is bound to one host port and hosts one or more
*programs*; each program maps procedure names to handler generators.
Handlers receive the call arguments and a context object, may yield
simulation events (CPU, nested calls), and return their result.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hrpc.errors import NoSuchProcedure, NoSuchProgram
from repro.hrpc.suites import suite_named
from repro.net.addresses import Endpoint
from repro.net.host import Host, Service

Handler = typing.Callable[..., typing.Generator]


@dataclasses.dataclass
class RpcRequest:
    """Wire payload of one HRPC call."""

    program: str
    procedure: str
    args: typing.Tuple[object, ...]
    suite: str
    arg_size_bytes: int = 128


@dataclasses.dataclass
class RpcReply:
    """Wire payload of one HRPC reply."""

    result: object
    result_size_bytes: int = 128


@dataclasses.dataclass
class CallContext:
    """Handed to every handler: who is serving this call, and the suite."""

    server: "HrpcServer"
    host: Host
    suite: str


class RpcProgram:
    """One named program: a set of procedures."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("program needs a name")
        self.name = name
        self._procedures: typing.Dict[str, Handler] = {}

    def procedure(self, name: str, handler: Handler) -> None:
        if name in self._procedures:
            raise ValueError(f"procedure {name!r} already registered on {self.name}")
        self._procedures[name] = handler

    def handler_for(self, name: str) -> Handler:
        handler = self._procedures.get(name)
        if handler is None:
            raise NoSuchProcedure(f"{self.name}.{name}")
        return handler

    @property
    def procedures(self) -> typing.List[str]:
        return sorted(self._procedures)


class HrpcServer(Service):
    """Dispatches :class:`RpcRequest` messages to registered programs."""

    def __init__(self, host: Host, name: str = ""):
        self.host = host
        self.env = host.env
        self.name = name or f"hrpc@{host.name}"
        self._programs: typing.Dict[str, RpcProgram] = {}
        self.endpoint: typing.Optional[Endpoint] = None

    def listen(self, port: int) -> Endpoint:
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def register_program(self, program: RpcProgram) -> None:
        if program.name in self._programs:
            raise ValueError(f"program {program.name!r} already registered")
        self._programs[program.name] = program

    def program(self, name: str) -> RpcProgram:
        """Get-or-create a program (convenient for incremental setup)."""
        if name not in self._programs:
            self._programs[name] = RpcProgram(name)
        return self._programs[name]

    def has_program(self, name: str) -> bool:
        return name in self._programs

    # ------------------------------------------------------------------
    def handle(self, datagram, responder):
        request = datagram.payload
        if not isinstance(request, RpcRequest):
            raise NoSuchProgram(f"{self.name}: non-RPC payload {request!r}")
        suite = suite_named(request.suite)
        # Server-side control protocol + demarshalling of the arguments.
        yield from self.host.cpu.compute(suite.server_control_ms)
        program = self._programs.get(request.program)
        if program is None:
            raise NoSuchProgram(f"{request.program} on {self.name}")
        handler = program.handler_for(request.procedure)
        context = CallContext(server=self, host=self.host, suite=request.suite)
        self.env.stats.counter(
            f"hrpc.{self.name}.{request.program}.{request.procedure}"
        ).increment()
        self.env.trace.emit(
            "hrpc",
            f"{self.name}: {request.program}.{request.procedure}"
            f" via {request.suite}",
        )
        result = yield from handler(context, *request.args)
        if isinstance(result, RpcReply):
            reply = result
        else:
            reply = RpcReply(result)
        responder(reply, reply.result_size_bytes)

    def describe(self) -> str:
        return f"HrpcServer({self.name}; programs: {sorted(self._programs)})"
