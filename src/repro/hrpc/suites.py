"""Protocol suites: named component sets with calibrated call costs.

"These black boxes can be 'mixed and matched' to emulate different
communication protocols at call-time.  The set of protocols to be used
is determined dynamically at bind-time."

Each suite names its transport, data representation, and binding
protocol, plus the client/server control-protocol CPU cost per call.
Cost provenance:

- ``raw``: the Raw HRPC protocol suite, "which allows HRPC clients to
  make calls to any message passing program that conforms with the
  basic RPC paradigm".  Client+server control ≈ 30.6 ms; with ~2 ms of
  wire time this is the paper's C(remote call) ≈ 33 ms estimate, and it
  is what each HNS meta-mapping pays.
- ``sunrpc``: a full Sun RPC emulated call; fit to Table 3.1's
  colocation deltas (~43 ms per extra inter-process call).
- ``courier``: Courier over a stream transport; the slower end of the
  paper's 22-38 ms NSM-call range scaled consistently with the table.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class ProtocolSuite:
    """One mix-and-match component set."""

    name: str
    transport: str          # "udp" or "tcp"
    data_representation: str  # "xdr" or "courier"
    binding_protocol: str   # "portmapper", "courier-binder", or "static"
    client_control_ms: float
    server_control_ms: float

    @property
    def call_cpu_overhead_ms(self) -> float:
        """Total per-call control CPU, both sides."""
        return self.client_control_ms + self.server_control_ms


PROTOCOL_SUITES: typing.Dict[str, ProtocolSuite] = {
    suite.name: suite
    for suite in (
        ProtocolSuite(
            name="sunrpc",
            transport="udp",
            data_representation="xdr",
            binding_protocol="portmapper",
            client_control_ms=20.5,
            server_control_ms=20.5,
        ),
        ProtocolSuite(
            name="courier",
            transport="tcp",
            data_representation="courier",
            binding_protocol="courier-binder",
            client_control_ms=26.0,
            server_control_ms=26.0,
        ),
        ProtocolSuite(
            name="raw",
            transport="udp",
            data_representation="xdr",
            binding_protocol="static",
            client_control_ms=16.08,
            server_control_ms=16.08,
        ),
        ProtocolSuite(
            name="raw-tcp",
            transport="tcp",
            data_representation="xdr",
            binding_protocol="static",
            client_control_ms=16.08,
            server_control_ms=16.08,
        ),
    )
}


def suite_named(name: str) -> ProtocolSuite:
    """Look up a protocol suite; raises KeyError for unknown names."""
    suite = PROTOCOL_SUITES.get(name)
    if suite is None:
        raise KeyError(
            f"unknown protocol suite {name!r}; known: {sorted(PROTOCOL_SUITES)}"
        )
    return suite
