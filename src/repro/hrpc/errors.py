"""HRPC failure modes."""


class HrpcError(Exception):
    """Base class for HRPC-level failures."""


class NoSuchProgram(HrpcError):
    """The destination host has no such RPC program registered."""


class NoSuchProcedure(HrpcError):
    """The program exists but lacks the named procedure."""


class BindingProtocolError(HrpcError):
    """A native binding protocol (portmapper, Courier binder) failed."""
