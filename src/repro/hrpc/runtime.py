"""Client-side HRPC: executing calls against a binding.

"In homogeneous systems, the choice of RPC components is fixed at
implementation time ... With HRPC, these components have been separated
from each other and made dynamically selectable."  The runtime looks at
the binding's suite name at call time and picks the matching transport,
data representation, and control costs.
"""

from __future__ import annotations

import typing

from repro.hrpc.binding import HRPCBinding
from repro.hrpc.errors import HrpcError
from repro.hrpc.server import RpcReply, RpcRequest
from repro.hrpc.suites import suite_named
from repro.net.errors import is_transient
from repro.net.host import Host
from repro.net.internet import Internetwork
from repro.net.transport import (
    DatagramTransport,
    RemoteCallError,
    StreamTransport,
    Transport,
)
from repro.resolution import ResolutionPolicy


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"``, for retry decisions.

    Transient: the transport could not complete the exchange (timeout,
    crashed host, refused connection) — trying again may succeed and is
    safe because the request never reached application code, or at
    worst re-executes an idempotent lookup.

    Permanent: everything else.  In particular a
    :class:`~repro.net.transport.RemoteCallError` means the remote
    *service* raised — the call was delivered and answered, so retrying
    it would just re-raise the same application error (or worse, repeat
    a non-idempotent operation).  ``RemoteCallError`` is therefore never
    retried anywhere in the stack.
    """
    if isinstance(exc, RemoteCallError):
        return "permanent"
    return "transient" if is_transient(exc) else "permanent"


class HrpcRuntime:
    """Per-host HRPC client machinery."""

    def __init__(self, host: Host, internet: Internetwork):
        self.host = host
        self.env = host.env
        self.internet = internet
        self._transports: typing.Dict[str, Transport] = {
            "udp": DatagramTransport(internet),
            "tcp": StreamTransport(internet),
        }

    def transport_named(self, name: str) -> Transport:
        transport = self._transports.get(name)
        if transport is None:
            raise HrpcError(f"unknown transport {name!r}")
        return transport

    def call(
        self,
        binding: HRPCBinding,
        procedure: str,
        *args: object,
        arg_size_bytes: int = 128,
        timeout_ms: typing.Optional[float] = None,
        policy: typing.Optional[ResolutionPolicy] = None,
    ) -> typing.Generator:
        """Invoke ``procedure`` on the program the binding points at.

        Component selection happens here, at call time, from the
        binding: transport, data representation (reflected in the
        control cost), and control protocol all come from the suite.
        Remote exceptions re-raise in the caller.

        With a :class:`ResolutionPolicy`, transport-level failures that
        :func:`classify_error` deems transient are retried with
        jittered exponential backoff; a :class:`RemoteCallError` — the
        remote service itself raising — is permanent and never retried.
        """
        suite = suite_named(binding.suite)
        transport = self.transport_named(suite.transport)
        with self.env.obs.span(
            "hrpc.call",
            program=binding.program,
            procedure=procedure,
            suite=binding.suite,
        ):
            # Client-side control protocol + argument marshalling.
            yield from self.host.cpu.compute(suite.client_control_ms)
            request = RpcRequest(
                program=binding.program,
                procedure=procedure,
                args=args,
                suite=binding.suite,
                arg_size_bytes=arg_size_bytes,
            )
            if timeout_ms is None and policy is not None:
                timeout_ms = policy.call_timeout_ms
            attempts = policy.attempts if policy is not None else 1
            self.env.stats.counter(f"hrpc.calls.{binding.suite}").increment()
            for attempt in range(attempts):
                if attempt:
                    self.env.stats.counter("hrpc.retries").increment()
                    assert policy is not None
                    delay = policy.backoff_ms(
                        attempt - 1, self.env.rng.stream("hrpc.backoff")
                    )
                    if delay > 0:
                        yield self.env.timeout(delay)
                with self.env.obs.span(
                    "hrpc.attempt", attempt=attempt
                ) as aspan:
                    try:
                        reply = yield from transport.request(
                            self.host,
                            binding.endpoint,
                            request,
                            arg_size_bytes,
                            timeout_ms=timeout_ms,
                        )
                    except RemoteCallError as err:
                        # Surface the remote exception as if raised
                        # locally, which is what an RPC control protocol's
                        # error path does.  Never retried: the call
                        # reached the service.
                        raise err.remote_exception from err
                    except Exception as err:  # noqa: BLE001 - classified below
                        if (
                            attempt == attempts - 1
                            or classify_error(err) != "transient"
                        ):
                            raise
                        aspan.set(
                            outcome="retried",
                            error_type=type(err).__name__,
                        )
                        continue
                if not isinstance(reply, RpcReply):
                    raise HrpcError(f"malformed reply {reply!r}")
                return reply.result
            raise AssertionError("unreachable")  # pragma: no cover
