"""The Sun RPC portmapper: program number/name -> port.

This is the native binding protocol of the Sun systems in the testbed.
A binding NSM for Sun-type systems must run this protocol ("the actual
mechanisms employed for naming, server activation, and port
determination vary considerably" — this is the Sun variant).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.errors import BindingProtocolError
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint
from repro.net.host import Host, Service
from repro.net.transport import RemoteCallError, Transport


@dataclasses.dataclass
class GetPort:
    """Request: what port does this program listen on?"""

    program: str


@dataclasses.dataclass
class SetPort:
    """Request: a server registers (or clears) its port."""

    program: str
    port: int  # 0 clears the registration


@dataclasses.dataclass
class PortReply:
    """The registered port (0 = unknown program)."""
    port: int  # 0 means unknown program


#: time to fork/exec a dormant server on a 1987 workstation
DEFAULT_ACTIVATION_MS = 250.0


class Portmapper(Service):
    """The per-host registration service on the well-known port.

    Besides static registrations, the portmapper supports *server
    activation* (inetd-style): a program may be registered dormant with
    a factory; the first GETPORT for it pays the activation cost, spawns
    the service on its port, and subsequent bindings find it running —
    one of the per-system "mechanisms employed for naming, server
    activation, and port determination" a binding NSM must drive.
    """

    def __init__(
        self,
        host: Host,
        calibration: Calibration = DEFAULT_CALIBRATION,
        activation_ms: float = DEFAULT_ACTIVATION_MS,
    ):
        if activation_ms < 0:
            raise ValueError("activation cost must be non-negative")
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.activation_ms = activation_ms
        self._ports: typing.Dict[str, int] = {}
        self._dormant: typing.Dict[
            str, typing.Tuple[int, typing.Callable[[Host, int], object]]
        ] = {}
        self.activations = 0
        self.endpoint: typing.Optional[Endpoint] = None

    def listen(self, port: int = WELL_KNOWN_PORTS["portmapper"]) -> Endpoint:
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def register_local(self, program: str, port: int) -> None:
        """Direct registration for servers on the same host (no RPC)."""
        if not 0 < port <= 65535:
            raise ValueError(f"bad port {port}")
        self._ports[program] = port

    def register_activatable(
        self,
        program: str,
        port: int,
        factory: typing.Callable[[Host, int], object],
    ) -> None:
        """Register a dormant program.

        ``factory(host, port)`` must create and bind the service when
        the first binding request arrives.
        """
        if not 0 < port <= 65535:
            raise ValueError(f"bad port {port}")
        if program in self._ports:
            raise ValueError(f"{program!r} is already running")
        self._dormant[program] = (port, factory)

    def is_running(self, program: str) -> bool:
        return program in self._ports

    def _activate(self, program: str) -> typing.Generator:
        """Spawn a dormant program; returns its port."""
        port, factory = self._dormant.pop(program)
        yield from self.host.cpu.compute(self.activation_ms)
        factory(self.host, port)
        self._ports[program] = port
        self.activations += 1
        self.env.stats.counter(f"portmapper.{self.host.name}.activations").increment()
        self.env.trace.emit(
            "hrpc", f"portmapper@{self.host.name}: activated {program} on {port}"
        )
        return port

    def handle(self, datagram, responder):
        request = datagram.payload
        yield from self.host.cpu.compute(self.calibration.portmapper_server_ms)
        if isinstance(request, GetPort):
            port = self._ports.get(request.program, 0)
            if port == 0 and request.program in self._dormant:
                port = yield from self._activate(request.program)
            responder(PortReply(port), 16)
        elif isinstance(request, SetPort):
            if request.port == 0:
                self._ports.pop(request.program, None)
            else:
                self._ports[request.program] = request.port
            responder(PortReply(request.port), 16)
        else:
            responder(PortReply(0), 16)


class PortmapperClient:
    """Client side of the portmapper protocol.

    The Sun binding protocol does two exchanges per binding: a GETPORT
    plus a liveness ping of the registered port (modelled as a second
    portmapper exchange, per ``Calibration.portmapper_exchanges``).
    """

    def __init__(
        self,
        host: Host,
        transport: Transport,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.host = host
        self.env = host.env
        self.transport = transport
        self.calibration = calibration

    def get_port(self, server_address, program: str) -> typing.Generator:
        """Run the binding protocol; returns the program's port."""
        endpoint = Endpoint(server_address, WELL_KNOWN_PORTS["portmapper"])
        port = 0
        for _ in range(max(1, self.calibration.portmapper_exchanges)):
            try:
                reply = yield from self.transport.request(
                    self.host, endpoint, GetPort(program), 32
                )
            except RemoteCallError as err:
                raise BindingProtocolError(str(err)) from err
            if not isinstance(reply, PortReply):
                raise BindingProtocolError(f"malformed portmapper reply {reply!r}")
            port = reply.port
            if port == 0:
                raise BindingProtocolError(
                    f"program {program!r} not registered at {server_address}"
                )
        return port

    def set_port(self, server_address, program: str, port: int) -> typing.Generator:
        endpoint = Endpoint(server_address, WELL_KNOWN_PORTS["portmapper"])
        reply = yield from self.transport.request(
            self.host, endpoint, SetPort(program, port), 32
        )
        if not isinstance(reply, PortReply):
            raise BindingProtocolError(f"malformed portmapper reply {reply!r}")
        return reply.port
