"""Mailbox servers: the ``hcsmail`` HRPC program on each mail host."""

from __future__ import annotations

import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.server import HrpcServer, RpcReply
from repro.mail.message import MailMessage
from repro.net.host import Host

MAIL_PROGRAM = "hcsmail"
MAIL_PORT = 9500


class MailboxError(Exception):
    """Raised for unknown mailboxes."""


class MailboxServer:
    """Stores mailboxes and serves deliver/list/fetch over HRPC.

    Wraps an :class:`HrpcServer`; messages persist to the host's disk
    (charged per delivery), as a 1987 spool directory would.
    """

    def __init__(
        self,
        host: Host,
        mailboxes: typing.Sequence[str] = (),
        calibration: Calibration = DEFAULT_CALIBRATION,
        port: int = MAIL_PORT,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self._boxes: typing.Dict[str, typing.List[MailMessage]] = {
            name: [] for name in mailboxes
        }
        self.server = HrpcServer(host, name=f"mail@{host.name}")
        program = self.server.program(MAIL_PROGRAM)
        program.procedure("deliver", self._deliver)
        program.procedure("list", self._list)
        program.procedure("fetch", self._fetch)
        self.endpoint = self.server.listen(port)

    # ------------------------------------------------------------------
    def create_mailbox(self, name: str) -> None:
        if not name:
            raise ValueError("mailbox needs a name")
        self._boxes.setdefault(name, [])

    def messages_in(self, mailbox: str) -> typing.List[MailMessage]:
        if mailbox not in self._boxes:
            raise MailboxError(mailbox)
        return list(self._boxes[mailbox])

    # ------------------------------------------------------------------
    # HRPC procedures (handlers receive a CallContext first)
    # ------------------------------------------------------------------
    def _deliver(self, ctx, mailbox: str, message: MailMessage):
        box = self._boxes.get(mailbox)
        if box is None:
            raise MailboxError(f"no mailbox {mailbox!r} on {self.host.name}")
        # Spool to disk.
        yield from self.host.disk.write(message.size_bytes)
        box.append(message)
        self.env.stats.counter(f"mail.{self.host.name}.delivered").increment()
        self.env.trace.emit(
            "mail", f"{self.host.name}: delivered {message} to {mailbox}"
        )
        return RpcReply({"accepted": True}, result_size_bytes=32)

    def _list(self, ctx, mailbox: str):
        box = self._boxes.get(mailbox)
        if box is None:
            raise MailboxError(f"no mailbox {mailbox!r} on {self.host.name}")
        yield from self.host.disk.read(256)
        summaries = [
            {"msg_id": m.msg_id, "sender": str(m.sender), "subject": m.subject}
            for m in box
        ]
        return RpcReply(summaries, result_size_bytes=64 * max(1, len(summaries)))

    def _fetch(self, ctx, mailbox: str, msg_id: int):
        if mailbox not in self._boxes:
            raise MailboxError(f"no mailbox {mailbox!r} on {self.host.name}")
        for message in self._boxes[mailbox]:
            if message.msg_id == msg_id:
                yield from self.host.disk.read(message.size_bytes)
                return RpcReply(message, result_size_bytes=message.size_bytes)
        raise MailboxError(f"message {msg_id} not in {mailbox!r}")
