"""The mail agent: HNS-based routing, delivery, and spooling."""

from __future__ import annotations

import dataclasses
import typing

from repro.core.hns import HNS
from repro.core.import_call import HrpcImporter
from repro.core.names import HNSName
from repro.core.nsm import NsmStub
from repro.hrpc.runtime import HrpcRuntime
from repro.mail.mailbox import MAIL_PROGRAM
from repro.mail.message import MailMessage
from repro.net.host import Host


@dataclasses.dataclass
class DeliveryReport:
    """Outcome of one submit() call."""

    delivered: typing.List[HNSName]
    queued: typing.List[typing.Tuple[HNSName, str]]  # (recipient, reason)

    @property
    def fully_delivered(self) -> bool:
        return not self.queued


@dataclasses.dataclass
class _SpoolEntry:
    message: MailMessage
    recipient: HNSName
    attempts: int = 0
    last_error: str = ""


class MailAgent:
    """Routes mail by asking the HNS, never by parsing addresses.

    For each recipient the agent performs two HNS operations:

    1. *MailboxLocation*: which mail host and mailbox serve this user?
    2. *HRPCBinding* (via Import): how do I call the ``hcsmail``
       service on that mail host?

    Both answers come through NSMs, so a recipient in BIND and one in
    the Clearinghouse route identically.  Failed deliveries spool and
    can be retried with :meth:`retry_spool`.
    """

    MAX_ATTEMPTS = 5

    def __init__(
        self,
        host: Host,
        hns: HNS,
        nsm_stub: NsmStub,
        importer: HrpcImporter,
        runtime: HrpcRuntime,
    ):
        self.host = host
        self.env = host.env
        self.hns = hns
        self.nsm_stub = nsm_stub
        self.importer = importer
        self.runtime = runtime
        self.spool: typing.List[_SpoolEntry] = []

    # ------------------------------------------------------------------
    def _deliver_to(self, recipient: HNSName, message: MailMessage):
        """Resolve + deliver one copy; exceptions mean 'spool me'."""
        # 1. Where is the mailbox?
        nsm_binding = yield from self.hns.find_nsm(recipient, "MailboxLocation")
        location = yield from self.nsm_stub.call(nsm_binding, recipient)
        mail_host = typing.cast(str, location.value["mail_host"])
        mailbox = typing.cast(str, location.value["mailbox"])
        # 2. How do I call the mail service there?  The mail host's name
        # lives in the same context as the user.
        service_binding = yield from self.importer.import_binding(
            MAIL_PROGRAM, HNSName(recipient.context, mail_host)
        )
        # 3. Deliver.
        reply = yield from self.runtime.call(
            service_binding,
            "deliver",
            mailbox,
            message,
            arg_size_bytes=message.size_bytes,
        )
        if not typing.cast(dict, reply).get("accepted"):
            raise RuntimeError(f"mailbox server refused {message}")
        self.env.trace.emit("mail", f"agent: {message} -> {recipient} OK")

    def submit(self, message: MailMessage) -> typing.Generator:
        """Deliver to every recipient; spool failures.

        Returns a :class:`DeliveryReport`.
        """
        delivered: typing.List[HNSName] = []
        queued: typing.List[typing.Tuple[HNSName, str]] = []
        for recipient in message.recipients:
            try:
                yield from self._deliver_to(recipient, message)
            except Exception as err:  # noqa: BLE001 - anything spools
                reason = f"{type(err).__name__}: {err}"
                self.spool.append(
                    _SpoolEntry(message, recipient, attempts=1, last_error=reason)
                )
                queued.append((recipient, reason))
                self.env.stats.counter("mail.agent.spooled").increment()
                continue
            delivered.append(recipient)
            self.env.stats.counter("mail.agent.sent").increment()
        return DeliveryReport(delivered, queued)

    def retry_spool(self) -> typing.Generator:
        """One pass over the spool; returns how many got through."""
        still_spooled: typing.List[_SpoolEntry] = []
        sent = 0
        for entry in self.spool:
            try:
                yield from self._deliver_to(entry.recipient, entry.message)
            except Exception as err:  # noqa: BLE001 - spool keeps trying
                entry.attempts += 1
                entry.last_error = f"{type(err).__name__}: {err}"
                if entry.attempts < self.MAX_ATTEMPTS:
                    still_spooled.append(entry)
                else:
                    self.env.stats.counter("mail.agent.bounced").increment()
                continue
            sent += 1
            self.env.stats.counter("mail.agent.sent").increment()
        self.spool = still_spooled
        return sent

    @property
    def spool_size(self) -> int:
        return len(self.spool)
