"""Mail messages addressed by global HNS names."""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.core.names import HNSName

_msg_ids = itertools.count(1)


@dataclasses.dataclass
class MailMessage:
    """One message; recipients are HNS names, so they may live in any
    of the federated name services."""

    sender: HNSName
    recipients: typing.Tuple[HNSName, ...]
    subject: str
    body: str
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if not self.recipients:
            raise ValueError("a message needs at least one recipient")
        self.recipients = tuple(self.recipients)

    @property
    def size_bytes(self) -> int:
        return (
            len(self.subject)
            + len(self.body)
            + sum(r.wire_size() for r in self.recipients)
            + self.sender.wire_size()
            + 64
        )

    def __str__(self) -> str:
        return f"<msg #{self.msg_id} {self.sender} -> {len(self.recipients)} rcpt: {self.subject!r}>"
