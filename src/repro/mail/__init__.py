"""The HCS electronic mail system, built on the HNS.

Mail is one of the three core HCS network services, and the conclusions
name it as the next system being pursued with the HNS/NSM structure:
"We are pursuing this structure in the context of both an electronic
mail system and also a heterogeneous file system."

The pieces:

- :class:`~repro.mail.mailbox.MailboxServer` — an HRPC program
  (``hcsmail``) storing mailboxes on a mail host;
- :class:`~repro.mail.agent.MailAgent` — resolves each recipient's
  mailbox location through the HNS (MailboxLocation query class), then
  the mail host's service binding (HRPCBinding query class), and
  delivers over HRPC; undeliverable mail is spooled and retried.

Contrast with sendmail: the agent never parses a heterogeneous address
— "sendmail depends on being able to discern naming semantics based on
the syntactic structure of names", which the NSM structure removes.
"""

from repro.mail.message import MailMessage
from repro.mail.mailbox import MailboxServer, MAIL_PROGRAM
from repro.mail.agent import DeliveryReport, MailAgent

__all__ = [
    "DeliveryReport",
    "MAIL_PROGRAM",
    "MailAgent",
    "MailMessage",
    "MailboxServer",
]
