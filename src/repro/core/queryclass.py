"""Query classes: the typed interfaces of the NSM confederation.

"All NSMs for a particular query class have identical client
interfaces" — a query class fixes the procedure the client calls and
the standard result shape, independent of which name service answers.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.errors import QueryClassUnsupported


@dataclasses.dataclass(frozen=True)
class QueryClass:
    """One query class: its name and standardized result fields."""

    name: str
    result_fields: typing.Tuple[str, ...]
    description: str = ""

    def validate_result(self, value: typing.Mapping[str, object]) -> None:
        """Check an NSM's result against the standard interface."""
        missing = set(self.result_fields) - set(value)
        if missing:
            raise QueryClassUnsupported(
                f"result for {self.name} missing fields {sorted(missing)}"
            )


#: The query classes this reproduction ships.  HRPCBinding and
#: HostAddress are the ones the paper's evaluation uses; mail and filing
#: are the other two HCS network services the HNS supported.
QUERY_CLASSES: typing.Dict[str, QueryClass] = {
    qc.name: qc
    for qc in (
        QueryClass(
            "HRPCBinding",
            ("endpoint", "program", "suite", "system_type"),
            "Connect a client to a server: the first HNS application.",
        ),
        QueryClass(
            "HostAddress",
            ("address",),
            "Map a host name to a network address.",
        ),
        QueryClass(
            "MailboxLocation",
            ("mail_host", "mailbox"),
            "Locate a user's mailbox for the HCS mail service.",
        ),
        QueryClass(
            "FileService",
            ("endpoint", "program", "suite", "volume"),
            "Locate a file service and volume for the HCS filing service.",
        ),
        QueryClass(
            "AdHocService",
            ("address", "owner", "incarnation"),
            "Locate a service on the local segment via presence beacons.",
        ),
    )
}


def query_class_named(name: str) -> QueryClass:
    """Look up a query class; raises QueryClassUnsupported."""
    qc = QUERY_CLASSES.get(name)
    if qc is None:
        raise QueryClassUnsupported(
            f"unknown query class {name!r}; known: {sorted(QUERY_CLASSES)}"
        )
    return qc
