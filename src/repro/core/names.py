"""HNS names: a context plus an individual name.

"HNS names contain two parts, a context and an individual name.
Roughly, the context identifies the local name service in which the
data can be found while the individual name determines the name of the
object in that local service."

The individual name "can be any string, but in the simplest case is
identical to the name of the entity in its local name service" — so no
syntax is imposed on it beyond non-emptiness.  Contexts are identifiers
(they become labels in the meta-naming zone).
"""

from __future__ import annotations

import dataclasses
import re

_CONTEXT_RE = re.compile(r"^[A-Za-z0-9]([A-Za-z0-9_-]{0,62})$")

#: Separator for the display form.  Individual names may contain any
#: character except this sequence, since local syntaxes vary wildly
#: (dotted domains, colon-separated Clearinghouse names, ...).
SEPARATOR = "::"


@dataclasses.dataclass(frozen=True, order=True)
class HNSName:
    """A global HNS name."""

    context: str
    name: str

    def __post_init__(self) -> None:
        if not _CONTEXT_RE.match(self.context):
            raise ValueError(
                f"bad context {self.context!r}: contexts are 1-63 char "
                "identifiers of letters, digits, '-' and '_'"
            )
        if not self.name:
            raise ValueError("individual name must be non-empty")
        if SEPARATOR in self.name:
            raise ValueError(f"individual name may not contain {SEPARATOR!r}")

    @classmethod
    def parse(cls, text: str) -> "HNSName":
        """Parse the display form ``context::individual``."""
        context, sep, name = text.partition(SEPARATOR)
        if not sep:
            raise ValueError(f"HNS name needs {SEPARATOR!r}: {text!r}")
        return cls(context, name)

    def __str__(self) -> str:
        return f"{self.context}{SEPARATOR}{self.name}"

    def wire_size(self) -> int:
        return len(self.context) + len(self.name) + 8
