"""The HNS library: ``FindNSM``.

"The primary HNS function is the call to locate an NSM, FindNSM.  This
call maps a context and query class to the information, called an HRPC
Binding, needed for making an HRPC call to the NSM.  FindNSM is
implemented as the following sequence of mappings:

1. Context -> Name Service Name
2. Name Service Name, Query Class -> NSM Name
3. NSM Name -> HRPC Binding for the NSM"

Mapping 3 contains the NSM's *host name*; translating it to an address
is "itself an HNS naming operation", adding mappings 1 and 2 for the
host's context and a call to a HostAddress NSM.  "Further recursion is
avoided by linking instances of the NSMs that perform this mapping
directly with the HNS."  That makes six data mappings per cold FindNSM,
"each of which involves a remote call in the case of a cache miss" —
and each TTL-cached, keyed by locality of "query class and name system
type", which is the specialized caching scheme of the title.

The HNS is "a collection of library routines": link an :class:`HNS`
into any process, or wrap it with :func:`serve_hns` to expose it as a
remote HRPC service — the colocation spectrum of Table 3.1.
"""

from __future__ import annotations

import typing

from repro.core.errors import HnsError, NsmNotFound, NsmUnavailable
from repro.core.metastore import MetaStore, NsmRecord
from repro.core.names import HNSName
from repro.core.nsm import LocalNsmBinding, NamingSemanticsManager
from repro.core.queryclass import query_class_named
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.server import HrpcServer
from repro.net.addresses import Endpoint, NetworkAddress
from repro.bind.errors import NameNotFound
from repro.resolution import (
    _UNSET,
    CircuitBreakerRegistry,
    PolicySet,
    ResolutionPolicy,
    merge_policies,
    retrying,
)
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import SpanLike

HOST_ADDRESS_QC = "HostAddress"

#: FindNSM's answer: either a handle for a remote HRPC call, or a
#: reference to an NSM linked into this very process.
NsmBindingLike = typing.Union[HRPCBinding, LocalNsmBinding]

#: A ``FindNSM`` in flight: a simulation process generator whose return
#: value is the binding.  Drive it with ``yield from`` (or
#: ``env.process``); the :class:`NsmBindingLike` contract is the API
#: boundary NSM stubs program against.
FindNsmCall = typing.Generator[Event, typing.Any, NsmBindingLike]

#: Host resolution in flight (mappings 4-6), returning the NSM host's
#: network address.
HostResolveCall = typing.Generator[Event, typing.Any, NetworkAddress]


class HNS:
    """One instance of the HNS library, linked into some process."""

    def __init__(
        self,
        metastore: MetaStore,
        calibration: Calibration = DEFAULT_CALIBRATION,
        policy: typing.Any = _UNSET,
        fast_path: typing.Any = _UNSET,
        replica_policy: typing.Any = _UNSET,
        policies: typing.Optional[PolicySet] = None,
    ):
        self.metastore = metastore
        self.host = metastore.host
        self.env = metastore.env
        self.calibration = calibration
        # One resolution point for the whole bundle: inherit the
        # metastore's PolicySet so one flag configures the whole stack
        # (None anywhere = paper-faithful behaviour), then fold any
        # explicit overrides — a PolicySet or legacy kwargs — over it.
        # This replaces the old per-field fallback rules, under which
        # ``policy`` defaulted independently of the metastore while
        # ``fast_path``/``replica_policy`` inherited from it but could
        # not be explicitly cleared back to None.
        resolved = merge_policies(
            policies if policies is not None else metastore.policies,
            policy=policy,
            fast_path=fast_path,
            replica_policy=replica_policy,
            caller="HNS",
        )
        self.policies = resolved
        #: performance policy (None = paper-faithful behaviour)
        self.fast_path = resolved.fast_path
        #: replica-aware read policy; the scheduling itself lives in the
        #: metastore's resolver — this mirror keeps the whole-stack
        #: configuration inspectable from one place, like ``fast_path``
        self.replica_policy = resolved.replica
        #: fault-tolerance policy for FindNSM itself (host resolution
        #: retries, per-NSM circuit breaking); the meta lookups carry
        #: the metastore's own policy
        self.policy = resolved.resolution
        #: one circuit breaker per NSM name, fed by callers reporting
        #: call outcomes via :meth:`report_nsm_outcome`
        self.nsm_breakers = CircuitBreakerRegistry(
            self.env,
            resolved.resolution
            if resolved.resolution is not None
            else ResolutionPolicy.disabled(),
        )
        # Statically linked HostAddress NSMs, one per name service:
        # these cut the FindNSM recursion.
        self._host_address_nsms: typing.Dict[str, NamingSemanticsManager] = {}
        # NSMs linked into the same process as this HNS instance; when
        # FindNSM selects one of these, the client gets a local binding.
        self._local_nsms: typing.Dict[str, NamingSemanticsManager] = {}

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def link_host_address_nsm(
        self, name_service: str, nsm: NamingSemanticsManager
    ) -> None:
        """Statically link the HostAddress NSM for ``name_service``."""
        if nsm.query_class != HOST_ADDRESS_QC:
            raise ValueError(
                f"{nsm.name} is a {nsm.query_class} NSM, not {HOST_ADDRESS_QC}"
            )
        if nsm.host is not self.host:
            raise ValueError(
                f"statically linked NSM must share the HNS's process host"
            )
        self._host_address_nsms[name_service] = nsm

    def link_local_nsm(self, nsm: NamingSemanticsManager) -> None:
        """Link an NSM into this process (the colocated-NSM arrangements)."""
        if nsm.host is not self.host:
            raise ValueError("locally linked NSM must share the HNS's host")
        self._local_nsms[nsm.name] = nsm

    def unlink_local_nsm(self, name: str) -> None:
        self._local_nsms.pop(name, None)

    # ------------------------------------------------------------------
    # FindNSM
    # ------------------------------------------------------------------
    def find_nsm(self, hns_name: HNSName, query_class: str) -> FindNsmCall:
        """Locate the NSM for (context of ``hns_name``, ``query_class``).

        Returns an :class:`HRPCBinding` (or :class:`LocalNsmBinding` for
        a linked-in NSM).  The caller then calls the NSM itself — the
        HNS never calls NSMs on the client's behalf, since each query
        class has its own interface.

        If the designated NSM's circuit breaker is open (see
        :meth:`report_nsm_outcome`), FindNSM routes around it to a
        linked-in copy when one exists, and otherwise fails fast with
        :class:`NsmUnavailable` — no timeouts are burned against a
        server already known to be dead.
        """
        query_class_named(query_class)  # fail fast on unknown classes
        with self.env.obs.span(
            "hns.find_nsm",
            context=hns_name.context,
            name=hns_name.name,
            query_class=query_class,
        ) as span:
            binding = yield from self._find_nsm(hns_name, query_class, span)
            return binding

    def _find_nsm(
        self, hns_name: HNSName, query_class: str, span: "SpanLike"
    ) -> FindNsmCall:
        cal = self.calibration
        env = self.env
        fast = self.fast_path
        batching = fast is not None and fast.batch_meta_lookups
        env.stats.counter("hns.find_nsm").increment()
        # Fixed library bookkeeping.
        yield from self.host.cpu.compute(cal.hns_fixed_ms)
        if batching:
            # Mappings 1-3 as one chained batch (at most one round trip;
            # none when the cache holds the whole chain).  The breaker
            # check runs afterwards — the batch already carried mapping 3,
            # so there is nothing left to save by checking earlier.
            ns_name, nsm_name, record = yield from (
                self.metastore.find_nsm_bundle(hns_name.context, query_class)
            )
            span.set(ns=ns_name, nsm=nsm_name)
            reroute = self._breaker_reroute(nsm_name)
            if reroute is not None:
                span.set(outcome="breaker_reroute")
                return reroute
        else:
            # Mapping 1: context -> name service name.
            ns_name = yield from self.metastore.context_to_name_service(
                hns_name.context
            )
            # Mapping 2: (name service, query class) -> NSM name.
            nsm_name = yield from self.metastore.nsm_name_for(
                ns_name, query_class
            )
            span.set(ns=ns_name, nsm=nsm_name)
            # Degradation ladder, last rung: a tripped breaker
            # short-circuits before mapping 3 spends anything more on a
            # dead NSM.
            reroute = self._breaker_reroute(nsm_name)
            if reroute is not None:
                span.set(outcome="breaker_reroute")
                return reroute
            # Mapping 3: NSM name -> NSM binding information.
            record = yield from self.metastore.nsm_record(nsm_name)
        env.trace.emit(
            "hns",
            f"FindNSM({hns_name.context}, {query_class}) -> {nsm_name}",
            name_service=ns_name,
        )
        if record.port == 0:
            # An NSM only available linked-in: usable iff this process
            # has it.  No host resolution is possible or needed.
            local = self._local_nsms.get(nsm_name)
            if local is None:
                raise NsmNotFound(
                    f"NSM {nsm_name} is not remotely callable and is not "
                    f"linked into this process"
                )
            span.set(outcome="local")
            return LocalNsmBinding(local)
        if batching:
            # Fast path: the meta zone's own NSM-host address record
            # replaces the recursive mappings 4-6 — the second (and
            # last) round trip of a cold FindNSM.
            address = yield from self._resolve_nsm_host_fast(record)
        else:
            # Mappings 4-6: resolve the NSM's host name to an address.
            # The prototype performs these even when a local copy will
            # be used — the six-mapping cost structure of the paper's
            # measurements.  Retried as a unit: the native HostAddress
            # lookup is the one remote call here that the meta
            # resolver's policy cannot cover.
            address = yield from retrying(
                env,
                self.policy,
                lambda _attempt: self._resolve_nsm_host(record),
                rng_stream="hns.backoff",
                stat="hns.find_nsm.retries",
            )
        local = self._local_nsms.get(nsm_name)
        if local is not None:
            span.set(outcome="local")
            return LocalNsmBinding(local)
        span.set(outcome="remote")
        return HRPCBinding(
            endpoint=Endpoint(address, record.port),
            program=record.program,
            suite=record.suite,
            system_type="unix",
            metadata={"nsm": nsm_name, "name_service": ns_name},
        )

    def _breaker_reroute(
        self, nsm_name: str
    ) -> typing.Optional[LocalNsmBinding]:
        """Apply the circuit-breaker rung of the degradation ladder.

        Strictly-open only: in the half-open state FindNSM lets the
        caller through so *their* NSM call can be the probe (the
        importer consumes the single probe slot via ``allow()``).
        Returns a linked-in reroute, raises :class:`NsmUnavailable`, or
        returns None to let resolution proceed.
        """
        if self.policy is None or not self.policy.breaker_threshold:
            return None
        breaker = self.nsm_breakers.breaker(nsm_name)
        if breaker.state != "open":
            return None
        local = self._local_nsms.get(nsm_name)
        if local is not None:
            self.env.stats.counter("hns.breaker.rerouted").increment()
            self.env.trace.emit(
                "hns",
                f"{nsm_name} circuit open; routing to linked-in copy",
            )
            return LocalNsmBinding(local)
        self.env.stats.counter("hns.breaker.fast_fails").increment()
        raise NsmUnavailable(
            f"NSM {nsm_name} is circuit-broken after "
            f"{breaker.consecutive_failures} consecutive failures"
        )

    def _resolve_nsm_host_fast(self, record: NsmRecord) -> HostResolveCall:
        """Batched host resolution: one meta ``addr`` lookup.

        The meta zone carries an address record per NSM host (it is what
        preloading warms), so the fast path reads it directly instead of
        recursing through mappings 4-6.  Hosts registered without one
        fall back to the recursive path, keeping the two behaviours
        answer-equivalent.
        """
        with self.env.obs.span(
            "hns.resolve_host_fast", host=record.host_name
        ) as span:
            try:
                addr_text = yield from self.metastore.nsm_host_address(
                    record.host_name
                )
                return NetworkAddress(addr_text)
            except NameNotFound:
                span.set(fallback=True)
                self.env.stats.counter(
                    "hns.fast_path.addr_fallbacks"
                ).increment()
                address = yield from retrying(
                    self.env,
                    self.policy,
                    lambda _attempt: self._resolve_nsm_host(record),
                    rng_stream="hns.backoff",
                    stat="hns.find_nsm.retries",
                )
                return address

    def _resolve_nsm_host(self, record: NsmRecord) -> HostResolveCall:
        """Mappings 4-6: host name -> network address.

        4. host context -> name service name        (meta lookup)
        5. (name service, HostAddress) -> NSM name  (meta lookup)
        6. the statically linked HostAddress NSM's native lookup.
        """
        with self.env.obs.span(
            "hns.resolve_host", host=record.host_name
        ):
            host_ns = yield from self.metastore.context_to_name_service(
                record.host_context
            )
            yield from self.metastore.nsm_name_for(host_ns, HOST_ADDRESS_QC)
            nsm = self._host_address_nsms.get(host_ns)
            if nsm is None:
                raise HnsError(
                    f"no statically linked HostAddress NSM for name service "
                    f"{host_ns!r} (needed to resolve {record.host_name})"
                )
            result = yield from nsm.query(
                HNSName(record.host_context, record.host_name)
            )
            return NetworkAddress(typing.cast(str, result.value["address"]))

    # ------------------------------------------------------------------
    # Circuit-breaker feedback
    # ------------------------------------------------------------------
    def report_nsm_outcome(self, nsm_name: str, ok: bool) -> None:
        """Feed an NSM call outcome into its circuit breaker.

        The HNS hands out bindings but never calls non-HostAddress NSMs
        itself, so callers (the importer, NSM stubs) report back whether
        the designated NSM actually answered.  After
        ``policy.breaker_threshold`` consecutive failures the breaker
        opens and :meth:`find_nsm` routes around or fails fast.
        """
        if self.policy is None or not self.policy.breaker_threshold:
            return
        breaker = self.nsm_breakers.breaker(nsm_name)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()
            if breaker.state == "open":
                self.env.trace.emit(
                    "hns", f"circuit breaker for NSM {nsm_name} tripped"
                )

    # ------------------------------------------------------------------
    def preload(self) -> typing.Generator:
        """Preload the meta cache by zone transfer (~390 ms for ~2 KB).

        Also warms the statically linked HostAddress NSM caches from the
        NSM-host address records carried in the meta zone, which is what
        "guarantee[s] HNS cache hits".
        """
        count = yield from self.metastore.preload()
        # Warm the host-address NSM caches from the transferred
        # `<label>.addr.hns` records (cache format is demarshalled, so
        # payloads are ResourceRecord lists).
        from repro.bind.cache import CacheFormat
        from repro.core.metastore import META_ORIGIN, decode_fields

        if self.metastore.cache.format is not CacheFormat.DEMARSHALLED:
            return count
        for _owner, entry in self.metastore.cache.warm_entries(
            f".addr.{META_ORIGIN}"
        ):
            records = typing.cast(list, entry.payload)
            fields = decode_fields(records[0].data)
            for nsm in self._host_address_nsms.values():
                if nsm.cache is None:
                    continue
                nsm.cache.insert(
                    ("hostaddr", fields["host"]),
                    {"address": fields["addr"]},
                    1,
                    self.calibration.meta_ttl_ms,
                )
        return count


class HnsService:
    """The HNS wrapped as a remote HRPC service (program ``hns``)."""

    PROGRAM = "hns"

    def __init__(self, hns: HNS, server: HrpcServer):
        if hns.host is not server.host:
            raise ValueError("HNS instance and server must share a host")
        self.hns = hns
        self.server = server

        def find_nsm_proc(ctx, hns_name_text: str, query_class: str):
            binding = yield from hns.find_nsm(
                HNSName.parse(hns_name_text), query_class
            )
            if isinstance(binding, LocalNsmBinding):
                raise HnsError(
                    f"FindNSM selected {binding.nsm.name}, which is linked "
                    "into the HNS server process and not callable remotely"
                )
            return binding

        server.program(self.PROGRAM).procedure("FindNSM", find_nsm_proc)


def serve_hns(hns: HNS, server: HrpcServer) -> HnsService:
    """Expose ``hns`` on ``server`` as program ``hns``."""
    return HnsService(hns, server)
