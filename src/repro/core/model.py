"""Equation (1): the caching-versus-colocation tradeoff.

With ``p`` the cache-hit fraction of a locally linked copy and ``q``
the *increase* in hit fraction from a shared remote placement:

    C(remote location) = C(remote call) + (p+q) C(hit) + (1-p-q) C(miss)
    C(local location)  = C(local call)  + p     C(hit) + (1-p)   C(miss)

Since C(local call) ~ 0, remote placement wins exactly when

    q > C(remote call) / (C(miss) - C(hit))              (1)

The paper evaluates this with C(remote call) = 33 ms and the Table 3.1
cells, getting ~11% for the HNS and ~42% for the NSMs.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ColocationModel:
    """Cost model for one component's placement decision."""

    remote_call_ms: float
    cache_miss_ms: float
    cache_hit_ms: float
    local_call_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.cache_miss_ms <= self.cache_hit_ms:
            raise ValueError(
                "equation (1) requires C(miss) > C(hit); got "
                f"miss={self.cache_miss_ms}, hit={self.cache_hit_ms}"
            )

    def local_cost(self, p: float) -> float:
        """Expected per-query cost with a locally linked copy."""
        self._check_fraction(p)
        return (
            self.local_call_ms
            + p * self.cache_hit_ms
            + (1 - p) * self.cache_miss_ms
        )

    def remote_cost(self, p: float, q: float) -> float:
        """Expected per-query cost with a shared remote placement."""
        self._check_fraction(p)
        self._check_fraction(p + q)
        hit = p + q
        return (
            self.remote_call_ms
            + hit * self.cache_hit_ms
            + (1 - hit) * self.cache_miss_ms
        )

    def q_threshold(self) -> float:
        """Equation (1): the extra hit fraction remote placement needs."""
        return self.remote_call_ms / (self.cache_miss_ms - self.cache_hit_ms)

    def remote_preferable(self, p: float, q: float) -> bool:
        return self.remote_cost(p, q) < self.local_cost(p)

    @staticmethod
    def _check_fraction(value: float) -> None:
        if not 0 <= value <= 1:
            raise ValueError(f"hit fraction out of [0, 1]: {value}")


def preload_breakeven_calls(
    preload_ms: float, miss_ms: float, hit_ms: float
) -> float:
    """How many distinct cold queries justify preloading the cache.

    Preloading pays ``preload_ms`` once and turns each first reference
    from a miss into a hit; it breaks even after
    ``preload_ms / (miss_ms - hit_ms)`` distinct context/query-class
    references.  The paper: "preloading seems to be effective in
    situations where two or more calls to the HNS for different
    context/query classes will be made."
    """
    if miss_ms <= hit_ms:
        raise ValueError("preload break-even needs miss > hit")
    return preload_ms / (miss_ms - hit_ms)
