"""Colocation arrangements: where the HNS and the NSMs are linked.

"The freedom to link the HNS and NSMs with any process, rather than
embodying them in a particular set of servers, provides several
possible designs for any particular HNS client.  We call the choice of
where the HNS and NSMs are linked for each client the colocation
arrangement."

The five arrangements of Table 3.1 (``[ ]`` indicates colocation):

1. ``[Client, HNS, NSMs]``   — everything linked into the client.
2. ``[Client] [HNS, NSMs]``  — a remote agent runs HNS + NSMs.
3. ``[HNS] [Client, NSMs]``  — remote HNS service, NSMs in the client.
4. ``[NSMs] [Client, HNS]``  — HNS in the client, NSMs remote.
5. ``[Client] [HNS] [NSMs]`` — three separate processes.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.core.hns import HNS
from repro.core.import_call import HrpcImporter
from repro.core.nsm import NamingSemanticsManager
from repro.net.host import Host


class Arrangement(enum.Enum):
    """The five rows of Table 3.1."""

    ALL_LOCAL = 1    # [Client, HNS, NSMs]
    AGENT = 2        # [Client] [HNS, NSMs]
    REMOTE_HNS = 3   # [HNS] [Client, NSMs]
    REMOTE_NSMS = 4  # [NSMs] [Client, HNS]
    ALL_REMOTE = 5   # [Client] [HNS] [NSMs]

    @property
    def label(self) -> str:
        return {
            Arrangement.ALL_LOCAL: "[Client, HNS, NSMs]",
            Arrangement.AGENT: "[Client] [HNS, NSMs]",
            Arrangement.REMOTE_HNS: "[HNS] [Client, NSMs]",
            Arrangement.REMOTE_NSMS: "[NSMs] [Client, HNS]",
            Arrangement.ALL_REMOTE: "[Client] [HNS] [NSMs]",
        }[self]

    @property
    def remote_calls(self) -> int:
        """Inter-process calls per import under this arrangement."""
        return {
            Arrangement.ALL_LOCAL: 0,
            Arrangement.AGENT: 1,
            Arrangement.REMOTE_HNS: 1,
            Arrangement.REMOTE_NSMS: 1,
            Arrangement.ALL_REMOTE: 2,
        }[self]


@dataclasses.dataclass
class ColocationStack:
    """One fully wired client-side configuration.

    Built by :func:`repro.workloads.scenarios.build_stack`; carries the
    importer plus handles to every cache so experiments can control the
    cache state (flush for column A, warm selected caches for B/C).
    """

    arrangement: Arrangement
    client_host: Host
    importer: HrpcImporter
    #: the HNS instance actually used (wherever it lives)
    hns: HNS
    #: the binding NSM actually used (wherever it lives)
    binding_nsm: NamingSemanticsManager
    #: hosts that participate beyond the client (for failure injection)
    service_hosts: typing.Tuple[Host, ...] = ()

    def flush_all_caches(self) -> None:
        """Column A: no cache hits anywhere."""
        self.flush_hns_caches()
        self.flush_nsm_caches()

    def flush_hns_caches(self) -> None:
        self.hns.metastore.cache.clear()
        for nsm in self.hns._host_address_nsms.values():
            if nsm.cache is not None:
                nsm.cache.clear()

    def flush_nsm_caches(self) -> None:
        if self.binding_nsm.cache is not None:
            self.binding_nsm.cache.clear()

    def describe(self) -> str:
        return f"{self.arrangement.label} (client={self.client_host.name})"
