"""HNS failure modes."""


class HnsError(Exception):
    """Base class for HNS-level failures."""


class ContextNotFound(HnsError):
    """The context part of an HNS name is not registered."""


class NsmNotFound(HnsError):
    """No NSM registered for this (name service, query class) pair."""


class QueryClassUnsupported(HnsError):
    """The query class itself is unknown to the HNS."""
