"""HNS failure modes."""


class HnsError(Exception):
    """Base class for HNS-level failures."""


class ContextNotFound(HnsError):
    """The context part of an HNS name is not registered."""


class NsmNotFound(HnsError):
    """No NSM registered for this (name service, query class) pair."""


class QueryClassUnsupported(HnsError):
    """The query class itself is unknown to the HNS."""


class NsmUnavailable(HnsError):
    """The designated NSM's circuit breaker is open: fail fast.

    Raised before any network traffic when repeated transient failures
    have marked the NSM dead and no linked-in copy can stand in.
    """
