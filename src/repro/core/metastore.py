"""The HNS meta-naming store.

"Although all data associated with individually nameable entities is
kept in the underlying name services, the HNS maintains additional
meta-naming information needed for managing the global name space.
This information consists of the names and binding information for each
name service and each NSM, the names of all contexts, and the mappings
from contexts to name services. ... we use a version of BIND, modified
to support both dynamic updates and also data of unspecified type."

Layout of the meta zone (origin ``hns``):

====================================  =====================================
owner name                            data (``key=value;...`` in UNSPEC)
====================================  =====================================
``<context>.ctx.hns``                 ``ns=<name service name>``
``<qclass>.<ns>.q.hns``               ``nsm=<nsm name>``
``<nsm>.nsm.hns``                     ``host=..;hostctx=..;prog=..;suite=..;port=..``
``<ns>.ns.hns``                       ``type=..;host=..;port=..``
``<host>.addr.hns``  (A record)       network address of an NSM host
====================================  =====================================

Every mapping is one BIND lookup through the HNS's Raw-HRPC interface to
the meta server, cached demarshalled with TTL invalidation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind import (
    BindResolver,
    CacheFormat,
    DomainName,
    NameNotFound,
    ResolverCache,
    ResourceRecord,
    RRType,
    UpdateMode,
    UpdateOp,
)
from repro.core.errors import ContextNotFound, HnsError, NsmNotFound

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.nsm import LeaseKeeper
    from repro.obs.span import SpanLike
    from repro.sim.events import Event
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.suites import suite_named
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport
from repro.bind.messages import STATUS_OK, BatchQuestion
from repro.resolution import (
    _UNSET,
    DEFAULT_RESOLUTION_POLICY,
    FastPathPolicy,
    PolicySet,
    ReplicaPolicy,
    ResolutionPolicy,
    merge_policies,
)

META_ORIGIN = "hns"


def encode_fields(**fields: object) -> bytes:
    """Encode meta fields as ``key=value;...`` (the UNSPEC data)."""
    for key, value in fields.items():
        text = str(value)
        if "=" in key or ";" in key or ";" in text or "=" in text:
            raise ValueError(f"field {key}={text!r} contains reserved characters")
    return ";".join(f"{k}={v}" for k, v in sorted(fields.items())).encode("utf-8")


def decode_fields(data: bytes) -> typing.Dict[str, str]:
    """Decode ``key=value;...`` meta-record data."""
    out: typing.Dict[str, str] = {}
    text = data.decode("utf-8")
    if not text:
        return out
    for part in text.split(";"):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed meta record field {part!r}")
        out[key] = value
    return out


@dataclasses.dataclass(frozen=True)
class NameServiceRecord:
    """Descriptor of one underlying name service."""

    name: str
    kind: str          # "bind" or "clearinghouse"
    host_name: str     # where its server runs
    port: int

    def to_fields(self) -> bytes:
        return encode_fields(type=self.kind, host=self.host_name, port=self.port)

    @classmethod
    def from_fields(cls, name: str, data: bytes) -> "NameServiceRecord":
        fields = decode_fields(data)
        return cls(name, fields["type"], fields["host"], int(fields["port"]))


@dataclasses.dataclass(frozen=True)
class NsmRecord:
    """Binding information for one NSM, as stored in the meta zone."""

    name: str
    query_class: str
    name_service: str
    host_name: str     # host the NSM process runs on
    host_context: str  # context in which that host name is resolvable
    program: str       # HRPC program name
    suite: str         # protocol suite for calling it
    port: int          # 0 if the NSM is only available linked-in

    def to_fields(self) -> bytes:
        return encode_fields(
            qc=self.query_class,
            ns=self.name_service,
            host=self.host_name,
            hostctx=self.host_context,
            prog=self.program,
            suite=self.suite,
            port=self.port,
        )

    @classmethod
    def from_fields(cls, name: str, data: bytes) -> "NsmRecord":
        fields = decode_fields(data)
        suite_named(fields["suite"])  # validate early
        return cls(
            name=name,
            query_class=fields["qc"],
            name_service=fields["ns"],
            host_name=fields["host"],
            host_context=fields["hostctx"],
            program=fields["prog"],
            suite=fields["suite"],
            port=int(fields["port"]),
        )


@dataclasses.dataclass
class DirectoryListing:
    """The parsed contents of the meta zone."""

    serial: int
    #: context (lowercased label) -> name service name
    contexts: typing.Dict[str, str] = dataclasses.field(default_factory=dict)
    #: (name service label, query class label) -> NSM name
    query_mappings: typing.Dict[typing.Tuple[str, str], str] = dataclasses.field(
        default_factory=dict
    )
    #: NSM label -> record
    nsms: typing.Dict[str, "NsmRecord"] = dataclasses.field(default_factory=dict)
    #: name service label -> record
    name_services: typing.Dict[str, "NameServiceRecord"] = dataclasses.field(
        default_factory=dict
    )
    #: NSM host name -> address
    nsm_hosts: typing.Dict[str, str] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        lines = [f"meta zone serial {self.serial}"]
        lines.append("name services:")
        for label, record in sorted(self.name_services.items()):
            lines.append(f"  {record.name} ({record.kind}) @ {record.host_name}:{record.port}")
        lines.append("contexts:")
        for context, ns in sorted(self.contexts.items()):
            lines.append(f"  {context} -> {ns}")
        lines.append("NSMs:")
        for label, record in sorted(self.nsms.items()):
            lines.append(
                f"  {record.name}: {record.query_class} on {record.name_service} "
                f"@ {record.host_name}:{record.port} ({record.suite})"
            )
        return "\n".join(lines)


@dataclasses.dataclass
class _OpenBatch:
    """A coalescing window in progress on one store.

    Ops are keyed by ``(owner, rtype)`` so a later registration of the
    same owner inside the window simply overwrites the earlier one —
    last writer wins, exactly what a rebinding wave wants.
    """

    done: "Event"
    ops: typing.Dict[typing.Tuple[str, int], UpdateOp] = dataclasses.field(
        default_factory=dict
    )


class MetaStore:
    """Client-side access to the meta zone, with the HNS cache.

    One instance per HNS instance; where the instance lives (client
    process, agent, HNS server) determines whose CPU pays and how much
    sharing the cache sees — the colocation tradeoff.
    """

    def __init__(
        self,
        host: Host,
        transport: Transport,
        meta_server: Endpoint,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cache_format: CacheFormat = CacheFormat.DEMARSHALLED,
        cache: typing.Optional[ResolverCache] = None,
        secondaries: typing.Sequence[Endpoint] = (),
        policy: typing.Any = _UNSET,
        fast_path: typing.Any = _UNSET,
        replica_policy: typing.Any = _UNSET,
        update_policy: typing.Any = _UNSET,
        policies: typing.Optional[PolicySet] = None,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        # One resolution point for the whole bundle: the PolicySet base
        # (PolicySet.default() matches the historical kwarg defaults)
        # with any legacy per-policy kwargs folded over it.
        resolved = merge_policies(
            policies if policies is not None else PolicySet.default(),
            policy=policy,
            fast_path=fast_path,
            replica_policy=replica_policy,
            update_policy=update_policy,
            caller="MetaStore",
        )
        self.policies = resolved
        #: fault-tolerance policy for every meta lookup (retry/backoff
        #: across replicas, negative caching, serve-stale); None gives
        #: the prototype's die-on-first-error behaviour
        self.policy = policy = resolved.resolution
        #: performance policy (coalescing, refresh-ahead, batching);
        #: None keeps the paper-faithful sequential behaviour
        self.fast_path = resolved.fast_path
        #: replica-aware read policy (adaptive selection, hedging,
        #: incremental transfer); None keeps static ordered failover
        self.replica_policy = resolved.replica
        #: write-path policy (batched registration, leases, NOTIFY);
        #: None keeps the one-record-per-round-trip prototype writes
        self.update_policy = resolved.update
        #: the coalescing window currently open on this store, if any
        self._open_batch: typing.Optional[_OpenBatch] = None
        #: client-side renewal agent for leased registrations
        self._lease_keeper: typing.Optional["LeaseKeeper"] = None
        self.cache = (
            cache
            if cache is not None
            else ResolverCache(
                host.env,
                name=f"hns-meta@{host.name}",
                fmt=cache_format,
                calibration=calibration,
                stale_retention_ms=(
                    policy.stale_window_ms if policy is not None else 0.0
                ),
            )
        )
        # Each meta mapping is a remote call through the Raw HRPC
        # interface to the modified BIND; the per-call control cost is
        # calibrated to match the raw suite's CPU overhead.
        self.resolver = BindResolver(
            host,
            transport,
            meta_server,
            marshalling="generated",
            cache=self.cache,
            per_call_overhead_ms=calibration.hrpc_meta_call_ms,
            calibration=calibration,
            name=f"meta@{host.name}",
            secondaries=secondaries,
            policies=resolved,
        )

    # ------------------------------------------------------------------
    # Mapping lookups (each is "one data mapping" in the paper's terms)
    # ------------------------------------------------------------------
    def _lookup_fields(self, owner: str) -> typing.Generator:
        records = yield from self.resolver.lookup(owner, RRType.UNSPEC)
        return decode_fields(records[0].data)

    def context_to_name_service(self, context: str) -> typing.Generator:
        """Mapping 1: context -> name service name."""
        with self.env.obs.span(
            "meta.context_to_ns", mapping=1, context=context
        ) as span:
            try:
                fields = yield from self._lookup_fields(
                    f"{context}.ctx.{META_ORIGIN}"
                )
            except NameNotFound as err:
                raise ContextNotFound(context) from err
            span.set(ns=fields["ns"])
            return fields["ns"]

    def nsm_name_for(self, name_service: str, query_class: str) -> typing.Generator:
        """Mapping 2: (name service, query class) -> NSM name."""
        owner = f"{query_class}.{name_service}.q.{META_ORIGIN}"
        with self.env.obs.span(
            "meta.nsm_name", mapping=2, ns=name_service, query_class=query_class
        ) as span:
            try:
                fields = yield from self._lookup_fields(owner)
            except NameNotFound as err:
                raise NsmNotFound(f"{query_class} on {name_service}") from err
            span.set(nsm=fields["nsm"])
            return fields["nsm"]

    def nsm_record(self, nsm_name: str) -> typing.Generator:
        """Mapping 3: NSM name -> NSM binding information."""
        owner = f"{nsm_name}.nsm.{META_ORIGIN}"
        with self.env.obs.span("meta.nsm_record", mapping=3, nsm=nsm_name):
            try:
                records = yield from self.resolver.lookup(owner, RRType.UNSPEC)
            except NameNotFound as err:
                raise NsmNotFound(nsm_name) from err
            return NsmRecord.from_fields(nsm_name, records[0].data)

    def find_nsm_bundle(
        self, context: str, query_class: str
    ) -> typing.Generator:
        """Mappings 1-3 in at most one (chained, batched) round trip.

        Returns ``(name_service_name, nsm_name, NsmRecord)`` — exactly
        what the sequential ``context_to_name_service`` /
        ``nsm_name_for`` / ``nsm_record`` trio produces, but the cache
        misses travel as one multi-question query whose later questions
        chain on the earlier answers server-side.  Fully cached prefixes
        are probed locally, so a warm client sends nothing at all.
        """
        with self.env.obs.span(
            "meta.bundle", context=context, query_class=query_class
        ) as span:
            result = yield from self._find_nsm_bundle(
                context, query_class, span
            )
            return result

    def _find_nsm_bundle(
        self, context: str, query_class: str, span: "SpanLike"
    ) -> typing.Generator:
        ctx_owner = f"{context}.ctx.{META_ORIGIN}"
        ns_name: typing.Optional[str] = None
        nsm_name: typing.Optional[str] = None
        try:
            records = yield from self.resolver.cached_records(
                ctx_owner, RRType.UNSPEC
            )
        except NameNotFound as err:
            raise ContextNotFound(context) from err
        if records is not None:
            ns_name = decode_fields(records[0].data)["ns"]
        if ns_name is not None:
            try:
                records = yield from self.resolver.cached_records(
                    f"{query_class}.{ns_name}.q.{META_ORIGIN}", RRType.UNSPEC
                )
            except NameNotFound as err:
                raise NsmNotFound(f"{query_class} on {ns_name}") from err
            if records is not None:
                nsm_name = decode_fields(records[0].data)["nsm"]
        if nsm_name is not None:
            try:
                records = yield from self.resolver.cached_records(
                    f"{nsm_name}.nsm.{META_ORIGIN}", RRType.UNSPEC
                )
            except NameNotFound as err:
                raise NsmNotFound(nsm_name) from err
            if records is not None:
                span.set(ns=ns_name, nsm=nsm_name, cached=True)
                return (
                    ns_name,
                    nsm_name,
                    NsmRecord.from_fields(nsm_name, records[0].data),
                )
        # Build the chained batch for whatever suffix is still missing.
        # ``stage`` tracks which mapping the first question answers so
        # NXDOMAINs map onto the same errors the sequential path raises.
        if ns_name is None:
            questions = [
                BatchQuestion(ctx_owner, RRType.UNSPEC),
                BatchQuestion(
                    f"{query_class}.*.q.{META_ORIGIN}",
                    RRType.UNSPEC,
                    chain_from=0,
                    chain_field="ns",
                ),
                BatchQuestion(
                    f"*.nsm.{META_ORIGIN}",
                    RRType.UNSPEC,
                    chain_from=1,
                    chain_field="nsm",
                ),
            ]
            stage = 0
        elif nsm_name is None:
            questions = [
                BatchQuestion(
                    f"{query_class}.{ns_name}.q.{META_ORIGIN}", RRType.UNSPEC
                ),
                BatchQuestion(
                    f"*.nsm.{META_ORIGIN}",
                    RRType.UNSPEC,
                    chain_from=0,
                    chain_field="nsm",
                ),
            ]
            stage = 1
        else:
            questions = [
                BatchQuestion(f"{nsm_name}.nsm.{META_ORIGIN}", RRType.UNSPEC)
            ]
            stage = 2
        answers = yield from self.resolver.lookup_batch(questions)
        for offset, answer in enumerate(answers):
            if answer.status == STATUS_OK and answer.records:
                continue
            failed = stage + offset
            if failed == 0:
                raise ContextNotFound(context)
            if failed == 1:
                raise NsmNotFound(f"{query_class} on {ns_name or context}")
            raise NsmNotFound(nsm_name or f"{query_class} on {ns_name}")
        if stage == 0:
            ns_name = decode_fields(answers[0].records[0].data)["ns"]
            nsm_name = decode_fields(answers[1].records[0].data)["nsm"]
        elif stage == 1:
            nsm_name = decode_fields(answers[0].records[0].data)["nsm"]
        assert ns_name is not None and nsm_name is not None
        span.set(ns=ns_name, nsm=nsm_name, cached=False)
        nsm_answer = answers[-1]
        return (
            ns_name,
            nsm_name,
            NsmRecord.from_fields(nsm_name, nsm_answer.records[0].data),
        )

    def name_service_record(self, ns_name: str) -> typing.Generator:
        """Descriptor lookup (used by admin tooling and NSM bootstrap)."""
        owner = f"{ns_name}.ns.{META_ORIGIN}"
        try:
            records = yield from self.resolver.lookup(owner, RRType.UNSPEC)
        except NameNotFound as err:
            raise HnsError(f"unknown name service {ns_name!r}") from err
        return NameServiceRecord.from_fields(ns_name, records[0].data)

    @staticmethod
    def host_label(host_name: str) -> str:
        """Sanitise a (possibly dotted or colon-ed) host name to a label."""
        return "".join(c if c.isalnum() else "-" for c in host_name.lower())

    def nsm_host_address(self, host_name: str) -> typing.Generator:
        """NSM-host address from the meta zone (preloaded with the rest).

        The meta zone carries address records for NSM hosts so that a
        preload can "guarantee HNS cache hits"; this lookup backstops
        the statically-linked host-address NSM path.
        """
        owner = f"{self.host_label(host_name)}.addr.{META_ORIGIN}"
        with self.env.obs.span("meta.host_address", host=host_name):
            fields = yield from self._lookup_fields(owner)
            return fields["addr"]

    # ------------------------------------------------------------------
    # Registration (dynamic updates to the modified BIND)
    # ------------------------------------------------------------------
    def _put(self, owner: str, data: bytes, rtype: RRType = RRType.UNSPEC) -> typing.Generator:
        record = ResourceRecord(
            owner, rtype, self.calibration.meta_ttl_ms, data  # type: ignore[arg-type]
        )
        with self.env.obs.span(
            "meta.register", store=f"meta@{self.host.name}", owner=owner
        ) as span:
            policy = self.update_policy
            if policy is None or not policy.active:
                # The prototype write path: one record, one round trip.
                serial = yield from self.resolver.replace_records(
                    owner, rtype, [record]
                )
                # Registration supersedes whatever the cache held for this
                # owner (cache keys are canonical lowercase domain names).
                self.cache.invalidate((str(DomainName(owner)), rtype.value))
                return serial
            op = UpdateOp(
                UpdateMode.REPLACE,
                DomainName(owner),
                rtype,
                (record,),
                lease_ms=policy.lease_ms if policy.leases else 0.0,
            )
            serial = yield from self._submit_op(op)
            span.set(batched=policy.batch, serial=serial)
            if policy.leases:
                self._leases().track((str(op.name), rtype.value), op)
            return serial

    # --- the batched write pipeline -----------------------------------
    def _submit_op(self, op: UpdateOp) -> typing.Generator:
        """Route one write through the update pipeline.

        With batching on, the first concurrent writer opens a
        coalescing window, sleeps it out, and flushes everything that
        accumulated as one (or a few, if over the wire cap) batched
        round trips; writers that arrive while the window is open merge
        their op in and park on the leader's event.
        """
        policy = self.update_policy
        assert policy is not None
        if not policy.batch:
            # No coalescing, but leases/NOTIFY still need the batch
            # message (it is the one that carries the lease field).
            serial, _ = yield from self.resolver.update_batch([op])
            self._invalidate_for(op)
            return serial
        key = (str(op.name), op.rtype.value)
        batch = self._open_batch
        if batch is not None:
            # Follower: merge (last writer wins on the same owner) and
            # wait for the leader's flush.
            batch.ops[key] = op
            self.env.stats.counter("hns.meta.coalesced_writes").increment()
            serial = yield batch.done
            return serial
        event = self.env.event()
        # The flush may fail with nobody parked on the batch.
        event.defuse()
        batch = _OpenBatch(done=event)
        batch.ops[key] = op
        self._open_batch = batch
        if policy.batch_window_ms > 0:
            yield self.env.timeout(policy.batch_window_ms)
        self._open_batch = None
        ops = list(batch.ops.values())
        try:
            serial = 0
            for start in range(0, len(ops), policy.max_batch_ops):
                chunk = ops[start:start + policy.max_batch_ops]
                serial, _ = yield from self.resolver.update_batch(chunk)
        except BaseException as err:
            batch.done.fail(err)
            raise
        for queued in ops:
            self._invalidate_for(queued)
        self.env.trace.emit(
            "hns",
            f"meta@{self.host.name}: flushed {len(ops)} coalesced "
            f"writes (serial {serial})",
        )
        batch.done.succeed(serial)
        return serial

    def _invalidate_for(self, op: UpdateOp) -> None:
        self.cache.invalidate((str(op.name), op.rtype.value))

    # --- leases -------------------------------------------------------
    def _leases(self) -> "LeaseKeeper":
        """The renewal agent, created on first leased registration."""
        if self._lease_keeper is None:
            from repro.core.nsm import LeaseKeeper

            policy = self.update_policy
            assert policy is not None
            self._lease_keeper = LeaseKeeper(
                self.env,
                self._renew_ops,
                lease_ms=policy.lease_ms,
                renew_fraction=policy.lease_renew_fraction,
                name=f"meta@{self.host.name}",
            )
        return self._lease_keeper

    def _renew_ops(self, ops: typing.List[UpdateOp]) -> typing.Generator:
        """Re-assert every tracked lease in one batched round trip."""
        policy = self.update_policy
        assert policy is not None
        for start in range(0, len(ops), policy.max_batch_ops):
            yield from self.resolver.update_batch(
                ops[start:start + policy.max_batch_ops]
            )

    def stop_lease_renewal(self) -> None:
        """Stop renewing (models this registrar dying): the primary
        retracts every binding we held when its lease runs out."""
        if self._lease_keeper is not None:
            self._lease_keeper.stop()

    # --- NOTIFY -------------------------------------------------------
    def subscribe_invalidation(self) -> typing.Generator:
        """Subscribe this store's cache to the primary's NOTIFY push.

        Pushed serial bumps pull IXFR deltas straight into the cache,
        so re-registrations elsewhere stop being served here long
        before their TTL would have expired.  Returns the zone serial
        the subscription starts from.
        """
        serial = yield from self.resolver.subscribe_notify(META_ORIGIN)
        return serial

    def register_context(self, context: str, name_service: str) -> typing.Generator:
        yield from self._put(
            f"{context}.ctx.{META_ORIGIN}", encode_fields(ns=name_service)
        )

    def register_query_mapping(
        self, name_service: str, query_class: str, nsm_name: str
    ) -> typing.Generator:
        yield from self._put(
            f"{query_class}.{name_service}.q.{META_ORIGIN}",
            encode_fields(nsm=nsm_name),
        )

    def register_nsm(self, record: NsmRecord) -> typing.Generator:
        yield from self._put(f"{record.name}.nsm.{META_ORIGIN}", record.to_fields())

    def register_name_service(self, record: NameServiceRecord) -> typing.Generator:
        yield from self._put(f"{record.name}.ns.{META_ORIGIN}", record.to_fields())

    def register_nsm_host_address(self, host_name: str, address: str) -> typing.Generator:
        owner = f"{self.host_label(host_name)}.addr.{META_ORIGIN}"
        yield from self._put(owner, encode_fields(host=host_name, addr=address))

    def unregister(self, owner: str, rtype: RRType = RRType.UNSPEC) -> typing.Generator:
        policy = self.update_policy
        if policy is not None and policy.active:
            op = UpdateOp(UpdateMode.DELETE, DomainName(owner), rtype)
            yield from self._submit_op(op)
            if self._lease_keeper is not None:
                self._lease_keeper.release((str(op.name), rtype.value))
            return
        yield from self.resolver.remove_records(owner, rtype)
        self.cache.invalidate((str(DomainName(owner)), rtype.value))

    # ------------------------------------------------------------------
    def directory(self) -> typing.Generator:
        """Browse the whole federation: one zone transfer, parsed.

        Returns a :class:`DirectoryListing` of every registered context,
        name service, query mapping, and NSM — the administrator's view
        of the global name space.
        """
        serial, records = yield from self.resolver.zone_transfer(META_ORIGIN)
        listing = DirectoryListing(serial=serial)
        suffixes = {
            "ctx": 2,  # <context>.ctx.hns
            "q": 3,    # <qclass>.<ns>.q.hns
            "nsm": 2,  # <nsm>.nsm.hns
            "ns": 2,   # <ns>.ns.hns
            "addr": 2, # <hostlabel>.addr.hns
        }
        for record in records:
            labels = record.name.labels
            if len(labels) < 3 or labels[-1] != META_ORIGIN:
                continue
            kind = labels[-2]
            if kind not in suffixes or len(labels) != suffixes[kind] + 1:
                continue
            fields = decode_fields(record.data)
            if kind == "ctx":
                listing.contexts[labels[0]] = fields["ns"]
            elif kind == "q":
                listing.query_mappings[(labels[1], labels[0])] = fields["nsm"]
            elif kind == "nsm":
                listing.nsms[labels[0]] = NsmRecord.from_fields(labels[0], record.data)
            elif kind == "ns":
                listing.name_services[labels[0]] = NameServiceRecord.from_fields(
                    labels[0], record.data
                )
            elif kind == "addr":
                listing.nsm_hosts[fields["host"]] = fields["addr"]
        return listing

    def preload(self) -> typing.Generator:
        """Zone-transfer the whole meta zone into the cache.

        Returns the number of records loaded (~2 KB in the prototype,
        costing ~390 ms).
        """
        count = yield from self.resolver.preload_cache(META_ORIGIN)
        return count
