"""The NSM framework.

"Each NSM understands the semantics of naming for a particular query
class and a particular name service. ... The NSMs are neither HNS nor
application code per se.  Rather, they are code managed by the HNS and
shared by the applications."

An NSM is ordinary Python (a generator-based ``query``); it can be

- **linked in** to any process (client, agent, or the HNS itself) and
  called locally at essentially zero call cost, or
- **served remotely** behind an :class:`~repro.hrpc.server.HrpcServer`
  program via :func:`serve_nsm`, where it is shared by all clients (and
  so sees a higher cache-hit fraction — the other side of equation (1)).

:class:`NsmStub` gives clients one calling convention for both cases:
it dispatches on whether FindNSM returned a :class:`LocalNsmBinding` or
a remote :class:`~repro.hrpc.binding.HRPCBinding`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind import CacheFormat, ResolverCache, UpdateOp
from repro.core.names import HNSName
from repro.core.queryclass import query_class_named
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.runtime import HrpcRuntime
from repro.hrpc.server import HrpcServer
from repro.net.host import Host
from repro.resolution import FastPathPolicy
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import SpanLike


@dataclasses.dataclass
class NsmResult:
    """A standardized query result: the query class fixes the fields."""

    query_class: str
    value: typing.Dict[str, object]
    from_cache: bool = False

    def __post_init__(self) -> None:
        query_class_named(self.query_class).validate_result(self.value)


class NamingSemanticsManager:
    """Base class for all NSMs.

    Subclasses set :attr:`query_class` and :attr:`name_service` and
    implement :meth:`resolve`, the native-protocol work.  The base class
    provides the result cache (hits skip the native work entirely) and
    standardization cost accounting.
    """

    query_class: str = ""

    def __init__(
        self,
        host: Host,
        name_service: str,
        name: str = "",
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        fast_path: typing.Optional[FastPathPolicy] = None,
    ):
        if not self.query_class:
            raise TypeError("NSM subclasses must set query_class")
        query_class_named(self.query_class)
        self.host = host
        self.env = host.env
        self.name_service = name_service
        self.name = name or f"{self.query_class}-{name_service}"
        self.calibration = calibration
        # Per-instance cost knobs.  Defaults model a full-featured NSM
        # (name translation + result standardization + cached-result
        # revalidation); lightweight NSMs — notably the statically
        # linked HostAddress ones — zero them out.
        self.translate_cost_ms = calibration.nsm_translate_ms
        self.standardize_cost_ms = calibration.nsm_standardize_ms
        self.cache_hit_extra_ms = calibration.nsm_cache_hit_extra_ms
        self.cache: typing.Optional[ResolverCache] = (
            ResolverCache(
                host.env,
                name=f"nsm:{self.name}",
                fmt=CacheFormat.DEMARSHALLED,
                calibration=calibration,
            )
            if cached
            else None
        )
        #: performance knobs (coalescing, refresh-ahead); None keeps
        #: the one-native-call-per-miss behaviour.  Also settable after
        #: construction, since concrete NSMs have their own signatures.
        self.fast_path = fast_path
        self._flights: typing.Dict[object, Event] = {}

    # ------------------------------------------------------------------
    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        """Do the native work; returns (result dict, ttl_ms).

        Subclasses translate the individual name to the local name,
        interrogate the local name service with its own protocol, and
        return data in the query class's standard format.
        """
        raise NotImplementedError

    def translate_name(self, hns_name: HNSName) -> str:
        """Individual name -> local name (identity by default).

        "the individual name ... in the simplest case is identical to
        the name of the entity in its local name service."
        """
        return hns_name.name

    def _cache_key(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> object:
        return (str(hns_name), tuple(sorted((k, str(v)) for k, v in params.items())))

    # ------------------------------------------------------------------
    def query(
        self, hns_name: HNSName, **params: object
    ) -> typing.Generator:
        """The query-class interface: identical across all NSMs.

        Returns an :class:`NsmResult`.
        """
        with self.env.obs.span(
            "nsm.query",
            nsm=self.name,
            query_class=self.query_class,
            name=str(hns_name),
        ) as span:
            result = yield from self._query(hns_name, params, span)
            return result

    def _query(
        self,
        hns_name: HNSName,
        params: typing.Mapping[str, object],
        span: "SpanLike",
    ) -> typing.Generator:
        cache = self.cache
        if cache is not None:
            key = self._cache_key(hns_name, params)
            entry, probe_cost = cache.probe(key)
            yield from self.host.cpu.compute(probe_cost)
            if entry is not None:
                span.set(outcome="hit")
                yield from self.host.cpu.compute(
                    cache.hit_cost(entry) + self.cache_hit_extra_ms
                )
                self.env.stats.counter(f"nsm.{self.name}.cache_hits").increment()
                self._maybe_refresh(key, hns_name, dict(params), entry)
                return NsmResult(
                    self.query_class,
                    dict(typing.cast(dict, entry.payload)),
                    from_cache=True,
                )
            fast = self.fast_path
            if fast is not None and fast.coalesce:
                flight = self._flights.get(key)
                if flight is not None:
                    # Park on the leader's native call; pay the copy.
                    span.set(outcome="coalesced")
                    cache.record_coalesced()
                    value = yield flight
                    yield from self.host.cpu.compute(
                        self.calibration.cache_copy_base_ms
                        + self.calibration.cache_copy_per_record_ms
                    )
                    return NsmResult(
                        self.query_class,
                        dict(typing.cast(dict, value)),
                        from_cache=True,
                    )
                span.set(outcome="native", role="leader")
                event = self.env.event()
                event.defuse()  # followers may be zero
                self._flights[key] = event
                try:
                    result = yield from self._native_query(
                        hns_name, params, key
                    )
                except BaseException as err:
                    self._flights.pop(key, None)
                    event.fail(err)
                    raise
                self._flights.pop(key, None)
                event.succeed(result.value)
                return result
            span.set(outcome="native")
            result = yield from self._native_query(hns_name, params, key)
            return result
        span.set(outcome="native")
        result = yield from self._native_query(hns_name, params, None)
        return result

    def _native_query(
        self,
        hns_name: HNSName,
        params: typing.Mapping[str, object],
        key: typing.Optional[object],
    ) -> typing.Generator:
        """The cache-miss path: translate, resolve natively, insert."""
        with self.env.obs.span("nsm.native", nsm=self.name):
            self.env.stats.counter(
                f"nsm.{self.name}.native_queries"
            ).increment()
            if self.translate_cost_ms:
                yield from self.host.cpu.compute(self.translate_cost_ms)
            value, ttl_ms = yield from self.resolve(hns_name, params)
            if self.standardize_cost_ms:
                yield from self.host.cpu.compute(self.standardize_cost_ms)
            result = NsmResult(self.query_class, dict(value))
            if self.cache is not None and key is not None:
                insert_cost = self.cache.insert(key, dict(value), 1, ttl_ms)
                yield from self.host.cpu.compute(insert_cost)
            self.env.trace.emit(
                "nsm", f"{self.name}: resolved {hns_name}", params=dict(params)
            )
            return result

    def _maybe_refresh(
        self,
        key: object,
        hns_name: HNSName,
        params: typing.Dict[str, object],
        entry,
    ) -> None:
        """Spawn a background renewal if ``entry`` is near expiry."""
        fast = self.fast_path
        if fast is None or fast.refresh_ahead_fraction <= 0:
            return
        assert self.cache is not None
        if not self.cache.needs_refresh(entry, fast.refresh_ahead_fraction):
            return
        if key in self._flights:
            return
        event = self.env.event()
        event.defuse()
        self._flights[key] = event
        self.cache.record_refresh()
        # Jittered deferral, as in the resolver: keep the triggering
        # hit's latency intact and spread renewals over the window.
        defer_ms = self.env.rng.stream("nsm.refresh_jitter").uniform(
            0.0, max(0.0, entry.expires_at - self.env.now) / 2.0
        )
        # Causal link: the renewal runs as its own process, so the span
        # context of the triggering hit must travel explicitly.
        parent = self.env.obs.current()
        self.env.process(
            self._refresh(event, key, hns_name, params, defer_ms, parent)
        )

    def _refresh(
        self,
        event: Event,
        key: object,
        hns_name: HNSName,
        params: typing.Dict[str, object],
        defer_ms: float = 0.0,
        parent: typing.Optional["SpanLike"] = None,
    ) -> typing.Generator:
        """Background renewal: silent on failure (the entry simply ages
        out and serve-stale takes over); coalesced followers do see the
        failure, as for them it is a real lookup."""
        if defer_ms > 0:
            yield self.env.timeout(defer_ms)
        with self.env.obs.span(
            "nsm.refresh", parent=parent, nsm=self.name
        ) as span:
            try:
                result = yield from self._native_query(hns_name, params, key)
            except Exception as err:
                span.set(outcome="failed")
                self._flights.pop(key, None)
                event.fail(err)
                self.env.stats.counter(
                    f"nsm.{self.name}.refresh_failures"
                ).increment()
                return
            span.set(outcome="renewed")
            self._flights.pop(key, None)
            event.succeed(result.value)


# ----------------------------------------------------------------------
# Local vs remote invocation
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LocalNsmBinding:
    """FindNSM's answer when the chosen NSM is linked into this process."""

    nsm: NamingSemanticsManager

    @property
    def program(self) -> str:
        return f"nsm.{self.nsm.name}"

    def describe(self) -> str:
        return f"LocalNsmBinding({self.nsm.name})"


def serve_nsm(server: HrpcServer, nsm: NamingSemanticsManager) -> str:
    """Expose ``nsm`` as program ``nsm.<name>`` with procedure ``query``.

    Returns the program name.  "registering an NSM with the HNS extends
    the functionality of all machines at once" — remote NSMs are the
    manageable choice.
    """
    if nsm.host is not server.host:
        raise ValueError(
            f"NSM {nsm.name} lives on {nsm.host.name}, "
            f"server on {server.host.name}; colocate them first"
        )
    program_name = f"nsm.{nsm.name}"

    def query_proc(ctx, hns_name_text: str, params: dict):
        result = yield from nsm.query(HNSName.parse(hns_name_text), **params)
        return {"query_class": result.query_class, "value": result.value}

    server.program(program_name).procedure("query", query_proc)
    return program_name


class LeaseKeeper:
    """Client-side half of lease-based invalidation.

    A write made under an :class:`~repro.resolution.UpdatePolicy` with
    ``invalidation="lease"`` stays registered only as long as its owner
    keeps renewing it; this process re-submits every tracked binding at
    ``lease_ms * renew_fraction`` so a healthy owner never lets a lease
    lapse — while a crashed or retired owner's bindings retract at the
    server within one lease, without any explicit unregister.
    """

    def __init__(
        self,
        env,
        renew: typing.Callable[[typing.List[UpdateOp]], typing.Generator],
        lease_ms: float,
        renew_fraction: float = 0.5,
        name: str = "leases",
    ):
        if lease_ms <= 0:
            raise ValueError("lease_ms must be positive")
        if not 0 < renew_fraction < 1:
            raise ValueError("renew_fraction must be in (0, 1)")
        self.env = env
        self.name = name
        self.interval_ms = lease_ms * renew_fraction
        self._renew = renew
        self._ops: typing.Dict[object, UpdateOp] = {}
        self._process = None
        self._running = True

    def track(self, key: object, op: UpdateOp) -> None:
        """Keep ``op`` alive: re-registered every renewal interval."""
        self._ops[key] = op
        self.env.stats.counter("nsm.lease.tracked").increment()
        if self._process is None or not self._process.is_alive:
            self._running = True
            self._process = self.env.process(
                self._loop(), name=f"{self.name}.lease_renewal"
            )

    def release(self, key: object) -> None:
        """Stop renewing one binding (it expires at the server)."""
        self._ops.pop(key, None)

    def stop(self) -> None:
        """Stop renewing everything — models the owner going away."""
        self._running = False
        self._ops.clear()
        self.env.stats.counter("nsm.lease.stops").increment()

    @property
    def active(self) -> bool:
        return self._running and bool(self._ops)

    def _loop(self) -> typing.Generator:
        while self._running and self._ops:
            yield self.env.timeout(self.interval_ms)
            if not self._running or not self._ops:
                return
            try:
                yield from self._renew(list(self._ops.values()))
            except Exception:
                # A missed renewal is not fatal: the next tick retries,
                # and the server-side lease only lapses after lease_ms.
                self.env.stats.counter("nsm.lease.renewal_failures").increment()
            else:
                self.env.stats.counter("nsm.lease.renewals").increment()


class NsmStub:
    """Uniform client-side calling convention for any NSM binding.

    "the client can call the NSM that the HNS designates without regard
    to the name service that NSM uses" — nor, here, to whether it is
    local or remote.
    """

    def __init__(
        self,
        host: Host,
        runtime: typing.Optional[HrpcRuntime] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        local_nsms: typing.Optional[
            typing.Mapping[str, NamingSemanticsManager]
        ] = None,
    ):
        self.host = host
        self.env = host.env
        self.runtime = runtime
        self.calibration = calibration
        # NSMs linked into *this* process: if FindNSM (possibly running
        # remotely) designates one of these, the stub short-circuits to
        # the local copy instead of calling across the network.
        self.local_nsms: typing.Dict[str, NamingSemanticsManager] = dict(
            local_nsms or {}
        )

    def link_local(self, nsm: NamingSemanticsManager) -> None:
        self.local_nsms[nsm.name] = nsm

    def call(
        self,
        binding: typing.Union[LocalNsmBinding, HRPCBinding],
        hns_name: HNSName,
        **params: object,
    ) -> typing.Generator:
        """Invoke the NSM's ``query``; returns an :class:`NsmResult`."""
        if isinstance(binding, HRPCBinding):
            local = self.local_nsms.get(binding.metadata.get("nsm", ""))
            if local is not None:
                binding = LocalNsmBinding(local)
        if isinstance(binding, LocalNsmBinding):
            # "C(local call) is effectively zero".
            if self.calibration.local_call_ms:
                yield from self.host.cpu.compute(self.calibration.local_call_ms)
            result = yield from binding.nsm.query(hns_name, **params)
            return result
        if self.runtime is None:
            raise ValueError("remote NSM binding but no HRPC runtime supplied")
        raw = yield from self.runtime.call(
            binding,
            "query",
            str(hns_name),
            dict(params),
            arg_size_bytes=hns_name.wire_size() + 96,
        )
        return NsmResult(raw["query_class"], dict(raw["value"]))
