"""The HRPC ``Import`` call: the first HNS application.

"In its simplest form, a client calls the HNS using heterogeneous RPC,
passing the HNS name and query class.  ... The client then calls the
NSM using the query specific interface, which includes the original HNS
name."  Import wraps that two-step dance (plus the fixed HRPC machinery
of component selection, stub setup, and result marshalling) behind one
call that returns a ready-to-use :class:`HRPCBinding`.
"""

from __future__ import annotations

import typing

from repro.core.errors import HnsError
from repro.core.hns import HNS
from repro.core.names import HNSName
from repro.core.nsm import NsmResult, NsmStub
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.runtime import HrpcRuntime
from repro.net.host import Host

BINDING_QC = "HRPCBinding"


class LocalFinder:
    """FindNSM through an HNS library linked into this process."""

    def __init__(self, hns: HNS):
        self.hns = hns

    def find(self, hns_name: HNSName, query_class: str) -> typing.Generator:
        binding = yield from self.hns.find_nsm(hns_name, query_class)
        return binding


class RemoteFinder:
    """FindNSM via an HRPC call to a remote HNS service."""

    def __init__(self, runtime: HrpcRuntime, hns_binding: HRPCBinding):
        self.runtime = runtime
        self.hns_binding = hns_binding

    def find(self, hns_name: HNSName, query_class: str) -> typing.Generator:
        binding = yield from self.runtime.call(
            self.hns_binding,
            "FindNSM",
            str(hns_name),
            query_class,
            arg_size_bytes=hns_name.wire_size() + 32,
        )
        return binding


def result_to_binding(result: NsmResult) -> HRPCBinding:
    """Build the client's Binding from a standardized NSM result."""
    value = result.value
    return HRPCBinding(
        endpoint=value["endpoint"],  # type: ignore[arg-type]
        program=typing.cast(str, value["program"]),
        suite=typing.cast(str, value["suite"]),
        system_type=typing.cast(str, value.get("system_type", "unix")),
    )


class HrpcImporter:
    """Client-side Import.

    Exactly one of (``finder`` + ``nsm_stub``) or (``agent_binding`` +
    ``runtime``) must be supplied: the former runs the two-step protocol
    from this process, the latter delegates both steps to a remote
    agent (Table 3.1 row 2).
    """

    def __init__(
        self,
        client_host: Host,
        finder: typing.Optional[typing.Union[LocalFinder, RemoteFinder]] = None,
        nsm_stub: typing.Optional[NsmStub] = None,
        agent_binding: typing.Optional[HRPCBinding] = None,
        runtime: typing.Optional[HrpcRuntime] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        direct = finder is not None and nsm_stub is not None
        via_agent = agent_binding is not None and runtime is not None
        if direct == via_agent:
            raise ValueError(
                "supply either (finder, nsm_stub) or (agent_binding, runtime)"
            )
        self.client_host = client_host
        self.env = client_host.env
        self.finder = finder
        self.nsm_stub = nsm_stub
        self.agent_binding = agent_binding
        self.runtime = runtime
        self.calibration = calibration

    def import_binding(
        self, service_name: str, hns_name: HNSName
    ) -> typing.Generator:
        """``Import(ServiceName, HostName) -> ResultBinding``."""
        if not service_name:
            raise ValueError("Import requires a service name")
        env = self.env
        env.stats.counter("hrpc.imports").increment()
        start = env.now
        # The fixed HRPC import machinery: component selection, stub
        # instantiation, final marshalling of the Binding to the caller.
        yield from self.client_host.cpu.compute(self.calibration.import_fixed_ms)
        if self.agent_binding is not None:
            assert self.runtime is not None
            binding = yield from self.runtime.call(
                self.agent_binding,
                "Import",
                service_name,
                str(hns_name),
                arg_size_bytes=hns_name.wire_size() + len(service_name) + 32,
            )
        else:
            assert self.finder is not None and self.nsm_stub is not None
            nsm_binding = yield from self.finder.find(hns_name, BINDING_QC)
            result = yield from self.nsm_stub.call(
                nsm_binding, hns_name, service=service_name
            )
            binding = result_to_binding(result)
        if not isinstance(binding, HRPCBinding):
            raise HnsError(f"Import produced a non-binding {binding!r}")
        env.stats.timer("hrpc.import_ms").record(env.now - start)
        env.trace.emit(
            "import",
            f"Import({service_name}, {hns_name}) -> {binding.describe()}",
        )
        return binding


def serve_agent(
    hns: HNS,
    server,
    nsm_stub: NsmStub,
    program_name: str = "hnsagent",
) -> str:
    """Expose an Import-performing agent (Table 3.1 row 2).

    "a single process remote from the client acted as the client's
    agent, making local calls to the HNS and then to the NSM.  This
    structure provides a mixture of colocation efficiency and ease of
    NSM update."
    """

    def import_proc(ctx, service_name: str, hns_name_text: str):
        hns_name = HNSName.parse(hns_name_text)
        nsm_binding = yield from hns.find_nsm(hns_name, BINDING_QC)
        result = yield from nsm_stub.call(nsm_binding, hns_name, service=service_name)
        return result_to_binding(result)

    server.program(program_name).procedure("Import", import_proc)
    return program_name
