"""The HRPC ``Import`` call: the first HNS application.

"In its simplest form, a client calls the HNS using heterogeneous RPC,
passing the HNS name and query class.  ... The client then calls the
NSM using the query specific interface, which includes the original HNS
name."  Import wraps that two-step dance (plus the fixed HRPC machinery
of component selection, stub setup, and result marshalling) behind one
call that returns a ready-to-use :class:`HRPCBinding`.

Importers are built with :meth:`HrpcImporter.direct` (the two-step
protocol runs in this process) or :meth:`HrpcImporter.via_agent` (both
steps delegated to a remote agent — Table 3.1 row 2).  Either mode
consults a :class:`~repro.resolution.ResolutionPolicy`: transient
transport failures are retried with jittered backoff, and a per-NSM
circuit breaker fails fast once an NSM is known dead.
"""

from __future__ import annotations

import typing

from repro.core.errors import HnsError, NsmUnavailable
from repro.core.hns import HNS, FindNsmCall
from repro.core.names import HNSName
from repro.core.nsm import LocalNsmBinding, NsmResult, NsmStub
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.runtime import HrpcRuntime
from repro.net.errors import is_transient
from repro.net.host import Host
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    CircuitBreakerRegistry,
    ResolutionPolicy,
    retrying,
)
from repro.sim.events import Event

BINDING_QC = "HRPCBinding"

#: An ``Import`` in flight: a simulation process generator returning
#: the ready-to-use binding for the requested service.
ImportCall = typing.Generator[Event, typing.Any, HRPCBinding]


class LocalFinder:
    """FindNSM through an HNS library linked into this process."""

    def __init__(self, hns: HNS):
        self.hns = hns

    def find(self, hns_name: HNSName, query_class: str) -> FindNsmCall:
        """Run ``FindNSM`` in-process; returns the NSM binding."""
        binding = yield from self.hns.find_nsm(hns_name, query_class)
        return binding


class RemoteFinder:
    """FindNSM via an HRPC call to a remote HNS service."""

    def __init__(
        self,
        runtime: HrpcRuntime,
        hns_binding: HRPCBinding,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
    ):
        self.runtime = runtime
        self.hns_binding = hns_binding
        self.policy = policy

    def find(self, hns_name: HNSName, query_class: str) -> FindNsmCall:
        """Call the remote HNS service's ``FindNSM`` procedure."""
        binding = yield from self.runtime.call(
            self.hns_binding,
            "FindNSM",
            str(hns_name),
            query_class,
            arg_size_bytes=hns_name.wire_size() + 32,
            policy=self.policy,
        )
        return binding


def result_to_binding(result: NsmResult) -> HRPCBinding:
    """Build the client's Binding from a standardized NSM result."""
    value = result.value
    return HRPCBinding(
        endpoint=value["endpoint"],  # type: ignore[arg-type]
        program=typing.cast(str, value["program"]),
        suite=typing.cast(str, value["suite"]),
        system_type=typing.cast(str, value.get("system_type", "unix")),
    )


class HrpcImporter:
    """Client-side Import.

    Construct with :meth:`direct` — the importer runs FindNSM and the
    NSM call from this process — or :meth:`via_agent` — both steps are
    delegated to a remote agent (Table 3.1 row 2).  The bare
    constructor only carries the common state; an unwired importer
    raises on use.
    """

    def __init__(
        self,
        client_host: Host,
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
    ):
        self.client_host = client_host
        self.env = client_host.env
        self.calibration = calibration
        self.policy = policy
        self.finder: typing.Optional[
            typing.Union[LocalFinder, RemoteFinder]
        ] = None
        self.nsm_stub: typing.Optional[NsmStub] = None
        self.agent_binding: typing.Optional[HRPCBinding] = None
        self.runtime: typing.Optional[HrpcRuntime] = None
        self.breakers = CircuitBreakerRegistry(
            self.env,
            policy if policy is not None else ResolutionPolicy.disabled(),
        )

    # ------------------------------------------------------------------
    # Construction (the public API)
    # ------------------------------------------------------------------
    @classmethod
    def direct(
        cls,
        client_host: Host,
        finder: typing.Union[LocalFinder, RemoteFinder],
        nsm_stub: NsmStub,
        calibration: Calibration = DEFAULT_CALIBRATION,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
    ) -> "HrpcImporter":
        """An importer running the two-step protocol from this process.

        With a :class:`LocalFinder`, the importer shares the HNS's
        per-NSM circuit breakers, so NSM call failures observed here
        make the linked-in ``FindNSM`` route around the dead NSM.
        """
        importer = cls(client_host, calibration=calibration, policy=policy)
        importer.finder = finder
        importer.nsm_stub = nsm_stub
        if isinstance(finder, LocalFinder):
            importer.breakers = finder.hns.nsm_breakers
        return importer

    @classmethod
    def via_agent(
        cls,
        client_host: Host,
        agent_binding: HRPCBinding,
        runtime: HrpcRuntime,
        calibration: Calibration = DEFAULT_CALIBRATION,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
    ) -> "HrpcImporter":
        """An importer delegating both steps to a remote agent.

        "a single process remote from the client acted as the client's
        agent" — the client pays one HRPC call; the agent's own HNS and
        NSM stacks handle (and fault-tolerate) the rest.
        """
        importer = cls(client_host, calibration=calibration, policy=policy)
        importer.agent_binding = agent_binding
        importer.runtime = runtime
        return importer

    # ------------------------------------------------------------------
    def import_binding(
        self, service_name: str, hns_name: HNSName
    ) -> ImportCall:
        """``Import(ServiceName, HostName) -> ResultBinding``."""
        if not service_name:
            raise ValueError("Import requires a service name")
        if self.finder is None and self.agent_binding is None:
            raise HnsError(
                "importer is not wired: build it with HrpcImporter.direct()"
                " or HrpcImporter.via_agent()"
            )
        env = self.env
        with env.obs.span(
            "hrpc.import",
            service=service_name,
            name=str(hns_name),
            mode="agent" if self.agent_binding is not None else "direct",
        ):
            env.stats.counter("hrpc.imports").increment()
            start = env.now
            # The fixed HRPC import machinery: component selection, stub
            # instantiation, final marshalling of the Binding to the
            # caller.
            yield from self.client_host.cpu.compute(
                self.calibration.import_fixed_ms
            )
            if self.agent_binding is not None:
                binding = yield from self._import_via_agent(
                    service_name, hns_name
                )
            else:
                binding = yield from self._import_direct(
                    service_name, hns_name
                )
            if not isinstance(binding, HRPCBinding):
                raise HnsError(f"Import produced a non-binding {binding!r}")
            env.stats.timer("hrpc.import_ms").record(env.now - start)
            env.trace.emit(
                "import",
                f"Import({service_name}, {hns_name}) -> {binding.describe()}",
            )
            return binding

    # ------------------------------------------------------------------
    def _import_via_agent(
        self, service_name: str, hns_name: HNSName
    ) -> ImportCall:
        """One HRPC call to the agent, breaker-guarded and retried."""
        assert self.agent_binding is not None and self.runtime is not None
        breaker = None
        if self.policy is not None and self.policy.breaker_threshold:
            breaker = self.breakers.breaker(
                f"agent:{self.agent_binding.program}"
            )
            if not breaker.allow():
                self.env.stats.counter("hrpc.import_fast_fails").increment()
                raise NsmUnavailable(
                    f"agent {self.agent_binding.program} is circuit-broken"
                )
        try:
            binding = yield from self.runtime.call(
                self.agent_binding,
                "Import",
                service_name,
                str(hns_name),
                arg_size_bytes=hns_name.wire_size() + len(service_name) + 32,
                policy=self.policy,
            )
        except Exception as err:  # noqa: BLE001 - breaker bookkeeping
            if breaker is not None and is_transient(err):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return binding

    def _import_direct(
        self, service_name: str, hns_name: HNSName
    ) -> ImportCall:
        """FindNSM + NSM call, retried as a unit.

        Re-running the *pair* matters: after the NSM's breaker trips, the
        next FindNSM can route around the dead NSM (to a linked-in copy)
        instead of repeating the doomed remote call.
        """
        binding = yield from retrying(
            self.env,
            self.policy,
            lambda _attempt: self._direct_once(service_name, hns_name),
            rng_stream="hrpc.import.backoff",
            stat="hrpc.import_retries",
        )
        return binding

    def _direct_once(self, service_name: str, hns_name: HNSName) -> ImportCall:
        assert self.finder is not None and self.nsm_stub is not None
        nsm_binding = yield from self.finder.find(hns_name, BINDING_QC)
        # The stub prefers a linked-in copy of the designated NSM; such
        # calls never cross the wire, so the breaker stays out of them.
        goes_local = isinstance(nsm_binding, LocalNsmBinding) or (
            nsm_binding.metadata.get("nsm", "") in self.nsm_stub.local_nsms
        )
        breaker = None
        if (
            not goes_local
            and self.policy is not None
            and self.policy.breaker_threshold
        ):
            breaker = self.breakers.breaker(self._nsm_key(nsm_binding))
            if not breaker.allow():
                self.env.stats.counter("hrpc.import_fast_fails").increment()
                raise NsmUnavailable(
                    f"NSM {self._nsm_key(nsm_binding)} is circuit-broken"
                )
        try:
            result = yield from self.nsm_stub.call(
                nsm_binding, hns_name, service=service_name
            )
        except Exception as err:  # noqa: BLE001 - breaker bookkeeping
            if breaker is not None and is_transient(err):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result_to_binding(result)

    @staticmethod
    def _nsm_key(binding: HRPCBinding) -> str:
        """Breaker key for a remote NSM binding (its registered name)."""
        nsm = binding.metadata.get("nsm", "")
        if nsm:
            return typing.cast(str, nsm)
        program = binding.program
        return program[4:] if program.startswith("nsm.") else program


def serve_agent(
    hns: HNS,
    server,
    nsm_stub: NsmStub,
    program_name: str = "hnsagent",
) -> str:
    """Expose an Import-performing agent (Table 3.1 row 2).

    "a single process remote from the client acted as the client's
    agent, making local calls to the HNS and then to the NSM.  This
    structure provides a mixture of colocation efficiency and ease of
    NSM update."
    """

    def import_proc(ctx, service_name: str, hns_name_text: str):
        hns_name = HNSName.parse(hns_name_text)
        # The agent-side root: the client's span context does not cross
        # the simulated wire, so the agent's work traces as its own
        # trace rooted here.
        with hns.env.obs.span(
            "hns.agent_import", service=service_name, name=hns_name_text
        ):
            nsm_binding = yield from hns.find_nsm(hns_name, BINDING_QC)
            result = yield from nsm_stub.call(
                nsm_binding, hns_name, service=service_name
            )
            return result_to_binding(result)

    server.program(program_name).procedure("Import", import_proc)
    return program_name
