"""HostAddress NSM for BIND systems.

Instances of this NSM are also statically linked into every HNS to cut
the FindNSM recursion: "Further recursion is avoided by linking
instances of the NSMs that perform this mapping directly with the HNS,
so that their network addresses need not be found."
"""

from __future__ import annotations

import typing

from repro.bind import BindResolver
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport


class BindHostAddressNSM(NamingSemanticsManager):
    """Maps a host name to its address via the conventional resolver."""

    query_class = "HostAddress"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        bind_server: Endpoint,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        # A host-address answer needs no translation or restructuring;
        # linked-in instances must cost exactly the native lookup on a
        # miss and a bare cache hit otherwise.
        self.translate_cost_ms = 0.0
        self.standardize_cost_ms = 0.0
        self.cache_hit_extra_ms = 0.0
        # The NSM result cache (self.cache) covers the standardized
        # answers; the resolver itself runs uncached so the native cost
        # is the paper's 27 ms conventional lookup.
        self.resolver = BindResolver(
            host,
            transport,
            bind_server,
            marshalling="handcoded",
            calibration=calibration,
            name=f"nsm-hostaddr@{host.name}",
        )

    def _cache_key(self, hns_name: HNSName, params) -> object:
        # Keyed by local host name so preloaded entries (which know only
        # the host name, not the context) hit.
        return ("hostaddr", self.translate_name(hns_name))

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        local_name = self.translate_name(hns_name)
        records = yield from self.resolver.lookup(local_name)
        ttl = min(r.ttl for r in records)
        return {"address": records[0].address}, ttl
