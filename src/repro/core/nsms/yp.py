"""NSMs for Sun Yellow Pages systems: the third system type.

These demonstrate the paper's integration story end to end: supporting
a whole new kind of name service takes one small NSM per query class
worth supporting, registered once with the HNS.  YP host addresses come
from the ``hosts.byname`` map; binding still uses the Sun portmapper
(YP systems are Sun systems); mailboxes come from ``mail.aliases``.
"""

from __future__ import annotations

import typing

from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.portmapper import PortmapperClient
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host
from repro.net.transport import Transport
from repro.yellowpages.client import YpClient


class YpHostAddressNSM(NamingSemanticsManager):
    """HostAddress via ``hosts.byname``."""

    query_class = "HostAddress"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        yp_server: Endpoint,
        domain: str,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.translate_cost_ms = 0.0
        self.standardize_cost_ms = 0.0
        self.cache_hit_extra_ms = 0.0
        self.client = YpClient(
            host, transport, yp_server, domain, name=f"nsm-yp@{host.name}"
        )

    def _cache_key(self, hns_name: HNSName, params) -> object:
        return ("hostaddr", self.translate_name(hns_name))

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        # hosts.byname values are "address canonical-name aliases..."
        value = yield from self.client.match(
            "hosts.byname", self.translate_name(hns_name)
        )
        address = value.split()[0]
        return {"address": address}, self.calibration.meta_ttl_ms


class YpBindingNSM(NamingSemanticsManager):
    """HRPCBinding for YP-named Sun hosts (portmapper protocol)."""

    query_class = "HRPCBinding"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        yp_server: Endpoint,
        domain: str,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.client = YpClient(
            host, transport, yp_server, domain, name=f"nsm-ypbind@{host.name}"
        )
        self.portmapper = PortmapperClient(host, transport, calibration=calibration)

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        service_name = typing.cast(str, params.get("service"))
        if not service_name:
            raise ValueError("HRPCBinding query requires a 'service' parameter")
        value = yield from self.client.match(
            "hosts.byname", self.translate_name(hns_name)
        )
        address = NetworkAddress(value.split()[0])
        port = yield from self.portmapper.get_port(address, service_name)
        return (
            {
                "endpoint": Endpoint(address, port),
                "program": service_name,
                "suite": "sunrpc",
                "system_type": "sun",
            },
            self.calibration.meta_ttl_ms,
        )


class YpMailboxNSM(NamingSemanticsManager):
    """MailboxLocation via ``mail.aliases`` ("user: host|box")."""

    query_class = "MailboxLocation"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        yp_server: Endpoint,
        domain: str,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.client = YpClient(
            host, transport, yp_server, domain, name=f"nsm-ypmail@{host.name}"
        )

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        value = yield from self.client.match(
            "mail.aliases", self.translate_name(hns_name)
        )
        mail_host, sep, mailbox = value.partition("|")
        if not sep:
            raise ValueError(f"malformed mail.aliases value {value!r}")
        return (
            {"mail_host": mail_host, "mailbox": mailbox},
            self.calibration.meta_ttl_ms,
        )
