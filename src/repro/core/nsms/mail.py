"""MailboxLocation NSMs: the HCS mail service's naming needs.

Mail was one of the three core HCS network services.  The query class
maps a user's global name to (mail host, mailbox); each NSM extracts
that from its name service's native representation:

- BIND systems store a TXT record ``mailhost=<host>;mailbox=<box>`` on
  the user's domain name;
- Clearinghouse systems store a ``mailboxes`` property
  ``<host>|<box>`` on the user's three-part name.
"""

from __future__ import annotations

import typing

from repro.bind import BindResolver, RRType
from repro.clearinghouse import ClearinghouseClient, Credentials
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport


def _parse_kv(text: str) -> typing.Dict[str, str]:
    out = {}
    for part in text.split(";"):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed mail record part {part!r}")
        out[key] = value
    return out


class BindMailboxNSM(NamingSemanticsManager):
    """Mailbox location from TXT records in BIND."""

    query_class = "MailboxLocation"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        bind_server: Endpoint,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.resolver = BindResolver(
            host,
            transport,
            bind_server,
            marshalling="handcoded",
            calibration=calibration,
            name=f"nsm-mail@{host.name}",
        )

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        records = yield from self.resolver.lookup(
            self.translate_name(hns_name), RRType.TXT
        )
        fields = _parse_kv(records[0].text)
        value = {"mail_host": fields["mailhost"], "mailbox": fields["mailbox"]}
        return value, min(r.ttl for r in records)


class ClearinghouseMailboxNSM(NamingSemanticsManager):
    """Mailbox location from the Clearinghouse ``mailboxes`` property."""

    query_class = "MailboxLocation"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        ch_server: Endpoint,
        credentials: Credentials,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.client = ClearinghouseClient(
            host, transport, ch_server, credentials, name=f"nsm-chmail@{host.name}"
        )

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        raw = yield from self.client.retrieve(
            self.translate_name(hns_name), "mailboxes"
        )
        mail_host, sep, mailbox = raw.decode("utf-8").partition("|")
        if not sep:
            raise ValueError(f"malformed mailboxes property {raw!r}")
        value = {"mail_host": mail_host, "mailbox": mailbox}
        return value, self.calibration.meta_ttl_ms
