"""FileService NSMs: the HCS filing service's naming needs.

Maps a global file-service name to an HRPC-callable endpoint plus the
volume to mount — the HNS side of the "heterogeneous file system that
mediates access to the set of local file systems" the conclusions
mention.
"""

from __future__ import annotations

import typing

from repro.bind import BindResolver, RRType
from repro.clearinghouse import ClearinghouseClient, Credentials
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.courier_binder import CourierBinderClient
from repro.hrpc.portmapper import PortmapperClient
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host
from repro.net.transport import Transport

FILE_PROGRAM = "hcsfile"


class BindFileServiceNSM(NamingSemanticsManager):
    """File service location for UNIX/Sun systems.

    The volume descriptor lives in a TXT record
    (``server=<host>;volume=<path>``); the server's address comes from
    an A lookup and its port from the portmapper.
    """

    query_class = "FileService"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        bind_server: Endpoint,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.resolver = BindResolver(
            host,
            transport,
            bind_server,
            marshalling="handcoded",
            calibration=calibration,
            name=f"nsm-file@{host.name}",
        )
        self.portmapper = PortmapperClient(host, transport, calibration=calibration)

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        records = yield from self.resolver.lookup(
            self.translate_name(hns_name), RRType.TXT
        )
        fields = {}
        for part in records[0].text.split(";"):
            key, _, value = part.partition("=")
            fields[key] = value
        server_name = fields["server"]
        address_records = yield from self.resolver.lookup(server_name)
        address = NetworkAddress(address_records[0].address)
        port = yield from self.portmapper.get_port(address, FILE_PROGRAM)
        value = {
            "endpoint": Endpoint(address, port),
            "program": FILE_PROGRAM,
            "suite": "sunrpc",
            "volume": fields["volume"],
        }
        return value, min(r.ttl for r in records)


class ClearinghouseFileServiceNSM(NamingSemanticsManager):
    """File service location for Xerox systems (property + Courier binder)."""

    query_class = "FileService"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        ch_server: Endpoint,
        credentials: Credentials,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.client = ClearinghouseClient(
            host, transport, ch_server, credentials, name=f"nsm-chfile@{host.name}"
        )
        self.binder = CourierBinderClient(host, transport, calibration=calibration)

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        raw = yield from self.client.retrieve(
            self.translate_name(hns_name), "fileservice"
        )
        host_part, sep, volume = raw.decode("utf-8").partition("|")
        if not sep:
            raise ValueError(f"malformed fileservice property {raw!r}")
        # host_part is itself a three-part CH name; its address property
        # gives the server's network address.
        address_raw = yield from self.client.retrieve(host_part, "address")
        address = NetworkAddress(".".join(str(b) for b in address_raw))
        port = yield from self.binder.locate(address, FILE_PROGRAM)
        value = {
            "endpoint": Endpoint(address, port),
            "program": FILE_PROGRAM,
            "suite": "courier",
            "volume": volume,
        }
        return value, self.calibration.meta_ttl_ms
