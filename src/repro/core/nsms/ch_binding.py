"""HRPCBinding NSM for Clearinghouse (Xerox/XDE) systems.

Identical client interface to :class:`BindBindingNSM`; completely
different implementation: the host address comes from an authenticated
Clearinghouse retrieve, and the port from the Courier binding agent.
"""

from __future__ import annotations

import typing

from repro.clearinghouse import ClearinghouseClient, Credentials
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.courier_binder import CourierBinderClient
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host
from repro.net.transport import Transport


class ClearinghouseBindingNSM(NamingSemanticsManager):
    """Binds clients to Courier servers named through the Clearinghouse."""

    query_class = "HRPCBinding"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        ch_server: Endpoint,
        credentials: Credentials,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.client = ClearinghouseClient(
            host, transport, ch_server, credentials, name=f"nsm-chbind@{host.name}"
        )
        self.binder = CourierBinderClient(host, transport, calibration=calibration)

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        service_name = typing.cast(str, params.get("service"))
        if not service_name:
            raise ValueError("HRPCBinding query requires a 'service' parameter")
        local_name = self.translate_name(hns_name)
        address_text = yield from self.client.lookup_address(local_name)
        address = NetworkAddress(address_text)
        port = yield from self.binder.locate(address, service_name)
        value = {
            "endpoint": Endpoint(address, port),
            "program": service_name,
            "suite": "courier",
            "system_type": "xde",
        }
        return value, self.calibration.meta_ttl_ms
