"""HostAddress NSM for Clearinghouse systems.

Same client interface as the BIND variant, entirely different local
protocol: three-part names, Courier, per-access authentication, disk.
"""

from __future__ import annotations

import typing

from repro.clearinghouse import CHName, ClearinghouseClient, Credentials
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport


class ClearinghouseHostAddressNSM(NamingSemanticsManager):
    """Maps a Clearinghouse host name to its network address."""

    query_class = "HostAddress"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        ch_server: Endpoint,
        credentials: Credentials,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.translate_cost_ms = 0.0
        self.standardize_cost_ms = 0.0
        self.cache_hit_extra_ms = 0.0
        self.client = ClearinghouseClient(
            host, transport, ch_server, credentials, name=f"nsm-ch@{host.name}"
        )

    def translate_name(self, hns_name: HNSName) -> str:
        """Individual names are the local three-part CH names."""
        CHName.parse(hns_name.name)  # validate the local syntax
        return hns_name.name

    def _cache_key(self, hns_name: HNSName, params) -> object:
        return ("hostaddr", self.translate_name(hns_name))

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        local_name = self.translate_name(hns_name)
        address = yield from self.client.lookup_address(local_name)
        return {"address": address}, self.calibration.meta_ttl_ms
