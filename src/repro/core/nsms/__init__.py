"""Concrete NSMs for the two prototype name services.

"The binding NSMs for both the BIND and Clearinghouse subsystems are
about 230 lines each."  Ours are in the same spirit: one module per
(query class, name service) pair, each encapsulating the local naming
syntax, the access protocol, and the native binding protocol.
"""

from repro.core.nsms.bind_binding import BindBindingNSM
from repro.core.nsms.ch_binding import ClearinghouseBindingNSM
from repro.core.nsms.bind_hostaddr import BindHostAddressNSM
from repro.core.nsms.ch_hostaddr import ClearinghouseHostAddressNSM
from repro.core.nsms.mail import BindMailboxNSM, ClearinghouseMailboxNSM
from repro.core.nsms.file_service import BindFileServiceNSM, ClearinghouseFileServiceNSM
from repro.core.nsms.yp import YpBindingNSM, YpHostAddressNSM, YpMailboxNSM

__all__ = [
    "BindBindingNSM",
    "BindFileServiceNSM",
    "BindHostAddressNSM",
    "BindMailboxNSM",
    "ClearinghouseBindingNSM",
    "ClearinghouseFileServiceNSM",
    "ClearinghouseHostAddressNSM",
    "ClearinghouseMailboxNSM",
    "YpBindingNSM",
    "YpHostAddressNSM",
    "YpMailboxNSM",
]
