"""HRPCBinding NSM for BIND (UNIX/Sun) systems.

"The NSM looks up the local name ('fiji.cs.washington.edu') in the name
service, and then determines the needed port number for the
ServiceName, using whatever binding protocol is appropriate for that
particular system" — here the Sun portmapper protocol.
"""

from __future__ import annotations

import typing

from repro.bind import BindResolver
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.portmapper import PortmapperClient
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host
from repro.net.transport import Transport


class BindBindingNSM(NamingSemanticsManager):
    """Binds clients to Sun RPC servers named through BIND."""

    query_class = "HRPCBinding"

    def __init__(
        self,
        host: Host,
        name_service: str,
        transport: Transport,
        bind_server: Endpoint,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        **kwargs: object,
    ):
        super().__init__(
            host, name_service, calibration=calibration, cached=cached, **kwargs  # type: ignore[arg-type]
        )
        self.resolver = BindResolver(
            host,
            transport,
            bind_server,
            marshalling="handcoded",
            calibration=calibration,
            name=f"nsm-binding@{host.name}",
        )
        self.portmapper = PortmapperClient(host, transport, calibration=calibration)

    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        service_name = typing.cast(str, params.get("service"))
        if not service_name:
            raise ValueError("HRPCBinding query requires a 'service' parameter")
        # 1. Local name service lookup: host name -> address.
        local_name = self.translate_name(hns_name)
        records = yield from self.resolver.lookup(local_name)
        address = NetworkAddress(records[0].address)
        # 2. Native binding protocol: the Sun portmapper exchanges.
        port = yield from self.portmapper.get_port(address, service_name)
        value = {
            "endpoint": Endpoint(address, port),
            "program": service_name,
            "suite": "sunrpc",
            "system_type": "sun",
        }
        return value, min(r.ttl for r in records)
