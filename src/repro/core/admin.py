"""HNS administration: integrating a new system type.

"adding a new system type simply requires building NSMs for those
queries to be supported and registering their existence with the HNS."
This module is that registration step: it writes the meta-naming
records (via dynamic update to the modified BIND) that make a name
service, its contexts, and its NSMs visible to every HNS instance at
once.
"""

from __future__ import annotations

import typing

from repro.core.metastore import MetaStore, NameServiceRecord, NsmRecord


class HnsAdministrator:
    """Registration convenience layer over a :class:`MetaStore`."""

    def __init__(self, metastore: MetaStore):
        self.metastore = metastore

    def register_name_service(
        self,
        name: str,
        kind: str,
        host_name: str,
        port: int,
    ) -> typing.Generator:
        """Introduce an underlying name service to the global service."""
        if kind not in ("bind", "clearinghouse", "adhoc"):
            raise ValueError(f"unknown name service kind {kind!r}")
        yield from self.metastore.register_name_service(
            NameServiceRecord(name=name, kind=kind, host_name=host_name, port=port)
        )

    def register_context(self, context: str, name_service: str) -> typing.Generator:
        """Map a context onto (part of) one name service's name space.

        The one-context-one-service rule is what guarantees no naming
        conflicts when previously separate systems are combined.
        """
        yield from self.metastore.register_context(context, name_service)

    def register_nsm(
        self,
        nsm_name: str,
        query_class: str,
        name_service: str,
        host_name: str,
        host_context: str,
        program: str,
        suite: str,
        port: int,
        host_address: typing.Optional[str] = None,
    ) -> typing.Generator:
        """Register one NSM: its record, its query mapping, and (for
        remotely callable NSMs) its host's address record.

        "registering an NSM with the HNS extends the functionality of
        all machines at once."
        """
        record = NsmRecord(
            name=nsm_name,
            query_class=query_class,
            name_service=name_service,
            host_name=host_name,
            host_context=host_context,
            program=program,
            suite=suite,
            port=port,
        )
        yield from self.metastore.register_nsm(record)
        yield from self.metastore.register_query_mapping(
            name_service, query_class, nsm_name
        )
        if host_address is not None:
            yield from self.metastore.register_nsm_host_address(
                host_name, host_address
            )

    def unregister_nsm(
        self, nsm_name: str, query_class: str, name_service: str
    ) -> typing.Generator:
        from repro.core.metastore import META_ORIGIN

        yield from self.metastore.unregister(f"{nsm_name}.nsm.{META_ORIGIN}")
        yield from self.metastore.unregister(
            f"{query_class}.{name_service}.q.{META_ORIGIN}"
        )
