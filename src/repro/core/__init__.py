"""The HCS Name Service (HNS): the paper's primary contribution.

The HNS is a *direct access* federated name service: it manages a
global name space whose data stays in the underlying heterogeneous name
services (BIND, Clearinghouse, ...), reached through per-(query class,
name service) agents called Naming Semantics Managers (NSMs).

Public surface:

- :class:`~repro.core.names.HNSName` — (context, individual name);
- :class:`~repro.core.hns.HNS` — the library implementing ``FindNSM``
  with its specialized meta-naming cache;
- :class:`~repro.core.nsm.NamingSemanticsManager` and the concrete NSMs
  in :mod:`repro.core.nsms`;
- :class:`~repro.core.admin.HnsAdministrator` — registering name
  services, contexts, and NSMs (dynamic updates to the modified BIND);
- :class:`~repro.core.import_call.HrpcImporter` — the HRPC ``Import``
  application built on the HNS;
- :mod:`~repro.core.colocation` — the five client/HNS/NSM placement
  arrangements of Table 3.1;
- :mod:`~repro.core.model` — equation (1), the caching-vs-colocation
  tradeoff.
"""

from repro.core.names import HNSName
from repro.core.queryclass import (
    QUERY_CLASSES,
    QueryClass,
    query_class_named,
)
from repro.core.errors import (
    ContextNotFound,
    HnsError,
    NsmNotFound,
    NsmUnavailable,
    QueryClassUnsupported,
)
from repro.core.metastore import MetaStore, NsmRecord, NameServiceRecord
from repro.core.nsm import (
    LocalNsmBinding,
    NamingSemanticsManager,
    NsmResult,
    NsmStub,
    serve_nsm,
)
from repro.core.hns import (
    HNS,
    FindNsmCall,
    HnsService,
    NsmBindingLike,
    serve_hns,
)
from repro.core.admin import HnsAdministrator
from repro.core.import_call import (
    HrpcImporter,
    ImportCall,
    LocalFinder,
    RemoteFinder,
    serve_agent,
)
from repro.core.colocation import Arrangement, ColocationStack
from repro.core.model import ColocationModel

__all__ = [
    "Arrangement",
    "ColocationModel",
    "ColocationStack",
    "ContextNotFound",
    "FindNsmCall",
    "HNS",
    "HNSName",
    "HnsAdministrator",
    "HnsError",
    "HnsService",
    "HrpcImporter",
    "ImportCall",
    "LocalFinder",
    "LocalNsmBinding",
    "MetaStore",
    "NameServiceRecord",
    "NamingSemanticsManager",
    "NsmBindingLike",
    "NsmNotFound",
    "NsmRecord",
    "NsmResult",
    "NsmStub",
    "NsmUnavailable",
    "RemoteFinder",
    "serve_agent",
    "QUERY_CLASSES",
    "QueryClass",
    "QueryClassUnsupported",
    "query_class_named",
    "serve_hns",
    "serve_nsm",
]
