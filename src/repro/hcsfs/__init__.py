"""The HCS heterogeneous file system, built on the HNS.

The conclusions describe "a heterogeneous file system that mediates
access to the set of local file systems present in the environment" as
the other application of the HNS/NSM structure; the related-work
section contrasts it with Jasmine's plug-ins (local procedures, a
location database per file) — here location lives in the *name
services* and access goes through FileService NSMs.

Pieces:

- :class:`~repro.hcsfs.fileserver.FileServer` — the ``hcsfile`` HRPC
  program exporting volumes from a host's disk;
- :class:`~repro.hcsfs.client.HcsFileSystem` — a Fetch/Store interface
  over global names: the FileService NSM maps an HNS name to (server
  binding, volume), the file system caches that binding, and reads and
  writes flow over HRPC.
"""

from repro.hcsfs.fileserver import FILE_PROGRAM, FileServer, FileServerError
from repro.hcsfs.client import HcsFileSystem

__all__ = ["FILE_PROGRAM", "FileServer", "FileServerError", "HcsFileSystem"]
