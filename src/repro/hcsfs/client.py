"""The heterogeneous file system client: Fetch/Store over global names."""

from __future__ import annotations

import typing

from repro.core.hns import HNS
from repro.core.import_call import result_to_binding
from repro.core.names import HNSName
from repro.core.nsm import NsmStub
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.runtime import HrpcRuntime
from repro.net.host import Host


class HcsFileSystem:
    """Fetch/Store against globally named volumes.

    A *file name* here is an HNS name for the volume plus a path inside
    it: the FileService NSM for the volume's name service returns the
    server binding and native volume identifier.  The client holds that
    binding until told otherwise (:meth:`invalidate`) — like any HRPC
    client holding a Binding — while the NSM- and HNS-level caches
    underneath it expire on their own TTLs.
    """

    def __init__(
        self,
        host: Host,
        hns: HNS,
        nsm_stub: NsmStub,
        runtime: HrpcRuntime,
    ):
        self.host = host
        self.env = host.env
        self.hns = hns
        self.nsm_stub = nsm_stub
        self.runtime = runtime
        # volume-binding cache: HNS name -> (binding, native volume)
        self._bindings: typing.Dict[str, typing.Tuple[HRPCBinding, str]] = {}

    # ------------------------------------------------------------------
    def _locate(self, volume_name: HNSName) -> typing.Generator:
        key = str(volume_name)
        cached = self._bindings.get(key)
        if cached is not None:
            return cached
        nsm_binding = yield from self.hns.find_nsm(volume_name, "FileService")
        result = yield from self.nsm_stub.call(nsm_binding, volume_name)
        binding = result_to_binding(result)
        located = (binding, typing.cast(str, result.value["volume"]))
        self._bindings[key] = located
        return located

    def invalidate(self, volume_name: HNSName) -> None:
        """Drop the cached binding (e.g. after a location change)."""
        self._bindings.pop(str(volume_name), None)

    # ------------------------------------------------------------------
    def fetch(self, volume_name: HNSName, path: str) -> typing.Generator:
        """Read one file; returns bytes."""
        binding, volume = yield from self._locate(volume_name)
        data = yield from self.runtime.call(
            binding, "fetch", volume, path, arg_size_bytes=64 + len(path)
        )
        self.env.stats.counter("hcsfs.fetches").increment()
        return typing.cast(bytes, data)

    def store(self, volume_name: HNSName, path: str, data: bytes) -> typing.Generator:
        """Write one file; returns bytes stored."""
        binding, volume = yield from self._locate(volume_name)
        reply = yield from self.runtime.call(
            binding,
            "store",
            volume,
            path,
            data,
            arg_size_bytes=64 + len(path) + len(data),
        )
        self.env.stats.counter("hcsfs.stores").increment()
        return typing.cast(dict, reply)["stored"]

    def listdir(self, volume_name: HNSName, prefix: str = "") -> typing.Generator:
        binding, volume = yield from self._locate(volume_name)
        names = yield from self.runtime.call(
            binding, "listdir", volume, prefix, arg_size_bytes=64 + len(prefix)
        )
        return typing.cast(typing.List[str], names)

    def remove(self, volume_name: HNSName, path: str) -> typing.Generator:
        binding, volume = yield from self._locate(volume_name)
        yield from self.runtime.call(
            binding, "remove", volume, path, arg_size_bytes=64 + len(path)
        )

    def copy(
        self,
        source_volume: HNSName,
        source_path: str,
        dest_volume: HNSName,
        dest_path: str,
    ) -> typing.Generator:
        """Cross-system copy: fetch from one file system, store into
        another — possibly on a completely different system type."""
        data = yield from self.fetch(source_volume, source_path)
        stored = yield from self.store(dest_volume, dest_path, data)
        return stored
