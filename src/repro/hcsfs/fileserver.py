"""File servers: the ``hcsfile`` HRPC program."""

from __future__ import annotations

import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.server import HrpcServer, RpcReply
from repro.net.host import Host

FILE_PROGRAM = "hcsfile"
FILE_PORT = 9600


class FileServerError(Exception):
    """Unknown volume or path."""


class FileServer:
    """Exports one or more volumes (path -> bytes) from a host.

    All data lives "on disk": fetches and stores charge the host disk
    proportionally to the file size.
    """

    def __init__(
        self,
        host: Host,
        volumes: typing.Sequence[str] = (),
        calibration: Calibration = DEFAULT_CALIBRATION,
        port: int = FILE_PORT,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self._volumes: typing.Dict[str, typing.Dict[str, bytes]] = {
            v: {} for v in volumes
        }
        self.server = HrpcServer(host, name=f"file@{host.name}")
        program = self.server.program(FILE_PROGRAM)
        program.procedure("fetch", self._fetch)
        program.procedure("store", self._store)
        program.procedure("listdir", self._listdir)
        program.procedure("remove", self._remove)
        self.endpoint = self.server.listen(port)

    # ------------------------------------------------------------------
    def create_volume(self, volume: str) -> None:
        if not volume:
            raise ValueError("volume needs a name")
        self._volumes.setdefault(volume, {})

    def _volume(self, volume: str) -> typing.Dict[str, bytes]:
        files = self._volumes.get(volume)
        if files is None:
            raise FileServerError(f"no volume {volume!r} on {self.host.name}")
        return files

    def put_direct(self, volume: str, path: str, data: bytes) -> None:
        """Local (no-cost) population for scenario setup."""
        self._volume(volume)[path] = data

    def files_in(self, volume: str) -> typing.Dict[str, bytes]:
        return dict(self._volume(volume))

    # ------------------------------------------------------------------
    # HRPC procedures
    # ------------------------------------------------------------------
    def _fetch(self, ctx, volume: str, path: str):
        files = self._volume(volume)
        if path not in files:
            raise FileServerError(f"{volume}:{path} not found")
        data = files[path]
        yield from self.host.disk.read(len(data))
        self.env.stats.counter(f"hcsfs.{self.host.name}.fetches").increment()
        return RpcReply(data, result_size_bytes=len(data) + 32)

    def _store(self, ctx, volume: str, path: str, data: bytes):
        if not isinstance(data, (bytes, bytearray)):
            raise FileServerError("store requires bytes")
        files = self._volume(volume)
        yield from self.host.disk.write(len(data))
        files[path] = bytes(data)
        self.env.stats.counter(f"hcsfs.{self.host.name}.stores").increment()
        return RpcReply({"stored": len(data)}, result_size_bytes=32)

    def _listdir(self, ctx, volume: str, prefix: str = ""):
        files = self._volume(volume)
        yield from self.host.disk.read(512)
        names = sorted(p for p in files if p.startswith(prefix))
        return RpcReply(names, result_size_bytes=16 * max(1, len(names)))

    def _remove(self, ctx, volume: str, path: str):
        files = self._volume(volume)
        if path not in files:
            raise FileServerError(f"{volume}:{path} not found")
        yield from self.host.disk.write(64)
        del files[path]
        return RpcReply({"removed": True}, result_size_bytes=16)
