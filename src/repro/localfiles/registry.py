"""The replicated binding file and its replication machinery."""

from __future__ import annotations

import dataclasses
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.host import Host
from repro.net.internet import Internetwork
from repro.net.transport import Transport


@dataclasses.dataclass(frozen=True)
class BindingFileEntry:
    """One line of the binding file: service @ host -> endpoint info."""

    service: str
    host_name: str
    address: str
    port: int
    suite: str = "sunrpc"

    def line(self) -> str:
        return f"{self.service}\t{self.host_name}\t{self.address}\t{self.port}\t{self.suite}"

    @property
    def size_bytes(self) -> int:
        return len(self.line()) + 1


class LocalBindingFile:
    """One host's replica of the binding file."""

    def __init__(
        self,
        host: Host,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self._entries: typing.Dict[typing.Tuple[str, str], BindingFileEntry] = {}
        self.version = 0

    # -- direct (no-cost) mutation, used by the replicator -----------------
    def install(self, entry: BindingFileEntry) -> None:
        self._entries[(entry.service, entry.host_name)] = entry
        self.version += 1

    def withdraw(self, service: str, host_name: str) -> bool:
        removed = self._entries.pop((service, host_name), None) is not None
        if removed:
            self.version += 1
        return removed

    @property
    def size_bytes(self) -> int:
        return sum(e.size_bytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # -- costed read --------------------------------------------------------
    def lookup(self, service: str, host_name: str) -> typing.Generator:
        """Read the file from disk, parse it, find the entry.

        Raises KeyError if absent (discovered only after the full scan,
        as with a real flat file).
        """
        cal = self.calibration
        yield from self.host.disk.read(max(self.size_bytes, 512))
        yield from self.host.cpu.compute(
            cal.localfile_parse_ms + 0.02 * len(self._entries)
        )
        entry = self._entries.get((service, host_name))
        if entry is None:
            raise KeyError(f"{service}@{host_name} not in local binding file")
        return entry


class Replicator:
    """Pushes binding-file updates to every replica in the internetwork.

    This is the reregistration cost the direct-access design avoids:
    every new or moved service must be written to every machine, and the
    cost "is one that continues without end".
    """

    def __init__(
        self,
        internet: Internetwork,
        transport: Transport,
        files: typing.Sequence[LocalBindingFile],
    ):
        self.internet = internet
        self.env = internet.env
        self.transport = transport
        self.files = list(files)

    def file_on(self, host: Host) -> typing.Optional[LocalBindingFile]:
        for file in self.files:
            if file.host is host:
                return file
        return None

    def publish(self, origin: Host, entry: BindingFileEntry) -> typing.Generator:
        """Install ``entry`` on every replica; returns replicas updated.

        Each remote replica costs a network push plus a local file
        rewrite (disk write).
        """
        updated = 0
        for file in self.files:
            if file.host is origin:
                file.install(entry)
                updated += 1
                continue
            if not file.host.is_up:
                continue  # stale replica: the consistency problem, live
            delay = self.internet.path_delay(
                origin.address, file.host.address, entry.size_bytes
            )
            yield self.env.timeout(delay)
            yield from file.host.disk.write(max(file.size_bytes, 512))
            file.install(entry)
            updated += 1
        self.env.stats.counter("localfiles.publishes").increment()
        return updated
