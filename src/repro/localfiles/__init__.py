"""Replicated local files: the interim binding substrate.

"The interim HRPC binding mechanism, used prior to the construction of
the HNS prototype, was based on information reregistered in replicated
local files.  Binding using this scheme took 200 msec."

Every host keeps a copy of one flat binding file; reads hit the local
disk and parse the whole file; updates must be pushed to every replica
— the unending reregistration cost the HNS exists to avoid.
"""

from repro.localfiles.registry import BindingFileEntry, LocalBindingFile, Replicator

__all__ = ["BindingFileEntry", "LocalBindingFile", "Replicator"]
