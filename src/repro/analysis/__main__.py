"""``python -m repro.analysis`` — the hnslint command line.

Exit status 0 means every invariant held: no unsuppressed findings, no
parse errors, (with ``--determinism``) identical same-seed digests for
every checked scenario, and (with ``--check-baseline``) no stale
baseline suppressions.  Anything else exits 1, which is what the CI
``lint`` and ``determinism`` jobs key off.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.analysis.baseline import BASELINE_FILENAME, Baseline
from repro.analysis.core import LintResult, default_rules, lint_paths
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    """The hnslint argument parser (exposed for the CLI passthrough)."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "hnslint: repo-specific static analysis and simulation "
            "determinism checks"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro unless "
        "--determinism is the only check requested)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json is stable and diffable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{BASELINE_FILENAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if any baseline suppression matched no finding "
        "(stale entries must be pruned, not accumulated)",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="build the may-yield call graph and enable the "
        "interprocedural race rules (SIM004, SIM005)",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="double-run registered scenarios and diff trace digests",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict --determinism to NAME (repeatable)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --determinism runs"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its rationale and exit",
    )
    return parser


def run(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Lint and/or determinism-check; return the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        from repro.analysis.atomicity import interprocedural_rules

        for rule in default_rules() + interprocedural_rules():
            print(f"{rule.code} ({rule.name})")
            print(f"    {rule.rationale}")
        return 0

    lint_requested = bool(args.paths) or not args.determinism
    paths = list(args.paths)
    if lint_requested and not paths:
        paths = ["src/repro"]

    result = LintResult(findings=[])
    if lint_requested:
        baseline = None
        if not args.no_baseline:
            if args.baseline is not None:
                baseline = Baseline.load(args.baseline)
            else:
                baseline = Baseline.discover()
        result = lint_paths(
            paths, baseline=baseline, interprocedural=args.interprocedural
        )

    determinism = None
    if args.determinism:
        from repro.analysis.determinism import check_all

        determinism = check_all(names=args.scenario, seed=args.seed)

    if args.format == "json":
        print(render_json(result, determinism))
    else:
        print(render_text(result, determinism))

    ok = result.ok and (determinism is None or all(c.ok for c in determinism))
    if args.check_baseline and result.stale_suppressions:
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run())
