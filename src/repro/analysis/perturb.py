"""Schedule perturbation: controlled tie-break shuffling for the racer.

The kernel orders events by ``(time, eid)``; eids are handed out at
schedule time, so same-timestamp events run in FIFO order.  Most code
never depends on that tie-break — but code that *does* is exactly the
code one latency-constant tweak away from a trajectory change.  The
racer flips :data:`repro.sim.kernel.DEFAULT_PERTURB_SEED` so every
``Environment`` built inside the context draws a
:class:`~repro.sim.wheel.PerturbedHeapQueue`, which permutes the order
of same-timestamp cohorts deterministically per seed.  Event *times*
are untouched: a perturbed run is a legal schedule the kernel could
have produced under a different arrival order, not a different
workload.

The helpers here mirror how the determinism checker flips
:data:`repro.sim.kernel.DEFAULT_KERNEL_IMPL` — module-global defaults
swapped around a builder call and restored in a ``finally``.
"""

from __future__ import annotations

import contextlib
import typing

from repro.sim import kernel as _kernel
from repro.sim.wheel import _mix64

#: splitmix64 increment — the same constant the queue salt uses, so the
#: derived-seed stream is a textbook splitmix64 sequence.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def derive_seed(base: int, index: int) -> int:
    """The ``index``-th perturbation seed derived from ``base``.

    A splitmix64 stream: distinct, uncorrelated 64-bit seeds that are
    reproducible from ``(base, index)`` alone — the racer report only
    needs to record the base seed.
    """
    return _mix64((base + (index + 1) * _GOLDEN) & _MASK64)


@contextlib.contextmanager
def perturbed(seed: typing.Optional[int]) -> typing.Iterator[None]:
    """Every ``Environment`` built inside runs schedule-perturbed.

    ``None`` restores plain FIFO tie-breaking (useful for nesting).
    """
    saved = _kernel.DEFAULT_PERTURB_SEED
    _kernel.DEFAULT_PERTURB_SEED = seed
    try:
        yield
    finally:
        _kernel.DEFAULT_PERTURB_SEED = saved


@contextlib.contextmanager
def monitored(
    factory: typing.Optional[
        typing.Callable[["_kernel.Environment"], "_kernel.KernelMonitor"]
    ],
) -> typing.Iterator[None]:
    """Every ``Environment`` built inside gets ``factory(env)`` attached
    as its kernel monitor — how the racer hands an
    :class:`~repro.analysis.sanitizer.InterleavingSanitizer` to scenario
    builders it cannot modify."""
    saved = _kernel.DEFAULT_MONITOR_FACTORY
    _kernel.DEFAULT_MONITOR_FACTORY = factory
    try:
        yield
    finally:
        _kernel.DEFAULT_MONITOR_FACTORY = saved
