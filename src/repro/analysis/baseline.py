"""The checked-in suppression baseline (``hnslint-baseline.toml``).

Intentional exceptions to a rule live in one reviewed file, each with a
one-line justification — the lint equivalent of the benchmark JSONs:
the diff of this file *is* the review surface for new exceptions.

Entries match findings structurally, not by line number, so ordinary
edits to a file do not invalidate its baseline:

.. code-block:: toml

    [[suppression]]
    rule = "SIM003"
    path = "src/repro/bind/resolver.py"
    contains = "self.cache.probe(key)"
    justification = "entry is captured by value; eviction cannot mutate it"

``path`` is a suffix match on the finding's path, ``contains`` (optional)
a substring of the flagged source line.  Parsing uses :mod:`tomllib`
where available (Python 3.11+) and falls back to a minimal reader for
the subset this file needs, so 3.9 CI runs do not need a TOML package.
"""

from __future__ import annotations

import dataclasses
import pathlib
import typing

from repro.analysis.core import Finding

try:  # Python 3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.9/3.10
    _toml = None

#: Default baseline filename, discovered in the current directory.
BASELINE_FILENAME = "hnslint-baseline.toml"


class BaselineError(ValueError):
    """Malformed baseline file."""


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One reviewed exception."""

    rule: str
    path: str
    justification: str
    contains: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        if not finding.path.replace("\\", "/").endswith(self.path):
            return False
        if self.contains and self.contains not in finding.snippet:
            return False
        return True

    def describe(self) -> str:
        parts = [self.rule, f'path="{self.path}"']
        if self.contains:
            parts.append(f'contains="{self.contains}"')
        return " ".join(parts)


class Baseline:
    """The full set of reviewed suppressions.

    Match counts are tallied per entry so a full-tree run can report
    which suppressions no longer match anything (``stale()``) — the
    ``--check-baseline`` gate that keeps the reviewed exception list
    from accreting dead weight.
    """

    def __init__(self, suppressions: typing.Sequence[Suppression] = ()):
        self.suppressions = list(suppressions)
        self.match_counts = [0] * len(self.suppressions)

    def matches(self, finding: Finding) -> bool:
        for index, suppression in enumerate(self.suppressions):
            if suppression.matches(finding):
                self.match_counts[index] += 1
                return True
        return False

    def stale(self) -> typing.List[Suppression]:
        """Entries that matched no finding since construction."""
        return [
            suppression
            for index, suppression in enumerate(self.suppressions)
            if not self.match_counts[index]
        ]

    def __len__(self) -> int:
        return len(self.suppressions)

    @classmethod
    def load(cls, path: typing.Union[str, pathlib.Path]) -> "Baseline":
        text = pathlib.Path(path).read_text(encoding="utf-8")
        return cls.loads(text)

    @classmethod
    def loads(cls, text: str) -> "Baseline":
        if _toml is not None:
            data = _toml.loads(text)
        else:
            data = _parse_toml_subset(text)
        raw = data.get("suppression", [])
        if not isinstance(raw, list):
            raise BaselineError("[[suppression]] must be an array of tables")
        suppressions = []
        for index, entry in enumerate(raw):
            try:
                suppression = Suppression(
                    rule=str(entry["rule"]),
                    path=str(entry["path"]),
                    justification=str(entry["justification"]),
                    contains=str(entry.get("contains", "")),
                )
            except KeyError as err:
                raise BaselineError(
                    f"suppression #{index + 1} is missing key {err.args[0]!r} "
                    "(rule, path, and justification are required)"
                ) from None
            if not suppression.justification.strip():
                raise BaselineError(
                    f"suppression #{index + 1} has an empty justification"
                )
            suppressions.append(suppression)
        return cls(suppressions)

    @classmethod
    def discover(
        cls, start: typing.Union[str, pathlib.Path] = "."
    ) -> typing.Optional["Baseline"]:
        """Load ``hnslint-baseline.toml`` from ``start`` if present."""
        candidate = pathlib.Path(start) / BASELINE_FILENAME
        if candidate.is_file():
            return cls.load(candidate)
        return None


def _parse_toml_subset(text: str) -> typing.Dict[str, typing.List[dict]]:
    """Parse the ``[[suppression]]`` / ``key = "value"`` subset of TOML.

    Only what the baseline format uses: arrays of tables and
    basic-string values.  Anything else is a :class:`BaselineError`.
    """
    tables: typing.Dict[str, typing.List[dict]] = {}
    current: typing.Optional[dict] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            tables.setdefault(name, []).append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            comment = _find_comment(value)
            if comment != -1:
                value = value[:comment].rstrip()
            if not (len(value) >= 2 and value[0] == '"' and value[-1] == '"'):
                raise BaselineError(
                    f"unsupported value for {key!r}: {value!r} "
                    "(only basic strings are supported)"
                )
            current[key] = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            continue
        raise BaselineError(f"unsupported baseline syntax: {line!r}")
    return tables


def _find_comment(value: str) -> int:
    """Index of a ``#`` comment outside the quoted string, or -1."""
    in_string = False
    escaped = False
    for index, char in enumerate(value):
        if escaped:
            escaped = False
            continue
        if char == "\\":
            escaped = True
        elif char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return index
    return -1
