"""Name-service rules: HNS001, HNS002, HNS003, HNS004.

Where the SIM rules guard the kernel, these guard the conventions the
name-service layers above it rely on: TTL-tagged cache entries (the
paper's own invalidation mechanism), IDL-registered wire messages (so
message sizes are grounded in real bytes), and the dotted stats
namespace the benchmark harness reads.
"""

from __future__ import annotations

import ast
import typing

from repro.analysis.core import (
    Finding,
    ModuleSource,
    Rule,
    attribute_chain,
)


class Hns001CacheInsertTtl(Rule):
    """Every cache insert must carry a positive TTL."""

    code = "HNS001"
    name = "cache-insert-ttl"
    rationale = (
        '"Cached data is tagged with a time-to-live field for cache '
        'invalidation" — an insert without a TTL (or with a literal '
        "non-positive one) either never expires or silently caches "
        "nothing; both corrupt hit-rate measurements."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "insert"):
                continue
            receiver = attribute_chain(func.value)
            if receiver is None or not receiver[-1].lower().endswith("cache"):
                continue
            ttl = self._ttl_argument(node)
            if ttl is None:
                yield module.finding(
                    self, node,
                    "cache insert without a TTL argument; pass ttl_ms "
                    "(CacheEntry.expires_at drives invalidation)",
                )
                continue
            if (
                isinstance(ttl, ast.Constant)
                and isinstance(ttl.value, (int, float))
                and not isinstance(ttl.value, bool)
                and ttl.value <= 0
            ):
                yield module.finding(
                    self, node,
                    f"cache insert with literal TTL {ttl.value!r}; "
                    "non-positive TTLs cache nothing — derive the TTL "
                    "from the record or calibration",
                )

    @staticmethod
    def _ttl_argument(node: ast.Call) -> typing.Optional[ast.AST]:
        for keyword in node.keywords:
            if keyword.arg == "ttl_ms":
                return keyword.value
            if keyword.arg is None:  # **kwargs: cannot analyse
                return keyword.value
        # ResolverCache.insert(key, payload, record_count, ttl_ms)
        if len(node.args) >= 4:
            return node.args[3]
        return None


#: Wire-message dataclass names that must carry an IDL registration.
#: Query/Answer are the broadcast locator pair; Beacon is the ad-hoc
#: discovery tier's presence announcement.
_WIRE_SUFFIXES = ("Request", "Response", "Question", "Delta", "Query", "Answer", "Beacon")


class Hns002WireMessageIdl(Rule):
    """Wire-message dataclasses must be registered with the serializer."""

    code = "HNS002"
    name = "wire-message-idl"
    rationale = (
        "Messages travel the simulated transports as Python objects but "
        "their sizes (and thus wire and marshalling costs) come from the "
        "IDL description; a message dataclass without an idl_type ships "
        "with a guessed size and skews every latency number."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        if not module.path.replace("\\", "/").endswith("messages.py"):
            return
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(_WIRE_SUFFIXES):
                continue
            if not any(self._is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            if not self._defines_idl_type(node):
                yield module.finding(
                    self, node,
                    f"wire-message dataclass {node.name!r} has no idl_type; "
                    "register a StructType so marshalled sizes are real",
                )

    @staticmethod
    def _is_dataclass_decorator(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            node = node.func
        chain = attribute_chain(node)
        return bool(chain) and chain[-1] == "dataclass"

    @staticmethod
    def _defines_idl_type(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "idl_type":
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "idl_type"
                ):
                    return True
        return False


#: Field types wire-message dataclasses may carry: Python primitives
#: the serializer maps directly, plus the IDL-described record types.
#: A new field type means a new StructType (and an entry here) —
#: deliberately, in review — or the message ships with a guessed size
#: and every latency number drifts (HNS004).
WIRE_FIELD_TYPES = frozenset(
    {
        "bool",
        "bytes",
        "float",
        "int",
        "str",
        # IDL-described record types that travel inside messages.
        "DomainName",
        "RRType",
        "ResourceRecord",
        "ZoneDelta",
    }
)

#: Generic containers allowed around registered field types.
_WIRE_CONTAINERS = frozenset(
    {
        "Dict",
        "FrozenSet",
        "List",
        "Optional",
        "Sequence",
        "Set",
        "Tuple",
        "dict",
        "frozenset",
        "list",
        "set",
        "tuple",
    }
)


class Hns004WireMessageFieldTypes(Rule):
    """Wire-message fields carry only registered serializable types."""

    code = "HNS004"
    name = "wire-message-field-types"
    rationale = (
        "The IDL sizes a message from its field types; a field whose "
        "type the serializer has no StructType for (an arbitrary "
        "object, a datetime, a server-side class) marshals with a "
        "guessed size — schema drift that silently skews every wire "
        "and marshalling cost as the update/NOTIFY message set grows."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        if not module.path.replace("\\", "/").endswith("messages.py"):
            return
        wire_classes = {
            node.name
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and self._is_wire_class(node)
        }
        for node in module.tree.body:
            if not (
                isinstance(node, ast.ClassDef) and node.name in wire_classes
            ):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                target = stmt.target
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "idl_type" or target.id.startswith("_"):
                    continue
                if self._is_classvar(stmt.annotation):
                    continue
                if not self._annotation_ok(stmt.annotation, wire_classes):
                    yield module.finding(
                        self,
                        stmt,
                        f"wire-message field {node.name}.{target.id} has "
                        "an unregistered type; wire fields may only "
                        "carry serializable primitives, IDL record "
                        "types (WIRE_FIELD_TYPES), other wire messages, "
                        "or containers of those — register a StructType "
                        "or restructure the field",
                        subject=target.id,
                    )

    @staticmethod
    def _is_wire_class(node: ast.ClassDef) -> bool:
        if not any(
            Hns002WireMessageIdl._is_dataclass_decorator(d)
            for d in node.decorator_list
        ):
            return False
        return node.name.endswith(
            _WIRE_SUFFIXES
        ) or Hns002WireMessageIdl._defines_idl_type(node)

    @staticmethod
    def _is_classvar(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        chain = attribute_chain(annotation)
        return bool(chain) and chain[-1] == "ClassVar"

    @classmethod
    def _annotation_ok(
        cls, annotation: ast.AST, wire_classes: typing.Set[str]
    ) -> bool:
        if isinstance(annotation, ast.Constant):
            value = annotation.value
            if value is None or value is Ellipsis:
                return True  # Tuple[X, ...] / Optional's None arm
            if isinstance(value, str):
                # A string annotation: parse and recurse, so quoted
                # containers and unions get the same treatment as
                # unquoted ones.
                try:
                    parsed = ast.parse(value.strip(), mode="eval").body
                except SyntaxError:
                    return False
                return cls._annotation_ok(parsed, wire_classes)
            return False
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            chain = attribute_chain(annotation)
            if not chain:
                return False
            name = chain[-1]
            if name == "None":
                return True
            return name in WIRE_FIELD_TYPES or name in wire_classes
        if isinstance(annotation, ast.Subscript):
            base = attribute_chain(annotation.value)
            if not base or base[-1] not in _WIRE_CONTAINERS:
                return False
            inner = annotation.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            return all(
                cls._annotation_ok(element, wire_classes)
                for element in elements
            )
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            # X | Y unions (3.10+ syntax).
            return cls._annotation_ok(
                annotation.left, wire_classes
            ) and cls._annotation_ok(annotation.right, wire_classes)
        return False


#: Subsystems allowed as the first segment of a stats name.  Growing a
#: new subsystem means growing this registry — deliberately, in review.
STAT_PREFIXES = frozenset(
    {
        "baseline",
        # "bind" also hosts the write-pipeline families bind.update.*
        # (batches, leases, NOTIFY fan-out) and per-server bind.<name>.*
        "bind",
        "broadcast",
        "cache",
        "ch",
        # "discovery" hosts the ad-hoc beacon tier: beacons, passive-view
        # observations, watchdog/TTL evictions (discovery.evict.<reason>),
        # suspect probes, and the DiscoveryNsm's view/requery families
        "discovery",
        # "harness" hosts the ablation-grid runner families
        # harness.<grid>.* (e.g. harness.fast_path.finds,
        # harness.toy.ticks)
        "harness",
        "hcsfs",
        "hns",
        "hrpc",
        "localfiles",
        "mail",
        "net",
        "obs",
        # "nsm" also hosts nsm.lease.* (client-side lease renewal)
        "nsm",
        "portmapper",
        "rexec",
        # "sim" hosts the kernel's own families: sim.kernel.* (queue
        # back-end counters published via publish_kernel_stats()) and
        # sim.mclient.* (the million-client scenario)
        "sim",
        "yp",
    }
)

#: Per-server stat families: ``<prefix>.<server name>.<counter>``.
#: The segment at the given index (0-based, after the prefix check) is
#: a *server name*, which follows host-naming rules — hyphens allowed
#: ("meta-bind") — not the lowercase-dotted stat convention.  Only the
#: named segment is exempt; every other segment stays [a-z0-9_].
STAT_SERVER_NAME_SEGMENTS: typing.Dict[str, int] = {
    "bind": 1,
}

_SEGMENT_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")
_SERVER_SEGMENT_OK = _SEGMENT_OK | {"-"}
_STAT_METHODS = {"counter", "timer", "histogram"}


class Hns003StatNameConvention(Rule):
    """Stats names follow the dotted ``<subsystem>.<...>`` convention."""

    code = "HNS003"
    name = "stat-name-convention"
    rationale = (
        "Benchmarks and the comparison harness read counters by name "
        "(cache.<name>.<counter>, bind.replica.<endpoint>.<counter>); a "
        "name outside the dotted lowercase namespace is invisible to "
        "every existing report and diff."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _STAT_METHODS
            ):
                continue
            receiver = attribute_chain(func.value)
            if receiver is None or receiver[-1] != "stats":
                continue
            if not node.args:
                continue
            pattern = self._name_pattern(node.args[0])
            if pattern is None:
                continue  # dynamic name; not statically checkable
            yield from self._check_name(module, node, pattern)

    def _check_name(
        self,
        module: ModuleSource,
        node: ast.Call,
        pattern: str,
    ) -> typing.Iterator[Finding]:
        segments = pattern.split(".")
        if len(segments) < 2:
            yield module.finding(
                self, node,
                f"stat name {pattern!r} has no subsystem prefix; use "
                "<subsystem>.<...> dotted segments",
            )
            return
        head = segments[0]
        if "*" in head or head not in STAT_PREFIXES:
            yield module.finding(
                self, node,
                f"stat name {pattern!r} starts with unknown subsystem "
                f"{head!r}; known prefixes: "
                f"{', '.join(sorted(STAT_PREFIXES))}",
            )
            return
        server_segment = STAT_SERVER_NAME_SEGMENTS.get(head, -1)
        for index, segment in enumerate(segments):
            allowed = (
                _SERVER_SEGMENT_OK if index == server_segment else _SEGMENT_OK
            )
            literal = segment.replace("*", "")
            if segment != "*" and (
                not segment or not set(literal) <= allowed
            ):
                yield module.finding(
                    self, node,
                    f"stat name {pattern!r} segment {segment!r} is not "
                    "lowercase [a-z0-9_]; mixed-case names split the "
                    "namespace",
                )
                return

    @staticmethod
    def _name_pattern(arg: ast.AST) -> typing.Optional[str]:
        """A checkable pattern for the name argument.

        Literal strings pass through; f-string interpolations become
        ``*`` wildcards; anything else (a variable) is unanalysable.
        """
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr):
            parts: typing.List[str] = []
            for piece in arg.values:
                if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                    parts.append(piece.value)
                else:
                    parts.append("*")
            return "".join(parts)
        return None


HNS_RULES: typing.Tuple[typing.Type[Rule], ...] = (
    Hns001CacheInsertTtl,
    Hns002WireMessageIdl,
    Hns003StatNameConvention,
    Hns004WireMessageFieldTypes,
)
