"""The interprocedural generator call graph: *may-yield* summaries.

SIM003 reasons within one function body: every ``yield`` in sight is a
scheduling point.  But the PR 6 write path routinely factors the
yielding half into helpers — ``yield from self._flush(batch)`` — and
whether *that* statement can suspend the calling process depends on
what ``_flush`` does.  This module answers exactly that question for
every function and method in the linted tree:

- a function whose own body contains a bare ``yield`` (or ``await``)
  **may yield**;
- ``yield from f(...)`` may suspend iff ``f`` may yield, resolved
  through a project-wide index of definitions;
- a ``yield from`` whose target cannot be resolved (a builtin, a
  callable stored in a dispatch table, an arbitrary iterable
  expression) is **conservatively assumed to suspend**;
- the summary is the least fixpoint over the delegation edges, so
  mutually delegating generators converge, and a delegation cycle with
  no bare ``yield`` anywhere in it stays non-suspending.

Resolution is name-based and deliberately conservative, matching the
rest of hnslint: ``self.m(...)`` prefers methods named ``m`` on any
class with the enclosing class's name, then any indexed function named
``m``; a bare ``m(...)`` prefers same-module functions; when several
candidates remain (dynamic dispatch the AST cannot narrow), *any*
suspending candidate makes the call suspending.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

from repro.analysis.core import ModuleSource, _walk_own_body

FunctionNode = typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Receiver classification for a ``yield from <call>`` target.
_SELF = "self"
_BARE = "bare"
_OTHER = "other"


@dataclasses.dataclass(frozen=True)
class Delegation:
    """One ``yield from <target>(...)`` site inside a function body."""

    receiver: str  #: _SELF, _BARE, or _OTHER
    name: typing.Optional[str]  #: callee simple name; None = unanalysable
    line: int


@dataclasses.dataclass
class FunctionInfo:
    """Everything the fixpoint needs to know about one definition."""

    path: str
    cls: typing.Optional[str]
    name: str
    node: FunctionNode
    is_generator: bool
    has_bare_yield: bool
    delegations: typing.List[Delegation]
    may_yield: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


def _iter_defs(
    body: typing.Sequence[ast.stmt],
    cls: typing.Optional[str],
) -> typing.Iterator[typing.Tuple[typing.Optional[str], FunctionNode]]:
    """Every def in ``body`` with its enclosing class name (or None).

    Nested defs inside a function lose the class context — ``self`` in
    a closure is not the method's receiver unless captured, which is
    beyond a lint-grade resolver.
    """
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield cls, stmt
            yield from _iter_defs(stmt.body, None)
        elif isinstance(stmt, ast.ClassDef):
            yield from _iter_defs(stmt.body, stmt.name)
        elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
            yield from _iter_defs(stmt.body, cls)
            yield from _iter_defs(stmt.orelse, cls)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _iter_defs(stmt.body, cls)
        elif isinstance(stmt, ast.Try):
            yield from _iter_defs(stmt.body, cls)
            for handler in stmt.handlers:
                yield from _iter_defs(handler.body, cls)
            yield from _iter_defs(stmt.orelse, cls)
            yield from _iter_defs(stmt.finalbody, cls)


def _classify_delegation(value: ast.expr) -> Delegation:
    """What does ``yield from <value>`` delegate to?"""
    line = getattr(value, "lineno", 0)
    if not isinstance(value, ast.Call):
        # ``yield from some_iterable`` — could be anything, including a
        # generator object constructed elsewhere.  Unanalysable.
        return Delegation(receiver=_OTHER, name=None, line=line)
    func = value.func
    if isinstance(func, ast.Name):
        return Delegation(receiver=_BARE, name=func.id, line=line)
    if isinstance(func, ast.Attribute):
        receiver = (
            _SELF
            if isinstance(func.value, ast.Name) and func.value.id == "self"
            else _OTHER
        )
        return Delegation(receiver=receiver, name=func.attr, line=line)
    return Delegation(receiver=_OTHER, name=None, line=line)


class CallGraph:
    """The project-wide may-yield summary over a set of modules."""

    def __init__(self, modules: typing.Sequence[ModuleSource]):
        self.functions: typing.List[FunctionInfo] = []
        #: simple name -> every indexed def with that name
        self._by_name: typing.Dict[str, typing.List[FunctionInfo]] = {}
        #: (class name, method name) -> defs (class names merged across
        #: modules — conservative under name collisions)
        self._methods: typing.Dict[
            typing.Tuple[str, str], typing.List[FunctionInfo]
        ] = {}
        #: (module path, name) -> same-module defs
        self._local: typing.Dict[
            typing.Tuple[str, str], typing.List[FunctionInfo]
        ] = {}
        #: delegation sites that resolved to nothing (diagnostics)
        self.unresolved_delegations = 0
        self._edges = 0
        for module in modules:
            self._index_module(module)
        self._fixpoint()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleSource) -> None:
        for cls, node in _iter_defs(module.tree.body, None):
            has_bare = False
            delegations: typing.List[Delegation] = []
            is_gen = False
            for child in _walk_own_body(node):
                if isinstance(child, ast.Yield):
                    has_bare = True
                    is_gen = True
                elif isinstance(child, ast.Await):
                    has_bare = True
                elif isinstance(child, ast.YieldFrom):
                    is_gen = True
                    delegations.append(_classify_delegation(child.value))
            info = FunctionInfo(
                path=module.path,
                cls=cls,
                name=node.name,
                node=node,
                is_generator=is_gen,
                has_bare_yield=has_bare,
                delegations=delegations,
            )
            self.functions.append(info)
            self._by_name.setdefault(node.name, []).append(info)
            if cls is not None:
                self._methods.setdefault((cls, node.name), []).append(info)
            else:
                self._local.setdefault((module.path, node.name), []).append(info)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        path: str,
        cls: typing.Optional[str],
        delegation: Delegation,
    ) -> typing.Optional[typing.List[FunctionInfo]]:
        """Candidate definitions for a delegation, or None if unresolved.

        ``path``/``cls`` are the *calling* context: the module and
        enclosing class of the function containing the ``yield from``.
        """
        name = delegation.name
        if name is None:
            return None
        if delegation.receiver == _SELF and cls is not None:
            candidates = self._methods.get((cls, name))
            if candidates:
                return candidates
            # Inherited or mixin method: fall back to any def by name.
            return self._by_name.get(name)
        if delegation.receiver == _BARE:
            candidates = self._local.get((path, name))
            if candidates:
                return candidates
            return self._by_name.get(name)
        return self._by_name.get(name)

    # ------------------------------------------------------------------
    # The fixpoint
    # ------------------------------------------------------------------
    def _fixpoint(self) -> None:
        # Pre-resolve every delegation once; None marks conservative
        # may-yield seeds.
        resolved: typing.List[
            typing.List[typing.Optional[typing.List[FunctionInfo]]]
        ] = []
        for info in self.functions:
            row: typing.List[typing.Optional[typing.List[FunctionInfo]]] = []
            for delegation in info.delegations:
                candidates = self.resolve(info.path, info.cls, delegation)
                if candidates is None:
                    self.unresolved_delegations += 1
                else:
                    self._edges += len(candidates)
                row.append(candidates)
            resolved.append(row)
            info.may_yield = info.has_bare_yield or any(
                candidates is None for candidates in row
            )
        changed = True
        while changed:
            changed = False
            for info, row in zip(self.functions, resolved):
                if info.may_yield:
                    continue
                for candidates in row:
                    if candidates and any(c.may_yield for c in candidates):
                        info.may_yield = True
                        changed = True
                        break

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def delegation_may_suspend(
        self,
        path: str,
        cls: typing.Optional[str],
        value: ast.expr,
    ) -> bool:
        """Can ``yield from <value>`` (in module ``path``, class ``cls``)
        suspend the calling process?"""
        delegation = _classify_delegation(value)
        candidates = self.resolve(path, cls, delegation)
        if candidates is None:
            return True
        return any(c.may_yield for c in candidates)

    def lookup(
        self, path: str, cls: typing.Optional[str], name: str
    ) -> typing.Optional[FunctionInfo]:
        """The indexed definition at exactly (path, cls, name), if any."""
        for info in self._by_name.get(name, ()):
            if info.path == path and info.cls == cls:
                return info
        return None

    def summary(self) -> typing.Dict[str, int]:
        """Graph-shape counters for the machine-readable report."""
        return {
            "functions": len(self.functions),
            "generators": sum(1 for f in self.functions if f.is_generator),
            "may_yield": sum(1 for f in self.functions if f.may_yield),
            "delegation_edges": self._edges,
            "unresolved_delegations": self.unresolved_delegations,
        }


def build_callgraph(modules: typing.Sequence[ModuleSource]) -> CallGraph:
    """Index ``modules`` and run the may-yield fixpoint."""
    return CallGraph(modules)
