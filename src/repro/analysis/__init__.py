"""hnslint: repo-specific static analysis + simulation sanitizers.

Two halves, one gate:

- **Static** (:mod:`~repro.analysis.core`, ``rules_sim``, ``rules_hns``,
  ``atomicity``): an AST lint pass encoding this repository's
  invariants — SIM001 no wall-clock/ambient randomness, SIM002 no
  blocking calls in process generators, SIM003 no stale reads across
  yields, HNS001 TTL-tagged cache inserts, HNS002 IDL-registered wire
  messages, HNS003 dotted stats names, HNS004 registered wire-message
  field types, and (with ``--interprocedural``, backed by the may-yield
  call graph in :mod:`~repro.analysis.callgraph`) SIM004
  check-then-act and SIM005 await-gap captures.  Inline
  ``# hnslint: disable=CODE`` comments and the reviewed
  ``hnslint-baseline.toml`` carry the intentional exceptions; LINT001
  flags pragmas that no longer silence anything.

- **Runtime** (:mod:`~repro.analysis.sanitizer`,
  :mod:`~repro.analysis.determinism`, :mod:`~repro.analysis.racer`): an
  interleaving sanitizer that reconstructs happens-before between
  process segments and flags unordered conflicting accesses, a
  determinism checker that runs every registered scenario twice per
  seed and diffs trace digests, and hnsracer — schedule-perturbed
  scenario re-runs (:mod:`~repro.analysis.perturb`) that mark static
  race findings CONFIRMED when a sanitizer hazard witnesses them.

Run it as ``python -m repro.analysis src/repro`` (or
``python -m repro.cli lint``); ``--format json`` emits the stable
machine-readable report CI diffs across revisions.  The racer runs as
``python -m repro.cli racer``.
"""

from repro.analysis.atomicity import (
    Sim004CheckThenActAcrossGap,
    Sim005AwaitGapCapture,
    interprocedural_rules,
)
from repro.analysis.baseline import Baseline, BaselineError, Suppression
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleSource,
    Rule,
    default_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.determinism import ScenarioCheck, check_all, check_scenario
from repro.analysis.perturb import derive_seed, monitored, perturbed
from repro.analysis.racer import (
    RacerFinding,
    RacerReport,
    ScenarioRace,
    render_racer_json,
    render_racer_text,
    run_racer,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.sanitizer import (
    Access,
    InterleavingHazard,
    InterleavingSanitizer,
    SegmentInfo,
    Watched,
)

__all__ = [
    "Access",
    "Baseline",
    "BaselineError",
    "CallGraph",
    "Finding",
    "InterleavingHazard",
    "InterleavingSanitizer",
    "LintResult",
    "ModuleSource",
    "RacerFinding",
    "RacerReport",
    "Rule",
    "ScenarioCheck",
    "ScenarioRace",
    "SegmentInfo",
    "Sim004CheckThenActAcrossGap",
    "Sim005AwaitGapCapture",
    "Suppression",
    "Watched",
    "build_callgraph",
    "check_all",
    "check_scenario",
    "default_rules",
    "derive_seed",
    "interprocedural_rules",
    "lint_paths",
    "lint_source",
    "main",
    "monitored",
    "perturbed",
    "render_json",
    "render_racer_json",
    "render_racer_text",
    "render_text",
    "run_racer",
]


def main(argv=None):
    """Console entry point; see :mod:`repro.analysis.__main__`."""
    from repro.analysis.__main__ import run

    return run(argv)
