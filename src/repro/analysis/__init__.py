"""hnslint: repo-specific static analysis + simulation sanitizers.

Two halves, one gate:

- **Static** (:mod:`~repro.analysis.core`, ``rules_sim``, ``rules_hns``):
  an AST lint pass encoding this repository's invariants — SIM001 no
  wall-clock/ambient randomness, SIM002 no blocking calls in process
  generators, SIM003 no stale reads across yields, HNS001 TTL-tagged
  cache inserts, HNS002 IDL-registered wire messages, HNS003 dotted
  stats names.  Inline ``# hnslint: disable=CODE`` comments and the
  reviewed ``hnslint-baseline.toml`` carry the intentional exceptions.

- **Runtime** (:mod:`~repro.analysis.sanitizer`,
  :mod:`~repro.analysis.determinism`): an interleaving sanitizer that
  reconstructs happens-before between process segments and flags
  unordered conflicting accesses, plus a determinism checker that runs
  every registered scenario twice per seed and diffs trace digests.

Run it as ``python -m repro.analysis src/repro`` (or
``python -m repro.cli lint``); ``--format json`` emits the stable
machine-readable report CI diffs across revisions.
"""

from repro.analysis.baseline import Baseline, BaselineError, Suppression
from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleSource,
    Rule,
    default_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.determinism import ScenarioCheck, check_all, check_scenario
from repro.analysis.report import render_json, render_text
from repro.analysis.sanitizer import (
    Access,
    InterleavingHazard,
    InterleavingSanitizer,
    SegmentInfo,
    Watched,
)

__all__ = [
    "Access",
    "Baseline",
    "BaselineError",
    "Finding",
    "InterleavingHazard",
    "InterleavingSanitizer",
    "LintResult",
    "ModuleSource",
    "Rule",
    "ScenarioCheck",
    "SegmentInfo",
    "Suppression",
    "Watched",
    "check_all",
    "check_scenario",
    "default_rules",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]


def main(argv=None):
    """Console entry point; see :mod:`repro.analysis.__main__`."""
    from repro.analysis.__main__ import run

    return run(argv)
