"""The interleaving sanitizer: a data-race detector for the sim kernel.

The kernel runs one process segment at a time, so nothing in this
repository is a *machine-level* data race — but two processes that
touch the same shared object between yields with no happens-before
ordering are still *logically* racing: the outcome depends on event
ordering, and an innocent change to an unrelated latency constant can
flip it.  That is exactly the class of bug that silently corrupts
benchmark trajectories.

The sanitizer attaches to an :class:`~repro.sim.kernel.Environment` as
its :class:`~repro.sim.kernel.KernelMonitor` and reconstructs the
happens-before relation from what the kernel already does:

- **program order**: consecutive segments of one process;
- **synchronization**: the segment that calls ``succeed``/``fail`` on
  an event happens-before the segment the event resumes (propagated
  through ``AnyOf``/``AllOf`` conditions and process-completion events);
- **passage of time is not synchronization**: a ``Timeout`` triggers
  itself, so waking up after a delay orders nothing — precisely the
  "sleep as a lock" anti-pattern the sanitizer exists to flag.

Shared objects are tracked either explicitly
(:meth:`InterleavingSanitizer.record_read` / ``record_write``) or by
wrapping them in a :meth:`watch` proxy that records attribute and item
accesses.  :meth:`report` then pairs up conflicting accesses (two
processes, at least one write) that have no happens-before path in
either direction.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.events import Event
from repro.sim.kernel import Environment, KernelMonitor
from repro.sim.process import Process


@dataclasses.dataclass(frozen=True)
class SegmentInfo:
    """One yield-to-yield execution slice of one process."""

    seg_id: int
    process_name: str
    process_key: int
    index: int
    started_at: float

    def __str__(self) -> str:
        return f"{self.process_name}#{self.index}@{self.started_at:g}ms"


@dataclasses.dataclass(frozen=True)
class Access:
    """One recorded shared-object access."""

    label: str
    field: str
    kind: str  # "r" or "w"
    segment: SegmentInfo
    time: float


@dataclasses.dataclass(frozen=True)
class InterleavingHazard:
    """A conflicting access pair with no happens-before ordering."""

    label: str
    field: str
    first: Access
    second: Access

    def describe(self) -> str:
        return (
            f"{self.label}.{self.field}: "
            f"{self.first.kind} by {self.first.segment} and "
            f"{self.second.kind} by {self.second.segment} are unordered "
            "(no event synchronizes them; only the scheduler's tie-break "
            "keeps this stable)"
        )


class Watched:
    """Attribute/item proxy that reports accesses to the sanitizer.

    Reading an attribute or item records a read; assigning records a
    write.  Method objects fetched through the proxy count as reads of
    the method name; mutations a method performs internally are not
    seen unless they also go through a watched proxy.
    """

    __slots__ = ("_sanitizer", "_target", "_label")

    def __init__(
        self, sanitizer: "InterleavingSanitizer", target: object, label: str
    ):
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_label", label)

    def __getattr__(self, name: str) -> object:
        self._sanitizer.record_read(self._label, name)
        return getattr(self._target, name)

    def __setattr__(self, name: str, value: object) -> None:
        self._sanitizer.record_write(self._label, name)
        setattr(self._target, name, value)

    def __getitem__(self, key: object) -> object:
        self._sanitizer.record_read(self._label, f"[{key!r}]")
        return self._target[key]  # type: ignore[index]

    def __setitem__(self, key: object, value: object) -> None:
        self._sanitizer.record_write(self._label, f"[{key!r}]")
        self._target[key] = value  # type: ignore[index]

    def __contains__(self, key: object) -> bool:
        self._sanitizer.record_read(self._label, f"[{key!r}]")
        return key in self._target  # type: ignore[operator]

    def __len__(self) -> int:
        self._sanitizer.record_read(self._label, "__len__")
        return len(self._target)  # type: ignore[arg-type]


class InterleavingSanitizer(KernelMonitor):
    """Reconstructs happens-before and flags unordered conflicting pairs.

    Usage::

        env = Environment(seed=0)
        sanitizer = InterleavingSanitizer.attach(env)
        shared = sanitizer.watch(shared, "resolver-cache")
        ... run the simulation ...
        for hazard in sanitizer.report():
            print(hazard.describe())

    The sanitizer is passive: it never schedules or triggers events, so
    an instrumented run takes the same trajectory as a bare one.  It
    holds strong references to every event and process it has seen (to
    keep identity keys stable), so attach it to bounded diagnostic runs,
    not open-ended benchmarks.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._segments: typing.List[SegmentInfo] = []
        self._current: typing.Optional[int] = None
        #: forward happens-before edges (seg -> later segs)
        self._edges: typing.Dict[int, typing.List[int]] = {}
        #: per-process bookkeeping; values pin the Process object so the
        #: id() key cannot be reused
        self._last_segment: typing.Dict[int, typing.Tuple[Process, int]] = {}
        self._next_index: typing.Dict[int, int] = {}
        #: event id -> (event pinned, origin segment of its trigger)
        self._event_origin: typing.Dict[int, typing.Tuple[Event, int]] = {}
        #: process id -> origin segment of the event about to resume it
        self._pending_resume: typing.Dict[int, int] = {}
        #: origin of the event whose callbacks the kernel is running
        self._processing_origin: typing.Optional[int] = None
        self._accesses: typing.Dict[
            typing.Tuple[str, str], typing.List[Access]
        ] = {}
        self._reach_cache: typing.Dict[typing.Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, env: Environment) -> "InterleavingSanitizer":
        """Create a sanitizer and install it as ``env.monitor``."""
        if env.monitor is not None:
            raise RuntimeError("environment already has a monitor attached")
        sanitizer = cls(env)
        env.monitor = sanitizer
        return sanitizer

    def detach(self) -> None:
        if self.env.monitor is self:
            self.env.monitor = None

    # ------------------------------------------------------------------
    # KernelMonitor hooks
    # ------------------------------------------------------------------
    def segment_begin(self, process: Process) -> None:
        key = id(process)
        index = self._next_index.get(key, 0)
        seg_id = len(self._segments)
        self._segments.append(
            SegmentInfo(
                seg_id=seg_id,
                process_name=process.name,
                process_key=key,
                index=index,
                started_at=self.env.now,
            )
        )
        previous = self._last_segment.get(key)
        if previous is not None:
            self._edges.setdefault(previous[1], []).append(seg_id)
        origin = self._pending_resume.pop(key, None)
        if origin is not None:
            self._edges.setdefault(origin, []).append(seg_id)
        self._current = seg_id

    def segment_end(self, process: Process) -> None:
        key = id(process)
        if self._current is not None:
            self._last_segment[key] = (process, self._current)
            self._next_index[key] = self._next_index.get(key, 0) + 1
        self._current = None

    def event_triggered(self, event: Event) -> None:
        origin = (
            self._current if self._current is not None
            else self._processing_origin
        )
        if origin is not None:
            self._event_origin[id(event)] = (event, origin)

    def note_resume(self, process: Process, event: Event) -> None:
        entry = self._event_origin.get(id(event))
        if entry is not None:
            self._pending_resume[id(process)] = entry[1]

    def event_processing(self, event: Event) -> None:
        entry = self._event_origin.get(id(event))
        self._processing_origin = entry[1] if entry is not None else None

    def event_processed(self, event: Event) -> None:
        self._processing_origin = None

    # ------------------------------------------------------------------
    # Shared-object tracking
    # ------------------------------------------------------------------
    def watch(self, target: object, label: str) -> Watched:
        """Wrap ``target`` so accesses through the proxy are recorded."""
        return Watched(self, target, label)

    def record_read(self, label: str, field: str) -> None:
        self._record(label, field, "r")

    def record_write(self, label: str, field: str) -> None:
        self._record(label, field, "w")

    def _record(self, label: str, field: str, kind: str) -> None:
        if self._current is None:
            # Setup / teardown code outside any process: ordered before
            # (after) every segment, so it can never race.
            return
        segment = self._segments[self._current]
        self._accesses.setdefault((label, field), []).append(
            Access(
                label=label,
                field=field,
                kind=kind,
                segment=segment,
                time=self.env.now,
            )
        )

    # ------------------------------------------------------------------
    # Happens-before and reporting
    # ------------------------------------------------------------------
    def happens_before(self, a: int, b: int) -> bool:
        """Is there a happens-before path from segment ``a`` to ``b``?"""
        if a == b:
            return True
        if a > b:
            return False  # edges only go forward in creation order
        cached = self._reach_cache.get((a, b))
        if cached is not None:
            return cached
        stack = [a]
        seen = {a}
        found = False
        while stack:
            node = stack.pop()
            for successor in self._edges.get(node, ()):
                if successor == b:
                    found = True
                    stack.clear()
                    break
                if successor < b and successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        self._reach_cache[(a, b)] = found
        return found

    def report(self) -> typing.List[InterleavingHazard]:
        """All unordered conflicting access pairs, deduplicated.

        A hazard is two accesses to the same ``(label, field)`` from
        different processes, at least one a write, with no happens-before
        path either way.  One hazard is reported per
        (label, field, process pair, kind pair).
        """
        hazards: typing.List[InterleavingHazard] = []
        seen: typing.Set[typing.Tuple[str, str, int, int, str, str]] = set()
        for (label, field), accesses in sorted(self._accesses.items()):
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    if first.segment.process_key == second.segment.process_key:
                        continue
                    if first.kind == "r" and second.kind == "r":
                        continue
                    a, b = first.segment.seg_id, second.segment.seg_id
                    if self.happens_before(a, b) or self.happens_before(b, a):
                        continue
                    dedupe = (
                        label,
                        field,
                        min(first.segment.process_key, second.segment.process_key),
                        max(first.segment.process_key, second.segment.process_key),
                        first.kind,
                        second.kind,
                    )
                    if dedupe in seen:
                        continue
                    seen.add(dedupe)
                    hazards.append(
                        InterleavingHazard(
                            label=label, field=field, first=first, second=second
                        )
                    )
        return hazards
