"""hnsracer: yield-gap race analysis with schedule-perturbation runs.

Two stages, one verdict per static finding:

1. **Static**: the interprocedural lint pass (``lint_paths`` with the
   may-yield call graph) produces SIM003/SIM004/SIM005 findings, each
   carrying a *subject* — the shared attribute it is about.
2. **Dynamic**: every registered ``@scenario`` is re-run under the
   :class:`~repro.analysis.sanitizer.InterleavingSanitizer` with the
   schedule perturbator enabled (:mod:`repro.analysis.perturb`), so
   same-timestamp cohorts execute in seed-derived permuted orders.
   Hazards the sanitizer reports — conflicting access pairs with no
   happens-before path — are matched against finding subjects by their
   watch label or field name.

A static finding whose subject shows up as a dynamic hazard is
**CONFIRMED**: the race is not just a syntactic pattern, a legal
schedule exercises it.  Everything else stays **UNCONFIRMED** — still
reported (the scenarios are not a complete workload model), but
triaged behind confirmed findings.

Scenario builders opt into confirmation by watching shared state when a
monitor is present::

    if isinstance(env.monitor, InterleavingSanitizer):
        table = env.monitor.watch(table, "_leases")

Perturbation is pure tie-break permutation: event times never move, so
any digest change between the plain and perturbed runs
(``perturbation_effective``) means the trajectory depends on FIFO
tie-breaking — informational on its own, a bug witness when paired
with a hazard.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, LintResult, lint_paths
from repro.analysis.determinism import run_digest
from repro.analysis.perturb import derive_seed, monitored, perturbed
from repro.analysis.sanitizer import InterleavingSanitizer

#: Bumped whenever a field changes meaning.
RACER_JSON_VERSION = 1

#: Rules whose findings the dynamic stage tries to confirm.
RACE_RULES = ("SIM003", "SIM004", "SIM005")

CONFIRMED = "CONFIRMED"
UNCONFIRMED = "UNCONFIRMED"


@dataclasses.dataclass(frozen=True)
class HazardRecord:
    """One sanitizer hazard, flattened for the report."""

    scenario: str
    label: str
    field: str
    description: str

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "scenario": self.scenario,
            "label": self.label,
            "field": self.field,
            "description": self.description,
        }

    @classmethod
    def from_json(cls, data: typing.Mapping[str, object]) -> "HazardRecord":
        return cls(
            scenario=str(data["scenario"]),
            label=str(data["label"]),
            field=str(data["field"]),
            description=str(data["description"]),
        )


@dataclasses.dataclass(frozen=True)
class ScenarioRace:
    """One scenario's perturbed re-runs.

    ``ok`` asserts the two *determinism* properties the racer depends
    on: the plain build replays digest-identically, and a repeated run
    under the same perturbation seed replays digest-identically (one
    seed = one fixed schedule).  ``perturbation_effective`` records
    whether any perturbed digest differed from the plain one — i.e.
    whether this scenario's trajectory depends on FIFO tie-breaking at
    all; it is informational, not a failure.
    """

    scenario: str
    seed: int
    perturb_seeds: typing.Tuple[int, ...]
    ok: bool
    digest_plain: str
    digests_perturbed: typing.Tuple[str, ...]
    perturbation_effective: bool
    hazard_count: int
    detail: str = ""

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "perturb_seeds": list(self.perturb_seeds),
            "ok": self.ok,
            "digest_plain": self.digest_plain,
            "digests_perturbed": list(self.digests_perturbed),
            "perturbation_effective": self.perturbation_effective,
            "hazard_count": self.hazard_count,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: typing.Mapping[str, object]) -> "ScenarioRace":
        return cls(
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            perturb_seeds=tuple(
                int(s) for s in typing.cast(list, data["perturb_seeds"])
            ),
            ok=bool(data["ok"]),
            digest_plain=str(data["digest_plain"]),
            digests_perturbed=tuple(
                str(d) for d in typing.cast(list, data["digests_perturbed"])
            ),
            perturbation_effective=bool(data["perturbation_effective"]),
            hazard_count=int(data["hazard_count"]),  # type: ignore[arg-type]
            detail=str(data.get("detail", "")),
        )


@dataclasses.dataclass(frozen=True)
class RacerFinding:
    """A static race finding plus its dynamic verdict."""

    finding: Finding
    status: str  # CONFIRMED | UNCONFIRMED
    witnesses: typing.Tuple[str, ...] = ()  # hazard descriptions

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "finding": self.finding.to_json(),
            "status": self.status,
            "witnesses": list(self.witnesses),
        }

    @classmethod
    def from_json(cls, data: typing.Mapping[str, object]) -> "RacerFinding":
        return cls(
            finding=Finding.from_json(
                typing.cast(typing.Mapping[str, object], data["finding"])
            ),
            status=str(data["status"]),
            witnesses=tuple(
                str(w) for w in typing.cast(list, data["witnesses"])
            ),
        )


@dataclasses.dataclass
class RacerReport:
    """The full hnsracer run: static verdicts plus scenario evidence."""

    seed: int
    perturb_runs: int
    files_scanned: int
    findings: typing.List[RacerFinding]
    scenarios: typing.List[ScenarioRace]
    hazards: typing.List[HazardRecord]
    parse_errors: typing.List[str] = dataclasses.field(default_factory=list)
    stale_suppressions: typing.List[str] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Gate: no findings, no parse errors, every scenario replayed."""
        return (
            not self.findings
            and not self.parse_errors
            and all(s.ok for s in self.scenarios)
        )

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "version": RACER_JSON_VERSION,
            "tool": "hnsracer",
            "seed": self.seed,
            "perturb_runs": self.perturb_runs,
            "files_scanned": self.files_scanned,
            "findings": [f.to_json() for f in self.findings],
            "scenarios": [s.to_json() for s in self.scenarios],
            "hazards": [h.to_json() for h in self.hazards],
            "parse_errors": list(self.parse_errors),
            "stale_suppressions": list(self.stale_suppressions),
            "ok": self.ok,
        }

    @classmethod
    def from_json(cls, data: typing.Mapping[str, object]) -> "RacerReport":
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            perturb_runs=int(data["perturb_runs"]),  # type: ignore[arg-type]
            files_scanned=int(data["files_scanned"]),  # type: ignore[arg-type]
            findings=[
                RacerFinding.from_json(f)
                for f in typing.cast(list, data["findings"])
            ],
            scenarios=[
                ScenarioRace.from_json(s)
                for s in typing.cast(list, data["scenarios"])
            ],
            hazards=[
                HazardRecord.from_json(h)
                for h in typing.cast(list, data["hazards"])
            ],
            parse_errors=[
                str(e) for e in typing.cast(list, data["parse_errors"])
            ],
            stale_suppressions=[
                str(s) for s in typing.cast(list, data["stale_suppressions"])
            ],
        )


def race_scenario(
    name: str,
    builder: typing.Callable[[int], "object"],
    seed: int = 0,
    perturb_runs: int = 2,
) -> typing.Tuple[ScenarioRace, typing.List[HazardRecord]]:
    """Run one scenario plain and perturbed; collect hazards.

    Five runs: plain twice (replay check), each derived perturbation
    seed once under the sanitizer, and the first perturbation seed a
    second time (fixed seed = fixed schedule check).
    """
    env_plain = builder(seed)
    digest_plain = run_digest(env_plain)  # type: ignore[arg-type]
    digest_plain_b = run_digest(builder(seed))  # type: ignore[arg-type]
    detail = ""
    replay_ok = digest_plain == digest_plain_b
    if not replay_ok:
        detail = "plain replay diverged (scenario is nondeterministic)"

    sanitizers: typing.List[InterleavingSanitizer] = []

    def factory(env: "object") -> InterleavingSanitizer:
        sanitizer = InterleavingSanitizer(env)  # type: ignore[arg-type]
        sanitizers.append(sanitizer)
        return sanitizer

    perturb_seeds = tuple(
        derive_seed(seed, index) for index in range(max(1, perturb_runs))
    )
    digests: typing.List[str] = []
    with monitored(factory):
        for perturb_seed in perturb_seeds:
            with perturbed(perturb_seed):
                digests.append(run_digest(builder(seed)))  # type: ignore[arg-type]
    # Same perturbation seed, same schedule: re-run the first seed —
    # without the sanitizer this time, because the monitor must be
    # passive, so its absence cannot move the digest either.
    with perturbed(perturb_seeds[0]):
        digest_repeat = run_digest(builder(seed))  # type: ignore[arg-type]
    perturb_ok = digest_repeat == digests[0]
    if replay_ok and not perturb_ok:
        detail = (
            "perturbed replay diverged (same perturbation seed must "
            "give the same schedule; is the sanitizer non-passive?)"
        )

    hazards: typing.List[HazardRecord] = []
    seen: typing.Set[typing.Tuple[str, str, str]] = set()
    for sanitizer in sanitizers:
        for hazard in sanitizer.report():
            key = (hazard.label, hazard.field, hazard.describe())
            if key in seen:
                continue
            seen.add(key)
            hazards.append(
                HazardRecord(
                    scenario=name,
                    label=hazard.label,
                    field=hazard.field,
                    description=hazard.describe(),
                )
            )

    race = ScenarioRace(
        scenario=name,
        seed=seed,
        perturb_seeds=perturb_seeds,
        ok=replay_ok and perturb_ok,
        digest_plain=digest_plain,
        digests_perturbed=tuple(digests),
        perturbation_effective=any(d != digest_plain for d in digests),
        hazard_count=len(hazards),
        detail=detail,
    )
    return race, hazards


def _matches(finding: Finding, hazard: HazardRecord) -> bool:
    """Does a dynamic hazard witness this static finding?

    By the watch-label convention, scenario builders label watched
    state with the shared attribute name — the same name the static
    rules record as the finding's subject.  The field name matches too,
    for attribute-level accesses through a coarser-labelled proxy.
    """
    if not finding.subject:
        return False
    return finding.subject in (hazard.label, hazard.field)


def run_racer(
    paths: typing.Sequence[str],
    scenario_names: typing.Optional[typing.Sequence[str]] = None,
    seed: int = 0,
    perturb_runs: int = 2,
    baseline: typing.Optional[Baseline] = None,
    scenarios: typing.Optional[
        typing.Mapping[str, typing.Callable[[int], "object"]]
    ] = None,
) -> RacerReport:
    """The full racer: interprocedural lint, then perturbed re-runs.

    ``scenarios`` overrides the registry (tests inject fixture builders
    through it); otherwise every registered ``@scenario`` runs, or the
    subset named by ``scenario_names``.
    """
    result: LintResult = (
        lint_paths(list(paths), baseline=baseline, interprocedural=True)
        if paths
        else LintResult(findings=[])
    )

    if scenarios is None:
        from repro.workloads.scenarios import SCENARIOS

        scenarios = dict(SCENARIOS)
    if scenario_names is not None:
        unknown = [n for n in scenario_names if n not in scenarios]
        if unknown:
            known = ", ".join(sorted(scenarios))
            raise KeyError(
                f"unknown scenario(s) {', '.join(unknown)}; known: {known}"
            )
        scenarios = {n: scenarios[n] for n in scenario_names}

    races: typing.List[ScenarioRace] = []
    hazards: typing.List[HazardRecord] = []
    for name in sorted(scenarios):
        race, scenario_hazards = race_scenario(
            name, scenarios[name], seed=seed, perturb_runs=perturb_runs
        )
        races.append(race)
        hazards.extend(scenario_hazards)

    racer_findings: typing.List[RacerFinding] = []
    for finding in result.findings:
        if finding.rule not in RACE_RULES:
            racer_findings.append(RacerFinding(finding, UNCONFIRMED))
            continue
        witnesses = tuple(
            hazard.description
            for hazard in hazards
            if _matches(finding, hazard)
        )
        racer_findings.append(
            RacerFinding(
                finding,
                CONFIRMED if witnesses else UNCONFIRMED,
                witnesses,
            )
        )

    return RacerReport(
        seed=seed,
        perturb_runs=perturb_runs,
        files_scanned=result.files_scanned,
        findings=racer_findings,
        scenarios=races,
        hazards=hazards,
        parse_errors=list(result.parse_errors),
        stale_suppressions=list(result.stale_suppressions),
    )


def render_racer_text(report: RacerReport) -> str:
    """The human-facing racer report."""
    lines: typing.List[str] = []
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    for racer_finding in report.findings:
        finding = racer_finding.finding
        lines.append(f"[{racer_finding.status}] {finding}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        for witness in racer_finding.witnesses:
            lines.append(f"    witness: {witness}")
    for race in report.scenarios:
        status = "ok" if race.ok else "FAILED"
        effect = (
            "tie-break sensitive"
            if race.perturbation_effective
            else "tie-break insensitive"
        )
        lines.append(
            f"scenario {race.scenario}: {status} ({effect}, "
            f"{len(race.perturb_seeds)} perturbed runs, "
            f"{race.hazard_count} hazards)"
        )
        if race.detail:
            lines.append(f"    {race.detail}")
    confirmed = sum(1 for f in report.findings if f.status == CONFIRMED)
    lines.append(
        "hnsracer: "
        f"{report.files_scanned} files scanned, "
        f"{len(report.findings)} findings "
        f"({confirmed} confirmed), "
        f"{len(report.scenarios)} scenarios perturbed, "
        f"{len(report.hazards)} hazards, "
        f"{'ok' if report.ok else 'NOT OK'}"
    )
    return "\n".join(lines)


def render_racer_json(report: RacerReport) -> str:
    """The stable machine-readable racer report."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
