"""The hnslint core: findings, rules, suppressions, and the runner.

hnslint is a repo-specific static-analysis pass.  General-purpose
linters cannot know that wall-clock reads corrupt the deterministic
event kernel, that cache inserts must carry a TTL, or that wire-message
dataclasses need an IDL registration — those are *invariants of this
reproduction*, and this module gives them teeth.

The machinery is deliberately small: a rule is an object with a
``code`` and a ``check(module)`` method yielding :class:`Finding`
objects; a :class:`ModuleSource` bundles one parsed file; the runner
walks paths, applies inline suppressions (``# hnslint: disable=CODE``)
and the checked-in baseline, and hands the surviving findings to a
reporter (:mod:`repro.analysis.report`).
"""

from __future__ import annotations

import ast
import dataclasses
import io
import pathlib
import re
import tokenize
import typing

#: Inline suppression syntax: ``# hnslint: disable`` silences every rule
#: on that line; ``# hnslint: disable=SIM001,HNS003`` silences only the
#: listed codes.
_SUPPRESS_RE = re.compile(
    r"#\s*hnslint:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    #: What the finding is *about* — for the race rules, the shared
    #: attribute name (``_leases``, ``entries``).  The racer matches it
    #: against sanitizer hazard labels/fields to mark findings
    #: CONFIRMED; empty when a rule has no meaningful subject.
    subject: str = ""

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "subject": self.subject,
        }

    @classmethod
    def from_json(cls, data: typing.Mapping[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            snippet=str(data.get("snippet", "")),
            subject=str(data.get("subject", "")),
        )

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleSource:
    """One parsed Python file, shared by every rule that inspects it."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._pragmas: typing.Optional[
            typing.Dict[int, typing.Optional[typing.FrozenSet[str]]]
        ] = None

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, subject: str = ""
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.code,
            path=self.path,
            line=lineno,
            col=col + 1,
            message=message,
            snippet=self.line_at(lineno),
            subject=subject,
        )

    @property
    def pragmas(
        self,
    ) -> typing.Dict[int, typing.Optional[typing.FrozenSet[str]]]:
        """Every suppression pragma: line -> codes (None means "all").

        Built from the token stream, not raw lines, so a docstring that
        merely *mentions* the pragma syntax (as this package's own
        documentation does) is not a pragma.  The match is anchored: a
        pragma is the whole comment, not a phrase inside one — a doc
        comment quoting the syntax does not silence anything.
        """
        if self._pragmas is None:
            found: typing.Dict[
                int, typing.Optional[typing.FrozenSet[str]]
            ] = {}
            try:
                tokens = tokenize.generate_tokens(
                    io.StringIO(self.text).readline
                )
                for token in tokens:
                    if token.type != tokenize.COMMENT:
                        continue
                    match = _SUPPRESS_RE.match(token.string)
                    if match is None:
                        continue
                    codes = match.group("codes")
                    found[token.start[0]] = (
                        frozenset(
                            code.strip()
                            for code in codes.split(",")
                            if code.strip()
                        )
                        if codes
                        else None
                    )
            except tokenize.TokenError:  # pragma: no cover - ast parsed OK
                pass
            self._pragmas = found
        return self._pragmas

    def suppression_for(
        self, lineno: int
    ) -> typing.Optional[
        typing.Tuple[int, typing.Optional[typing.FrozenSet[str]]]
    ]:
        """The pragma governing ``lineno``: same line, or a comment-only
        line directly above.  Returns ``(pragma line, codes)``."""
        pragmas = self.pragmas
        if lineno in pragmas:
            return lineno, pragmas[lineno]
        above = lineno - 1
        if above in pragmas and self.line_at(above).startswith("#"):
            return above, pragmas[above]
        return None

    def suppressed_codes(self, lineno: int) -> typing.Optional[typing.Set[str]]:
        """Codes silenced on ``lineno``; empty set means "all codes"."""
        entry = self.suppression_for(lineno)
        if entry is None:
            return None
        return set(entry[1]) if entry[1] is not None else set()


class Rule:
    """Base class: one named invariant checked against a module's AST."""

    code: str = "XXX000"
    name: str = ""
    rationale: str = ""

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def attribute_chain(node: ast.AST) -> typing.Optional[typing.List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None if not a plain chain."""
    parts: typing.List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def is_generator_function(
    node: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> bool:
    """Does ``node``'s own body yield (ignoring nested functions)?"""
    for child in _walk_own_body(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_own_body(
    func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> typing.Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: typing.List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_functions(
    tree: ast.AST,
) -> typing.Iterator[typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """Every function definition in ``tree``, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_generator_functions(
    tree: ast.AST,
) -> typing.Iterator[typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """Every generator function in ``tree`` — a simulated process body."""
    for func in iter_functions(tree):
        if is_generator_function(func):
            yield func


class ImportMap:
    """Resolves names in a module back to the stdlib modules they alias.

    Tracks ``import time``, ``import time as t``, and
    ``from time import sleep`` so rules can recognise calls through any
    spelling.
    """

    def __init__(self, tree: ast.AST):
        #: local alias -> module name ("t" -> "time")
        self.module_aliases: typing.Dict[str, str] = {}
        #: local name -> (module, attr) ("sleep" -> ("time", "sleep"))
        self.from_imports: typing.Dict[str, typing.Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve_call(
        self, func: ast.AST
    ) -> typing.Optional[typing.Tuple[str, str]]:
        """``(module, attr)`` for a call target, if statically known.

        ``time.sleep(...)`` -> ("time", "sleep"); a bare ``sleep(...)``
        imported via ``from time import sleep`` resolves the same way.
        """
        if isinstance(func, ast.Attribute):
            chain = attribute_chain(func)
            if chain is None or len(chain) < 2:
                return None
            module = self.module_aliases.get(chain[0])
            if module is not None:
                return module, ".".join(chain[1:])
            # ``from datetime import datetime; datetime.now()``
            origin = self.from_imports.get(chain[0])
            if origin is not None:
                return origin[0], ".".join([origin[1], *chain[1:]])
            return None
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id)
        return None


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class Lint001UnusedSuppression(Rule):
    """A ``# hnslint: disable`` pragma that silences nothing.

    Emitted by the runner, not by ``check()``: whether a pragma is used
    is only known after every rule has run over the module.
    """

    code = "LINT001"
    name = "unused-suppression"
    rationale = (
        "A disable pragma that no longer matches any finding is a "
        "silent hole: the next real violation on that line sails "
        "through review pre-approved.  Dead pragmas are deleted, not "
        "kept as decoration."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        return iter(())


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: typing.List[Finding]
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: typing.List[str] = dataclasses.field(default_factory=list)
    #: Baseline entries that matched nothing in this run (populated when
    #: a baseline was in effect; ``--check-baseline`` fails on them).
    stale_suppressions: typing.List[str] = dataclasses.field(
        default_factory=list
    )
    #: May-yield call-graph shape counters (interprocedural runs only).
    callgraph: typing.Optional[typing.Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def counts_by_rule(self) -> typing.Dict[str, int]:
        counts: typing.Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def default_rules() -> typing.List[Rule]:
    """One instance of every registered rule, in code order."""
    from repro.analysis.rules_hns import HNS_RULES
    from repro.analysis.rules_sim import SIM_RULES

    return [cls() for cls in (*SIM_RULES, *HNS_RULES)] + [
        Lint001UnusedSuppression()
    ]


def _lint_module(
    module: ModuleSource,
    active: typing.Sequence[Rule],
    result: LintResult,
    baseline: typing.Optional["Baseline"],
    check_pragmas: bool,
) -> None:
    """Run ``active`` over one module, folding findings into ``result``."""
    #: pragma line -> rule codes it actually silenced
    used: typing.Dict[int, typing.Set[str]] = {}
    for rule in active:
        for finding in rule.check(module):
            entry = module.suppression_for(finding.line)
            if entry is not None and (
                entry[1] is None or finding.rule in entry[1]
            ):
                used.setdefault(entry[0], set()).add(finding.rule)
                result.suppressed += 1
                continue
            if baseline is not None and baseline.matches(finding):
                result.baselined += 1
                continue
            result.findings.append(finding)
    if not check_pragmas:
        return
    # LINT001 is deliberately immune to inline suppression (a pragma
    # cannot vouch for itself) but goes through the baseline like any
    # other finding.
    meta = Lint001UnusedSuppression()
    for line, codes in sorted(module.pragmas.items()):
        used_codes = used.get(line, set())
        if codes is None:
            if used_codes:
                continue
            message = (
                "unused suppression pragma: nothing on this line is "
                "silenced by it; delete the pragma"
            )
        else:
            dead = sorted(codes - used_codes)
            if not dead:
                continue
            message = (
                f"unused suppression pragma: {', '.join(dead)} "
                "silence(s) nothing here; delete the dead code(s)"
            )
        finding = Finding(
            rule=meta.code,
            path=module.path,
            line=line,
            col=1,
            message=message,
            snippet=module.line_at(line),
        )
        if baseline is not None and baseline.matches(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)


def lint_source(
    text: str,
    path: str = "<string>",
    rules: typing.Optional[typing.Sequence[Rule]] = None,
    check_pragmas: bool = False,
) -> typing.List[Finding]:
    """Lint one source string; inline suppressions apply, baseline doesn't."""
    module = ModuleSource(path, text)
    active = list(rules) if rules is not None else default_rules()
    result = LintResult(findings=[])
    _lint_module(module, active, result, None, check_pragmas)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result.findings


def iter_python_files(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]]
) -> typing.Iterator[pathlib.Path]:
    """Expand files/directories into the ``.py`` files under them."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
    rules: typing.Optional[typing.Sequence[Rule]] = None,
    baseline: typing.Optional["Baseline"] = None,
    interprocedural: bool = False,
    check_pragmas: bool = True,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Inline suppressions are counted in ``suppressed``; findings matched
    by the checked-in baseline are counted in ``baselined``.  Anything
    left in ``findings`` should fail CI.

    With ``interprocedural=True`` every module is parsed first, a
    project-wide may-yield call graph is built over the whole set
    (:mod:`repro.analysis.callgraph`), and the interprocedural rules
    (SIM004/SIM005, :mod:`repro.analysis.atomicity`) join the default
    rule set.  ``check_pragmas`` adds the LINT001 unused-pragma
    meta-check (on by default for tree runs).
    """
    active = list(rules) if rules is not None else default_rules()
    result = LintResult(findings=[])
    modules: typing.List[ModuleSource] = []
    for path in iter_python_files(paths):
        try:
            module = ModuleSource(str(path), path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as err:
            result.parse_errors.append(f"{path}: {err}")
            continue
        result.files_scanned += 1
        modules.append(module)
    if interprocedural:
        from repro.analysis.atomicity import interprocedural_rules
        from repro.analysis.callgraph import build_callgraph

        graph = build_callgraph(modules)
        result.callgraph = graph.summary()
        if rules is None:
            active.extend(interprocedural_rules(graph))
    for module in modules:
        _lint_module(module, active, result, baseline, check_pragmas)
    if baseline is not None:
        result.stale_suppressions = [
            suppression.describe() for suppression in baseline.stale()
        ]
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.baseline import Baseline
