"""The determinism checker: same seed, same trajectory — verified.

Static rules (:mod:`repro.analysis.rules_sim`) catch wall-clock and
ambient-randomness *patterns*; this module checks the property itself.
Every scenario registered in :mod:`repro.workloads.scenarios` is run
twice with the same seed — plus a third time with span tracing
(:mod:`repro.obs`) forced on, and a fourth time on the *alternate*
event-queue back end (heap vs timer wheel,
:data:`repro.sim.kernel.DEFAULT_KERNEL_IMPL`), neither of which may
move the trajectory — and each run is reduced to a digest over

- the canonical trace serialization (every traced occurrence, in order,
  with sorted data keys),
- every stats counter value, and
- the final simulated clock.

Any mismatch means something outside the seeded sandbox leaked into the
run — a host clock, the process RNG, dict-iteration order of a set, an
id()-keyed container — and the digest diff pinpoints the first record
where the trajectories diverge.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.obs.span import Observability
from repro.sim import kernel as _kernel
from repro.sim.kernel import Environment


@dataclasses.dataclass(frozen=True)
class ScenarioCheck:
    """Result of double-running one scenario.

    ``digest_obs`` comes from a third run with span tracing forced on
    (:attr:`~repro.obs.span.Observability.default_enabled`): tracing a
    run must not change its trajectory.  ``digest_alt`` comes from a
    fourth run on the alternate event-queue back end (heap when the
    default is the wheel, and vice versa): back ends share one
    ``(time, eid)`` ordering contract, so swapping them must be
    digest-invisible too.  All four digests must match.
    """

    scenario: str
    seed: int
    ok: bool
    digest_a: str
    digest_b: str
    events_a: int
    events_b: int
    first_divergence: str = ""
    digest_obs: str = ""
    digest_alt: str = ""

    def to_json(self) -> typing.Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
            "digest_obs": self.digest_obs,
            "digest_alt": self.digest_alt,
            "trace_records_a": self.events_a,
            "trace_records_b": self.events_b,
            "first_divergence": self.first_divergence,
        }


def run_lines(env: Environment) -> typing.List[str]:
    """The canonical serialization of a finished run.

    Trace records first, then counters (sorted by name), then the final
    clock — every line participates in the digest.
    """
    lines = list(env.trace.canonical_lines())
    for name, value in sorted(env.stats.counters().items()):
        lines.append(f"counter|{name}|{value}")
    lines.append(f"clock|{env.now!r}")
    return lines


def run_digest(env: Environment) -> str:
    """sha256 over the canonical run lines of a finished environment."""
    hasher = hashlib.sha256()
    for line in run_lines(env):
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def check_scenario(
    name: str,
    builder: typing.Callable[[int], Environment],
    seed: int = 0,
) -> ScenarioCheck:
    """Run ``builder`` four times with ``seed`` and compare.

    Runs A and B are plain replays; run C executes with span tracing
    forced on (:class:`~repro.obs.span.Observability` constructs
    enabled), proving that observability never perturbs a run; run D
    executes on the alternate event-queue back end
    (:data:`~repro.sim.kernel.DEFAULT_KERNEL_IMPL` flipped the same
    way run C flips ``Observability.default_enabled``), proving the
    wheel and the heap process events in the identical order.
    """
    env_a = builder(seed)
    lines_a = run_lines(env_a)
    env_b = builder(seed)
    lines_b = run_lines(env_b)
    saved = Observability.default_enabled
    Observability.default_enabled = True
    try:
        env_c = builder(seed)
        lines_c = run_lines(env_c)
    finally:
        Observability.default_enabled = saved
    saved_impl = _kernel.DEFAULT_KERNEL_IMPL
    alt_impl = "heap" if saved_impl == "wheel" else "wheel"
    _kernel.DEFAULT_KERNEL_IMPL = alt_impl
    try:
        env_d = builder(seed)
        lines_d = run_lines(env_d)
    finally:
        _kernel.DEFAULT_KERNEL_IMPL = saved_impl
    digest_a = _digest(lines_a)
    digest_b = _digest(lines_b)
    digest_c = _digest(lines_c)
    digest_d = _digest(lines_d)
    divergence = ""
    if digest_a != digest_b:
        divergence = _first_divergence(lines_a, lines_b)
    elif digest_a != digest_c:
        divergence = "traced run: " + _first_divergence(lines_a, lines_c)
    elif digest_a != digest_d:
        divergence = (
            f"alternate back end ({alt_impl} vs {saved_impl}): "
            + _first_divergence(lines_a, lines_d)
        )
    return ScenarioCheck(
        scenario=name,
        seed=seed,
        ok=digest_a == digest_b == digest_c == digest_d,
        digest_a=digest_a,
        digest_b=digest_b,
        events_a=len(env_a.trace.records),
        events_b=len(env_b.trace.records),
        first_divergence=divergence,
        digest_obs=digest_c,
        digest_alt=digest_d,
    )


def check_all(
    names: typing.Optional[typing.Sequence[str]] = None,
    seed: int = 0,
) -> typing.List[ScenarioCheck]:
    """Determinism-check the registered scenarios (all by default)."""
    from repro.workloads.scenarios import SCENARIOS, iter_scenarios

    checks = []
    if names is None:
        pairs: typing.Iterable = iter_scenarios()
    else:
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            known = ", ".join(sorted(SCENARIOS))
            raise KeyError(
                f"unknown scenario(s) {', '.join(unknown)}; known: {known}"
            )
        pairs = [(n, SCENARIOS[n]) for n in names]
    for name, builder in pairs:
        checks.append(check_scenario(name, builder, seed=seed))
    return checks


def _digest(lines: typing.Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for line in lines:
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _first_divergence(
    lines_a: typing.Sequence[str], lines_b: typing.Sequence[str]
) -> str:
    for index, (a, b) in enumerate(zip(lines_a, lines_b)):
        if a != b:
            return f"line {index}: {a!r} != {b!r}"
    if len(lines_a) != len(lines_b):
        shorter = min(len(lines_a), len(lines_b))
        longer = lines_a if len(lines_a) > len(lines_b) else lines_b
        return (
            f"line {shorter}: one run ends, the other continues with "
            f"{longer[shorter]!r}"
        )
    return "digests differ but serializations match (hash collision?)"
