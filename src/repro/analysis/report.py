"""Reporters: human-readable text and machine-readable JSON.

The JSON format is versioned and stable so future PRs can diff rule
counts across revisions the way ``BENCH_*.json`` diffs latency — the
lint equivalent of a benchmark trajectory.
"""

from __future__ import annotations

import json
import typing

from repro.analysis.core import LintResult

#: Bumped whenever a field changes meaning; additions are backwards
#: compatible and do not bump it.  v2: findings carry ``subject``,
#: reports carry ``stale_suppressions`` and (under ``--interprocedural``)
#: a ``callgraph`` summary block.
JSON_FORMAT_VERSION = 2


def render_text(
    result: LintResult,
    determinism: typing.Optional[typing.Sequence["ScenarioCheck"]] = None,
) -> str:
    """The human-facing report: one line per finding plus a summary."""
    lines: typing.List[str] = []
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    for finding in result.findings:
        lines.append(str(finding))
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if determinism is not None:
        for check in determinism:
            status = "ok" if check.ok else "NONDETERMINISTIC"
            lines.append(
                f"determinism {check.scenario}: {status} "
                f"(seed {check.seed}, {check.events_a} trace records)"
            )
            if not check.ok and check.first_divergence:
                lines.append(f"    first divergence: {check.first_divergence}")
    for stale in result.stale_suppressions:
        lines.append(f"stale baseline suppression: {stale}")
    lines.append(_summary_line(result, determinism))
    return "\n".join(lines)


def _summary_line(
    result: LintResult,
    determinism: typing.Optional[typing.Sequence["ScenarioCheck"]],
) -> str:
    counts = result.counts_by_rule()
    by_rule = (
        " (" + ", ".join(f"{rule}: {n}" for rule, n in counts.items()) + ")"
        if counts
        else ""
    )
    parts = [
        f"{result.files_scanned} files scanned",
        f"{len(result.findings)} findings{by_rule}",
        f"{result.suppressed} suppressed inline",
        f"{result.baselined} baselined",
    ]
    if determinism is not None:
        failed = sum(1 for check in determinism if not check.ok)
        parts.append(
            f"{len(determinism)} scenarios determinism-checked, {failed} failed"
        )
    return "hnslint: " + ", ".join(parts)


def render_json(
    result: LintResult,
    determinism: typing.Optional[typing.Sequence["ScenarioCheck"]] = None,
) -> str:
    """The stable machine-readable report."""
    payload: typing.Dict[str, object] = {
        "version": JSON_FORMAT_VERSION,
        "tool": "hnslint",
        "files_scanned": result.files_scanned,
        "findings": [finding.to_json() for finding in result.findings],
        "counts": result.counts_by_rule(),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "parse_errors": list(result.parse_errors),
        "stale_suppressions": list(result.stale_suppressions),
        "ok": result.ok,
    }
    if result.callgraph is not None:
        payload["callgraph"] = dict(result.callgraph)
    if determinism is not None:
        payload["determinism"] = [check.to_json() for check in determinism]
        payload["ok"] = bool(payload["ok"]) and all(c.ok for c in determinism)
    return json.dumps(payload, indent=2, sort_keys=True)


if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.determinism import ScenarioCheck
