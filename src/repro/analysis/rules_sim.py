"""Simulation-kernel rules: SIM001, SIM002, SIM003.

The event kernel replays a run exactly from ``Environment(seed=...)``:
virtual time comes from ``env.now``, randomness from named
``env.rng.stream(...)`` streams.  Anything that reaches outside that
sandbox — the host's clock, the process RNG, a real socket — makes the
benchmark trajectories (``BENCH_*.json``) unreproducible in a way no
test notices until the numbers drift.  These rules catch the escape
hatches at review time.
"""

from __future__ import annotations

import ast
import typing

from repro.analysis.core import (
    Finding,
    ImportMap,
    ModuleSource,
    Rule,
    attribute_chain,
    iter_generator_functions,
    _walk_own_body,
)

#: (module, attr prefix) call targets that read the host's clock or
#: ambient randomness.  Matched against :meth:`ImportMap.resolve_call`.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "datetime.now"),
    ("datetime", "datetime.utcnow"),
    ("datetime", "datetime.today"),
    ("datetime", "date.today"),
}

_AMBIENT_RANDOM_MODULES = {"secrets"}
_AMBIENT_RANDOM = {
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

#: Calls that block the host thread or touch real I/O devices; inside a
#: simulated process these freeze every other process in the run.
_BLOCKING = {
    ("time", "sleep"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("socket", "create_server"),
    ("select", "select"),
    ("subprocess", "run"),
    ("subprocess", "Popen"),
    ("subprocess", "check_output"),
    ("subprocess", "check_call"),
    ("subprocess", "call"),
    ("urllib.request", "urlopen"),
}
_BLOCKING_MODULES = {"requests", "http.client"}
_BLOCKING_BUILTINS = {"open", "input"}


class Sim001AmbientNondeterminism(Rule):
    """No wall-clock time or ambient randomness inside ``src/repro``."""

    code = "SIM001"
    name = "ambient-nondeterminism"
    rationale = (
        "Simulated components must take time from env.now and randomness "
        "from env.rng.stream(name); host clocks and the process RNG make "
        "same-seed runs diverge and corrupt benchmark trajectories."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node.func)
            if target is None:
                continue
            mod, attr = target
            if (mod, attr) in _WALL_CLOCK:
                yield module.finding(
                    self, node,
                    f"wall-clock read {mod}.{attr}(); use env.now "
                    "(simulated milliseconds)",
                )
            elif (mod, attr) in _AMBIENT_RANDOM or mod in _AMBIENT_RANDOM_MODULES:
                yield module.finding(
                    self, node,
                    f"ambient randomness {mod}.{attr}(); draw from a named "
                    "env.rng.stream(...) so runs replay",
                )
            elif mod == "random":
                # Both module-level helpers (random.random(), shared
                # global state) and direct random.Random(...)
                # construction — every stream must be handed out by the
                # RngRegistry so seeds stay centralised.
                yield module.finding(
                    self, node,
                    f"direct random.{attr}(); use env.rng.stream(name) "
                    "(RngRegistry owns every seed)",
                )


class Sim002BlockingCall(Rule):
    """No blocking calls inside generator processes."""

    code = "SIM002"
    name = "blocking-call-in-process"
    rationale = (
        "A simulated process is a cooperative generator; time.sleep, real "
        "sockets, or file I/O block the single kernel thread and stall "
        "every process in the run instead of advancing the virtual clock."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        imports = ImportMap(module.tree)
        for func in iter_generator_functions(module.tree):
            for node in _walk_own_body(func):
                if not isinstance(node, ast.Call):
                    continue
                target = imports.resolve_call(node.func)
                if target is not None:
                    mod, attr = target
                    if (mod, attr) in _BLOCKING or mod in _BLOCKING_MODULES:
                        yield module.finding(
                            self, node,
                            f"blocking call {mod}.{attr}() inside process "
                            f"generator {func.name!r}; yield a simulated "
                            "event (env.timeout / transport / disk) instead",
                        )
                        continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _BLOCKING_BUILTINS
                ):
                    yield module.finding(
                        self, node,
                        f"blocking builtin {node.func.id}() inside process "
                        f"generator {func.name!r}; real I/O does not "
                        "advance simulated time",
                    )


#: Attribute names whose reads snapshot shared mutable state.  A local
#: bound from one of these and used after a later ``yield`` may be stale
#: by the time it is read — another process can run at every yield.
_STATEFUL_ATTRS = {
    "entries",
    "_entries",
    "records",
    "zone",
    "zones",
    "journal",
    "table",
    "bindings",
    "state",
}

#: Method calls whose results snapshot cache state the same way.
_SNAPSHOT_METHODS = {"probe", "stale_entry"}


class Sim003StaleReadAcrossYield(Rule):
    """Shared-state snapshot taken before a ``yield``, used after it."""

    code = "SIM003"
    name = "stale-read-across-yield"
    rationale = (
        "Every yield is a scheduling point: cache entries can expire, be "
        "evicted, or be rewritten by another process before the generator "
        "resumes.  A snapshot captured before a yield must be re-validated "
        "(or re-bound) before being relied on after it."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        for func in iter_generator_functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self,
        module: ModuleSource,
        func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> typing.Iterator[Finding]:
        #: var -> (line bound, attr description, subject); cleared on
        #: re-bind.  The subject (shared attribute name) feeds the
        #: racer's hazard matching.
        tainted: typing.Dict[str, typing.Tuple[int, str, str]] = {}
        crossed: typing.Set[str] = set()
        reported: typing.Set[str] = set()

        for unit in self._linear_units(func.body):
            has_yield = any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for root in unit
                for n in ast.walk(root)
                if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            )
            # Uses are evaluated before the suspension takes effect for
            # this statement, so check loads first.
            for node in self._walk_unit(unit):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in tainted
                    and node.id in crossed
                    and node.id not in reported
                ):
                    line, source, subject = tainted[node.id]
                    reported.add(node.id)
                    yield module.finding(
                        self, node,
                        f"{node.id!r} snapshots {source} at line {line} and "
                        "is relied on after a yield without re-validation; "
                        "re-probe or re-bind it after resuming",
                        subject=subject,
                    )
            # Rebinding clears the taint; new snapshot binds create it.
            for node in self._walk_unit(unit):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    names = self._target_names(targets)
                    source = self._snapshot_source(node.value) if node.value else None
                    for position, name in enumerate(names):
                        tainted.pop(name, None)
                        crossed.discard(name)
                        # For tuple unpacking of probe() only the first
                        # element (the entry) is the hazardous snapshot.
                        if source is not None and position == 0:
                            tainted[name] = (node.lineno, *source)
            if has_yield:
                crossed.update(tainted)

    @staticmethod
    def _target_names(targets: typing.Sequence[ast.AST]) -> typing.List[str]:
        names: typing.List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
        return names

    @staticmethod
    def _snapshot_source(
        value: typing.Optional[ast.AST],
    ) -> typing.Optional[typing.Tuple[str, str]]:
        """``(description, subject)`` of the state snapshotted, or None.

        The subject is the shared attribute the snapshot reads (the
        cache holding a probed entry, the stateful attribute itself) —
        the name the racer matches against sanitizer hazards.
        """
        if value is None:
            return None
        # yield from cache.probe(key) — the send-value, not a snapshot.
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            inner = value.value
            if isinstance(inner, ast.Call):
                value = inner
            else:
                return None
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            if value.func.attr in _SNAPSHOT_METHODS:
                chain = attribute_chain(value.func)
                base = ".".join(chain[:-1]) if chain else "<cache>"
                subject = chain[-2] if len(chain) >= 2 else value.func.attr
                return f"{base}.{value.func.attr}(...)", subject
            return None
        if isinstance(value, ast.Attribute):
            if value.attr in _STATEFUL_ATTRS:
                chain = attribute_chain(value)
                return (".".join(chain) if chain else value.attr), value.attr
        return None

    @staticmethod
    def _walk_unit(unit: typing.Sequence[ast.AST]) -> typing.Iterator[ast.AST]:
        for root in unit:
            yield from ast.walk(root)

    @staticmethod
    def _linear_units(
        body: typing.Sequence[ast.stmt],
    ) -> typing.Iterator[typing.List[ast.AST]]:
        """Atomic analysis units in source order.

        A simple statement is one unit.  A compound statement
        contributes its header expressions (test, iterable, context
        managers) as one unit, then its nested statements each as their
        own units — so a yield deep in a branch is sequenced where it
        occurs, not attributed to the whole branch.  Branch structure is
        otherwise flattened: a lint-grade approximation that treats
        every branch as taken in sequence.
        """
        recurse = Sim003StaleReadAcrossYield._linear_units
        for stmt in body:
            if isinstance(stmt, ast.If):
                yield [stmt.test]
                yield from recurse(stmt.body)
                yield from recurse(stmt.orelse)
            elif isinstance(stmt, ast.While):
                yield [stmt.test]
                yield from recurse(stmt.body)
                yield from recurse(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield [stmt.target, stmt.iter]
                yield from recurse(stmt.body)
                yield from recurse(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield [
                    node
                    for item in stmt.items
                    for node in (item.context_expr, item.optional_vars)
                    if node is not None
                ]
                yield from recurse(stmt.body)
            elif isinstance(stmt, ast.Try):
                yield from recurse(stmt.body)
                for handler in stmt.handlers:
                    yield from recurse(handler.body)
                yield from recurse(stmt.orelse)
                yield from recurse(stmt.finalbody)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are analysed separately
            else:
                yield [stmt]


SIM_RULES: typing.Tuple[typing.Type[Rule], ...] = (
    Sim001AmbientNondeterminism,
    Sim002BlockingCall,
    Sim003StaleReadAcrossYield,
)
