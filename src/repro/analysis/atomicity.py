"""Interprocedural atomicity rules: SIM004 and SIM005.

Both rules reason about *yield gaps* — spans of a process body across
which another process can run.  SIM003 (:mod:`repro.analysis.rules_sim`)
treats every syntactic ``yield`` as a gap; the rules here consult the
may-yield call graph (:mod:`repro.analysis.callgraph`) so that
``yield from self._helper()`` is a gap exactly when ``_helper`` (or
anything it transitively delegates to) can actually suspend — and so
that the dominant PR 6 write-path bug shape, a check or capture
spanning a call into a yielding helper, is visible at all.

- **SIM004 — check-then-act across a may-yield gap.**  A ``None``
  check or membership test on a ``self``-rooted attribute, followed by
  a gap, followed by an act that relies on the check (dereference,
  subscript, ``pop``/``remove``) without re-validation.  Truthiness
  guards (``while self._leases:``) are deliberately *not* tracked:
  they guard loop continuation, not a specific dereference, and the
  write path's correct sweeper idiom re-reads under exactly such a
  guard.
- **SIM005 — the await-gap capture.**  A local bound from a private
  ``self`` attribute (or an element of one) before a gap and relied on
  after it.  The attribute itself can be rebound by another process at
  every gap; the fix is re-reading ``self._attr`` after resuming.

Findings carry a ``subject`` (the shared attribute's name) so the
racer's dynamic confirmation pass can match them against sanitizer
hazards.

Construct the rules with a project-wide :class:`CallGraph` for
interprocedural precision (``lint_paths(interprocedural=True)`` does);
without one, each rule builds a single-module graph on the fly, which
is exactly as strong on self-contained fixtures.
"""

from __future__ import annotations

import ast
import typing

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.core import (
    Finding,
    ModuleSource,
    Rule,
    attribute_chain,
    is_generator_function,
)
from repro.analysis.rules_sim import _STATEFUL_ATTRS

FunctionNode = typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: One analysis unit: ("test" | "stmt", nodes).  "test" units are
#: If/While headers — where check-then-act guards are established.
Unit = typing.Tuple[str, typing.List[ast.AST]]


def _walk(roots: typing.Iterable[ast.AST]) -> typing.Iterator[ast.AST]:
    """Walk expression/statement roots without entering nested scopes."""
    stack: typing.List[ast.AST] = [r for r in roots if r is not None]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _tagged_units(body: typing.Sequence[ast.stmt]) -> typing.Iterator[Unit]:
    """SIM003's linearized units, with If/While headers tagged "test"."""
    for stmt in body:
        if isinstance(stmt, (ast.If, ast.While)):
            yield ("test", [stmt.test])
            yield from _tagged_units(stmt.body)
            yield from _tagged_units(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield ("stmt", [stmt.target, stmt.iter])
            yield from _tagged_units(stmt.body)
            yield from _tagged_units(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield (
                "stmt",
                [
                    node
                    for item in stmt.items
                    for node in (item.context_expr, item.optional_vars)
                    if node is not None
                ],
            )
            yield from _tagged_units(stmt.body)
        elif isinstance(stmt, ast.Try):
            yield from _tagged_units(stmt.body)
            for handler in stmt.handlers:
                yield from _tagged_units(handler.body)
            yield from _tagged_units(stmt.orelse)
            yield from _tagged_units(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scopes are analysed separately
        else:
            yield ("stmt", [stmt])


def _self_path(node: ast.AST) -> typing.Optional[str]:
    """``self.a.b`` -> ``"self.a.b"``; None for anything else."""
    chain = attribute_chain(node)
    if chain and chain[0] == "self" and len(chain) >= 2:
        return ".".join(chain)
    return None


def _iter_generators_with_class(
    tree: ast.Module,
) -> typing.Iterator[typing.Tuple[typing.Optional[str], FunctionNode]]:
    from repro.analysis.callgraph import _iter_defs

    for cls, node in _iter_defs(tree.body, None):
        if is_generator_function(node):
            yield cls, node


class _GapRule(Rule):
    """Shared machinery: a rule that needs may-yield gap classification."""

    def __init__(self, graph: typing.Optional[CallGraph] = None):
        self._graph = graph

    def _graph_for(self, module: ModuleSource) -> CallGraph:
        if self._graph is not None:
            return self._graph
        return build_callgraph([module])

    @staticmethod
    def _unit_suspends(
        graph: CallGraph,
        path: str,
        cls: typing.Optional[str],
        nodes: typing.Sequence[ast.AST],
    ) -> bool:
        for node in _walk(nodes):
            if isinstance(node, (ast.Yield, ast.Await)):
                return True
            if isinstance(node, ast.YieldFrom) and graph.delegation_may_suspend(
                path, cls, node.value
            ):
                return True
        return False


#: ``pop``/``remove`` on a membership-guarded container act on the
#: tested key; ``discard`` and ``pop(key, default)`` are the race-safe
#: spellings and deliberately excluded.
_MEMBER_ACT_METHODS = {"pop", "remove", "popitem"}


class Sim004CheckThenActAcrossGap(_GapRule):
    """A check invalidated by a may-yield gap before the act it guards."""

    code = "SIM004"
    name = "check-then-act-across-gap"
    rationale = (
        "A None check or membership test on shared state is only as "
        "fresh as the last scheduling point: every yield — including a "
        "yield from into a helper that can suspend — lets another "
        "process rebind the attribute or remove the key.  Acting on a "
        "pre-gap check without re-validating is the interprocedural "
        "generalization of SIM003, and the dominant bug shape in the "
        "update/lease/NOTIFY write path."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        graph = self._graph_for(module)
        for cls, func in _iter_generators_with_class(module.tree):
            yield from self._check_function(module, graph, cls, func)

    def _check_function(
        self,
        module: ModuleSource,
        graph: CallGraph,
        cls: typing.Optional[str],
        func: FunctionNode,
    ) -> typing.Iterator[Finding]:
        #: guarded path -> (kind, guard line); kind "none" or "member"
        guards: typing.Dict[str, typing.Tuple[str, int]] = {}
        crossed: typing.Set[str] = set()
        reported: typing.Set[str] = set()

        for tag, nodes in _tagged_units(func.body):
            # Acts are evaluated against the pre-unit state: a deref in
            # the same unit as the re-check still races (the check
            # happens first only by luck of evaluation order, and the
            # deref is what the finding points at).
            for path, node in self._acts(nodes, guards):
                if path in crossed and path not in reported:
                    kind, line = guards[path]
                    reported.add(path)
                    check_desc = (
                        "was None-checked"
                        if kind == "none"
                        else "had a membership test"
                    )
                    yield module.finding(
                        self,
                        node,
                        f"check-then-act: {path} {check_desc} at line "
                        f"{line}, but a may-yield call intervenes before "
                        "this access; another process can run at every "
                        "yield — re-validate after resuming",
                        subject=path.split(".")[-1],
                    )
            if tag == "test":
                for kind, path, line in self._guards(nodes):
                    guards[path] = (kind, line)
                    crossed.discard(path)
            else:
                # Rebinding the attribute itself (``self._batch = ...``)
                # supersedes the stale check.
                for node in _walk(nodes):
                    if isinstance(node, ast.Attribute) and isinstance(
                        node.ctx, (ast.Store, ast.Del)
                    ):
                        path = _self_path(node)
                        if path is not None:
                            guards.pop(path, None)
                            crossed.discard(path)
            if guards and self._unit_suspends(graph, module.path, cls, nodes):
                crossed.update(guards)

    @staticmethod
    def _guards(
        nodes: typing.Sequence[ast.AST],
    ) -> typing.Iterator[typing.Tuple[str, str, int]]:
        """(kind, path, line) for every recognised check in a test expr.

        Polarity-insensitive: ``is None`` and ``is not None`` both
        register a check (branch flattening already discards which arm
        runs), as do ``in`` and ``not in``.
        """
        for node in _walk(nodes):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            op = node.ops[0]
            left, right = node.left, node.comparators[0]
            if isinstance(op, (ast.Is, ast.IsNot)):
                if isinstance(right, ast.Constant) and right.value is None:
                    chain_side: typing.Optional[ast.AST] = left
                elif isinstance(left, ast.Constant) and left.value is None:
                    chain_side = right
                else:
                    continue
                path = _self_path(chain_side)
                if path is not None:
                    yield "none", path, node.lineno
            elif isinstance(op, (ast.In, ast.NotIn)):
                path = _self_path(right)
                if path is not None:
                    yield "member", path, node.lineno

    @staticmethod
    def _acts(
        nodes: typing.Sequence[ast.AST],
        guards: typing.Mapping[str, typing.Tuple[str, int]],
    ) -> typing.Iterator[typing.Tuple[str, ast.AST]]:
        """(guarded path, node) for every act that relies on its check."""
        if not guards:
            return
        for node in _walk(nodes):
            if isinstance(node, ast.Subscript):
                # d[k] after "k in d" or after "d is not None".
                base = _self_path(node.value)
                if base in guards:
                    yield base, node
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = _self_path(node.func.value)
                if (
                    base in guards
                    and guards[base][0] == "member"
                    and node.func.attr in _MEMBER_ACT_METHODS
                    and not (node.func.attr == "pop" and len(node.args) >= 2)
                ):
                    yield base, node
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                # obj.field after "obj is not None": a dereference.
                base = _self_path(node.value)
                if base in guards and guards[base][0] == "none":
                    # The membership-guard equivalent (d.items() after
                    # "k in d") is not an act: it does not rely on the
                    # tested key still being present.
                    yield base, node


class Sim005AwaitGapCapture(_GapRule):
    """A pre-gap capture of private shared state, relied on post-gap."""

    code = "SIM005"
    name = "await-gap-capture"
    rationale = (
        "A local bound from self._attr is a snapshot: after any "
        "may-yield call — a yield, or a yield from into a suspending "
        "helper — the attribute (or the element it aliased) can have "
        "been rebound by another process.  Using the stale capture "
        "instead of re-reading is the classic await-gap bug; SIM003 "
        "covers the well-known stateful names, this rule covers every "
        "private self attribute the call graph can see a gap across."
    )

    def check(self, module: ModuleSource) -> typing.Iterator[Finding]:
        graph = self._graph_for(module)
        for cls, func in _iter_generators_with_class(module.tree):
            yield from self._check_function(module, graph, cls, func)

    def _check_function(
        self,
        module: ModuleSource,
        graph: CallGraph,
        cls: typing.Optional[str],
        func: FunctionNode,
    ) -> typing.Iterator[Finding]:
        #: var -> (line bound, captured source, subject attribute)
        tainted: typing.Dict[str, typing.Tuple[int, str, str]] = {}
        crossed: typing.Set[str] = set()
        reported: typing.Set[str] = set()

        for _tag, nodes in _tagged_units(func.body):
            # Loads first: uses in the suspending statement itself are
            # evaluated before the suspension takes effect.
            for node in _walk(nodes):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in tainted
                    and node.id in crossed
                    and node.id not in reported
                ):
                    line, source, subject = tainted[node.id]
                    reported.add(node.id)
                    yield module.finding(
                        self,
                        node,
                        f"{node.id!r} captures {source} at line {line} "
                        "before a may-yield call and is used after it "
                        "without re-validation (await-gap); re-read "
                        f"{source} after resuming",
                        subject=subject,
                    )
            for node in _walk(nodes):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    names = self._target_names(targets)
                    source = self._capture_source(node.value)
                    for position, name in enumerate(names):
                        tainted.pop(name, None)
                        crossed.discard(name)
                        if source is not None and position == 0:
                            tainted[name] = (node.lineno, *source)
            if tainted and self._unit_suspends(
                graph, module.path, cls, nodes
            ):
                crossed.update(tainted)

    @staticmethod
    def _target_names(
        targets: typing.Sequence[ast.AST],
    ) -> typing.List[str]:
        names: typing.List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
        return names

    @staticmethod
    def _capture_source(
        value: typing.Optional[ast.AST],
    ) -> typing.Optional[typing.Tuple[str, str]]:
        """(description, subject attr) if ``value`` snapshots shared state.

        Private ``self`` attributes only, minus the SIM003 stateful
        names — the two rules partition the namespace instead of
        double-reporting.
        """
        if value is None:
            return None
        if isinstance(value, ast.Subscript):
            chain = attribute_chain(value.value)
            suffix = "[...]"
        else:
            chain = attribute_chain(value)
            suffix = ""
        if not chain or chain[0] != "self" or len(chain) < 2:
            return None
        attr = chain[-1]
        if not attr.startswith("_") or attr in _STATEFUL_ATTRS:
            return None
        return ".".join(chain) + suffix, attr


def interprocedural_rules(
    graph: typing.Optional[CallGraph] = None,
) -> typing.List[Rule]:
    """The rules that join the default set under ``--interprocedural``."""
    return [Sim004CheckThenActAcrossGap(graph), Sim005AwaitGapCapture(graph)]


ATOMICITY_RULES: typing.Tuple[typing.Type[Rule], ...] = (
    Sim004CheckThenActAcrossGap,
    Sim005AwaitGapCapture,
)
