"""Clearinghouse client stub.

Speaks Courier to a Clearinghouse server, presenting credentials on
every call.  The calibrated end-to-end retrieve cost is ~156 ms: "each
access is authenticated, and virtually all data is retrieved from
disk".
"""

from __future__ import annotations

import typing

from repro.clearinghouse.auth import Credentials
from repro.clearinghouse.errors import (
    AuthenticationFailed,
    CHError,
    NoSuchObject,
    NoSuchProperty,
)
from repro.clearinghouse.names import CHName
from repro.clearinghouse.server import (
    AddItem,
    CHReply,
    DeleteItem,
    RETRIEVE_REQUEST_IDL,
    RetrieveItem,
    STATUS_OK,
)
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport
from repro.serial import CourierRepresentation, HandcodedMarshaller

_STATUS_TO_ERROR: typing.Dict[int, typing.Type[CHError]] = {
    AuthenticationFailed.status: AuthenticationFailed,
    NoSuchObject.status: NoSuchObject,
    NoSuchProperty.status: NoSuchProperty,
}


class ClearinghouseClient:
    """Client-side access to one Clearinghouse server."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        server: Endpoint,
        credentials: Credentials,
        name: str = "ch-client",
    ):
        self.host = host
        self.env = host.env
        self.transport = transport
        self.server = server
        self.credentials = credentials
        self.name = name
        self._request_m = HandcodedMarshaller(
            RETRIEVE_REQUEST_IDL, representation=CourierRepresentation()
        )

    def _roundtrip(self, request: object, request_size: int) -> typing.Generator:
        reply = yield from self.transport.request(
            self.host, self.server, request, request_size
        )
        if not isinstance(reply, CHReply):
            raise CHError(f"unexpected reply {reply!r}")
        if reply.status != STATUS_OK:
            error_cls = _STATUS_TO_ERROR.get(reply.status, CHError)
            raise error_cls(f"server returned status {reply.status}")
        return reply

    def _request_size(self, name: CHName, prop: str) -> typing.Generator:
        data, cost = self._request_m.encode(
            {
                "name": str(name),
                "property": prop,
                "user": self.credentials.user,
                "proof": self.credentials.proof(),
            }
        )
        yield from self.host.cpu.compute(cost)
        return len(data)

    # ------------------------------------------------------------------
    def retrieve(
        self, name: typing.Union[str, CHName], prop: str
    ) -> typing.Generator:
        """Fetch one property value; raises CH errors on failure."""
        name = name if isinstance(name, CHName) else CHName.parse(name)
        size = yield from self._request_size(name, prop)
        self.env.stats.counter(f"ch.{self.name}.lookups").increment()
        reply = yield from self._roundtrip(
            RetrieveItem(name, prop, self.credentials), size
        )
        # Courier demarshalling of the small reply.
        yield from self.host.cpu.compute(0.65)
        return reply.value

    def lookup_address(self, name: typing.Union[str, CHName]) -> typing.Generator:
        """Name-to-address: the 156 ms operation the paper measures."""
        value = yield from self.retrieve(name, "address")
        return ".".join(str(b) for b in value)

    def register(
        self, name: typing.Union[str, CHName], prop: str, value: bytes
    ) -> typing.Generator:
        name = name if isinstance(name, CHName) else CHName.parse(name)
        size = yield from self._request_size(name, prop)
        yield from self._roundtrip(
            AddItem(name, prop, value, self.credentials), size + len(value)
        )

    def delete(self, name: typing.Union[str, CHName], prop: str) -> typing.Generator:
        name = name if isinstance(name, CHName) else CHName.parse(name)
        size = yield from self._request_size(name, prop)
        yield from self._roundtrip(DeleteItem(name, prop, self.credentials), size)
