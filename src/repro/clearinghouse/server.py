"""The Clearinghouse server process.

Request handling order mirrors the original's cost profile: first
authenticate (CPU + credential-database disk access), then touch the
property database on disk, then process and reply in Courier format.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.clearinghouse.auth import Credentials, CredentialStore
from repro.clearinghouse.database import PropertyDatabase
from repro.clearinghouse.errors import AuthenticationFailed, CHError
from repro.clearinghouse.names import CHName
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint
from repro.net.host import Host, Service
from repro.serial import (
    CourierRepresentation,
    HandcodedMarshaller,
    OpaqueType,
    StringType,
    StructType,
    U32Type,
)

STATUS_OK = 0

RETRIEVE_REQUEST_IDL = StructType(
    "CHRetrieveRequest",
    [
        ("name", StringType(128)),
        ("property", StringType(40)),
        ("user", StringType(40)),
        ("proof", OpaqueType(32)),
    ],
)
RETRIEVE_RESPONSE_IDL = StructType(
    "CHRetrieveResponse",
    [("status", U32Type()), ("value", OpaqueType(256))],
)
REGISTER_REQUEST_IDL = StructType(
    "CHRegisterRequest",
    [
        ("name", StringType(128)),
        ("property", StringType(40)),
        ("value", OpaqueType(256)),
        ("user", StringType(40)),
        ("proof", OpaqueType(32)),
    ],
)
SIMPLE_RESPONSE_IDL = StructType("CHSimpleResponse", [("status", U32Type())])


@dataclasses.dataclass
class RetrieveItem:
    """Fetch one property of one object."""
    name: CHName
    prop: str
    credentials: typing.Optional[Credentials]


@dataclasses.dataclass
class AddItem:
    """Register (or extend) an object with one property."""
    name: CHName
    prop: str
    value: bytes
    credentials: typing.Optional[Credentials]


@dataclasses.dataclass
class DeleteItem:
    """Remove one property from an object."""
    name: CHName
    prop: str
    credentials: typing.Optional[Credentials]


@dataclasses.dataclass
class CHReply:
    """Status plus (for retrieves) the property value."""
    status: int
    value: bytes = b""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class ClearinghouseServer(Service):
    """One Clearinghouse serving a set of (domain, organization) pairs."""

    def __init__(
        self,
        host: Host,
        database: typing.Optional[PropertyDatabase] = None,
        credential_store: typing.Optional[CredentialStore] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "",
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.name = name or f"clearinghouse@{host.name}"
        self.database = database if database is not None else PropertyDatabase()
        self.credentials = (
            credential_store if credential_store is not None else CredentialStore()
        )
        self.endpoint: typing.Optional[Endpoint] = None
        courier = CourierRepresentation()
        self._retrieve_reply_m = HandcodedMarshaller(
            RETRIEVE_RESPONSE_IDL, representation=courier
        )
        self._simple_reply_m = HandcodedMarshaller(
            SIMPLE_RESPONSE_IDL, representation=courier
        )

    def listen(self, port: int = WELL_KNOWN_PORTS["clearinghouse"]) -> Endpoint:
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    # ------------------------------------------------------------------
    def _authenticate(self, credentials: typing.Optional[Credentials]):
        """Charge the full authentication cost, then verify.

        "each access is authenticated" — the check happens even for
        requests that will ultimately fail, and its cost (CPU plus a
        disk access for the credential database) is charged every time.
        """
        cal = self.calibration
        yield from self.host.cpu.compute(cal.ch_auth_cpu_ms)
        yield from self.host.disk.use(cal.ch_auth_disk_ms)
        if not self.credentials.verify(credentials):
            raise AuthenticationFailed(
                getattr(credentials, "user", "<no credentials>")
            )

    def handle(self, datagram, responder):
        request = datagram.payload
        cal = self.calibration
        env = self.env
        try:
            yield from self._authenticate(getattr(request, "credentials", None))
            if isinstance(request, RetrieveItem):
                env.stats.counter(f"ch.{self.name}.retrieves").increment()
                # The data lives on disk; absence is only discovered by
                # reading, so the disk access happens either way.
                yield from self.host.disk.use(cal.ch_data_disk_ms)
                yield from self.host.cpu.compute(cal.ch_process_ms)
                value = self.database.retrieve(request.name, request.prop)
                size = self.database.record_size(request.name, request.prop)
                reply = CHReply(STATUS_OK, value)
                data, cost = self._retrieve_reply_m.encode(
                    {"status": STATUS_OK, "value": value}
                )
                yield from self.host.cpu.compute(cost)
                env.trace.emit(
                    "clearinghouse",
                    f"{self.name}: retrieve {request.name} {request.prop} "
                    f"({size} bytes from disk)",
                )
                responder(reply, len(data))
            elif isinstance(request, AddItem):
                env.stats.counter(f"ch.{self.name}.adds").increment()
                yield from self.host.disk.use(cal.ch_data_disk_ms)
                yield from self.host.cpu.compute(cal.ch_process_ms)
                self.database.register(request.name, {request.prop: request.value})
                data, cost = self._simple_reply_m.encode({"status": STATUS_OK})
                yield from self.host.cpu.compute(cost)
                responder(CHReply(STATUS_OK), len(data))
            elif isinstance(request, DeleteItem):
                env.stats.counter(f"ch.{self.name}.deletes").increment()
                yield from self.host.disk.use(cal.ch_data_disk_ms)
                yield from self.host.cpu.compute(cal.ch_process_ms)
                self.database.delete_property(request.name, request.prop)
                data, cost = self._simple_reply_m.encode({"status": STATUS_OK})
                yield from self.host.cpu.compute(cost)
                responder(CHReply(STATUS_OK), len(data))
            else:
                responder(CHReply(CHError.status), 8)
        except CHError as err:
            data, cost = self._simple_reply_m.encode({"status": err.status})
            yield from self.host.cpu.compute(cost)
            env.trace.emit("clearinghouse", f"{self.name}: error {err!r}")
            responder(CHReply(err.status), len(data))

    def describe(self) -> str:
        return f"ClearinghouseServer({self.name}; {len(self.database)} objects)"
