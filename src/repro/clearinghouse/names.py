"""Three-part Clearinghouse names: ``object:domain:organization``."""

from __future__ import annotations

import dataclasses
import typing

MAX_PART = 40  # Clearinghouse limits name parts to 40 characters


@dataclasses.dataclass(frozen=True, order=True)
class CHName:
    """A distributed three-level name, case-insensitive like the original."""

    object_part: str
    domain: str
    organization: str

    def __post_init__(self) -> None:
        for label, part in (
            ("object", self.object_part),
            ("domain", self.domain),
            ("organization", self.organization),
        ):
            if not part:
                raise ValueError(f"empty {label} part in Clearinghouse name")
            if len(part) > MAX_PART:
                raise ValueError(f"{label} part too long ({len(part)} > {MAX_PART})")
            if ":" in part:
                raise ValueError(f"{label} part contains ':': {part!r}")
        object.__setattr__(self, "object_part", self.object_part.lower())
        object.__setattr__(self, "domain", self.domain.lower())
        object.__setattr__(self, "organization", self.organization.lower())

    @classmethod
    def parse(cls, text: str) -> "CHName":
        """Parse ``object:domain:organization``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"Clearinghouse name needs 3 colon-separated parts: {text!r}"
            )
        return cls(*parts)

    @property
    def domain_key(self) -> typing.Tuple[str, str]:
        """(domain, organization): the administration unit."""
        return (self.domain, self.organization)

    def __str__(self) -> str:
        return f"{self.object_part}:{self.domain}:{self.organization}"
