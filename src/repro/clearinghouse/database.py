"""The Clearinghouse property database.

Each object maps to a property list; values are uninterpreted bytes.
The database is disk-resident: the *server* charges a disk access per
retrieval, using the size estimates this module provides.
"""

from __future__ import annotations

import typing

from repro.clearinghouse.errors import NoSuchObject, NoSuchProperty
from repro.clearinghouse.names import CHName


class PropertyDatabase:
    """All objects of one Clearinghouse server."""

    def __init__(self) -> None:
        self._objects: typing.Dict[CHName, typing.Dict[str, bytes]] = {}

    def register(self, name: CHName, properties: typing.Mapping[str, bytes]) -> None:
        """Create or extend an object with the given properties."""
        if not properties:
            raise ValueError("register needs at least one property")
        for prop, value in properties.items():
            if not isinstance(value, bytes):
                raise TypeError(f"property {prop!r} value must be bytes")
        self._objects.setdefault(name, {}).update(properties)

    def retrieve(self, name: CHName, prop: str) -> bytes:
        obj = self._objects.get(name)
        if obj is None:
            raise NoSuchObject(str(name))
        if prop not in obj:
            raise NoSuchProperty(f"{name} has no property {prop!r}")
        return obj[prop]

    def delete_property(self, name: CHName, prop: str) -> None:
        obj = self._objects.get(name)
        if obj is None:
            raise NoSuchObject(str(name))
        if prop not in obj:
            raise NoSuchProperty(f"{name} has no property {prop!r}")
        del obj[prop]
        if not obj:
            del self._objects[name]

    def delete_object(self, name: CHName) -> None:
        if name not in self._objects:
            raise NoSuchObject(str(name))
        del self._objects[name]

    def contains(self, name: CHName) -> bool:
        return name in self._objects

    def properties_of(self, name: CHName) -> typing.List[str]:
        obj = self._objects.get(name)
        if obj is None:
            raise NoSuchObject(str(name))
        return sorted(obj)

    def objects_in_domain(
        self, domain: str, organization: str
    ) -> typing.List[CHName]:
        key = (domain.lower(), organization.lower())
        return sorted(n for n in self._objects if n.domain_key == key)

    def record_size(self, name: CHName, prop: str) -> int:
        """Bytes read from disk for one retrieval (value + overhead)."""
        return len(self.retrieve(name, prop)) + 64

    def __len__(self) -> int:
        return len(self._objects)
