"""Clearinghouse substrate: the Xerox name service.

The Clearinghouse [Oppen & Dalal 1983] serves the Xerox D-machine
(XDE) side of the HCS testbed.  Two properties matter to the paper's
measurements, and both are modelled here:

- "each access is authenticated" — every request verifies credentials,
  costing CPU plus a disk access to the credential database; and
- "virtually all data is retrieved from disk" — property values live on
  the simulated disk, not in primary memory.

Together these make a Clearinghouse lookup ~156 ms where BIND takes 27.
Names are three-part ``object:domain:organization`` structures with
property lists, and the wire format is Courier, not XDR.
"""

from repro.clearinghouse.names import CHName
from repro.clearinghouse.database import PropertyDatabase
from repro.clearinghouse.auth import Credentials, CredentialStore
from repro.clearinghouse.errors import (
    AuthenticationFailed,
    CHError,
    NoSuchObject,
    NoSuchProperty,
)
from repro.clearinghouse.server import ClearinghouseServer
from repro.clearinghouse.client import ClearinghouseClient

__all__ = [
    "AuthenticationFailed",
    "CHError",
    "CHName",
    "ClearinghouseClient",
    "ClearinghouseServer",
    "CredentialStore",
    "Credentials",
    "NoSuchObject",
    "NoSuchProperty",
    "PropertyDatabase",
]
