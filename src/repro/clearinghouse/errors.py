"""Clearinghouse failure modes."""


class CHError(Exception):
    """Base class for Clearinghouse failures."""

    status = 1


class AuthenticationFailed(CHError):
    """Credentials missing, unknown, or wrong."""

    status = 2


class NoSuchObject(CHError):
    """The three-part name is not registered."""

    status = 3


class NoSuchProperty(CHError):
    """The object exists but lacks the requested property."""

    status = 4
