"""Clearinghouse authentication.

Every Clearinghouse access carries credentials, and verifying them is
half of why lookups cost 156 ms: the credential database is itself
disk-resident.  The simulation charges CPU (digest check) plus a disk
access per verification.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing


def _digest(user: str, secret: str) -> bytes:
    return hashlib.sha256(f"{user}\x00{secret}".encode("utf-8")).digest()


@dataclasses.dataclass(frozen=True)
class Credentials:
    """What a client presents: an identity plus a shared secret."""

    user: str
    secret: str

    def proof(self) -> bytes:
        return _digest(self.user, self.secret)


class CredentialStore:
    """Server-side registry of identities and their secrets."""

    def __init__(self) -> None:
        self._proofs: typing.Dict[str, bytes] = {}

    def enroll(self, user: str, secret: str) -> None:
        if not user:
            raise ValueError("empty user name")
        self._proofs[user] = _digest(user, secret)

    def revoke(self, user: str) -> bool:
        return self._proofs.pop(user, None) is not None

    def verify(self, credentials: typing.Optional[Credentials]) -> bool:
        """Check credentials against the store (pure check, no costs)."""
        if credentials is None:
            return False
        expected = self._proofs.get(credentials.user)
        return expected is not None and expected == credentials.proof()

    def __len__(self) -> int:
        return len(self._proofs)
