"""Simulated internetwork: hosts, Ethernet segments, transports.

The HCS testbed in the paper is a set of heterogeneous machines
(MicroVAX-IIs, Suns, Xerox D-machines, IBM RTs, Tektronix workstations)
joined by an Ethernet, speaking Sun RPC, Courier RPC, and TCP/UDP
message passing.  This package provides the equivalent simulated
fabric:

- :class:`~repro.net.host.Host` — a machine with a CPU, a disk, a
  system type, bound services, and an up/down state for failure
  injection.
- :class:`~repro.net.ethernet.Ethernet` — a shared segment with a
  calibrated latency model and optional message loss.
- :class:`~repro.net.transport.DatagramTransport` /
  :class:`~repro.net.transport.StreamTransport` — UDP-like and
  TCP-like delivery built on a segment.
- :class:`~repro.net.internet.Internetwork` — the topology: hosts,
  segments, and name/address registries.
"""

from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.errors import (
    TRANSIENT_ERRORS,
    ConnectionRefused,
    HostDown,
    NetworkError,
    NoRouteToHost,
    PortInUse,
    TransportTimeout,
    is_transient,
)
from repro.net.messages import Datagram
from repro.net.ethernet import Ethernet
from repro.net.host import Host, Service
from repro.net.transport import DatagramTransport, StreamTransport, Transport
from repro.net.internet import Internetwork

__all__ = [
    "ConnectionRefused",
    "Datagram",
    "DatagramTransport",
    "Endpoint",
    "Ethernet",
    "Host",
    "HostDown",
    "Internetwork",
    "NetworkAddress",
    "NetworkError",
    "NoRouteToHost",
    "PortInUse",
    "Service",
    "StreamTransport",
    "TRANSIENT_ERRORS",
    "Transport",
    "TransportTimeout",
    "is_transient",
]
