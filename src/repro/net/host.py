"""Simulated hosts and the services bound on them.

A :class:`Host` models one machine in the HCS testbed: it has a name, an
address, a *system type* (the heterogeneity axis the paper cares about),
a CPU and a disk, and a table of services bound to ports.  Hosts can
crash and restart, which the failure-injection tests use.
"""

from __future__ import annotations

import typing

from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.errors import PortInUse
from repro.sim.kernel import Environment
from repro.sim.resources import CPU, Disk

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.messages import Datagram


class Service:
    """Base class for anything bound to a host port.

    Subclasses implement :meth:`handle`, a process generator invoked for
    each delivered message.  The generator may yield simulation events
    (CPU time, disk reads, nested calls) and should use ``responder`` to
    send any reply.
    """

    def handle(
        self,
        datagram: "Datagram",
        responder: typing.Callable[[object, int], object],
    ) -> typing.Generator:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class Host:
    """One machine: CPU + disk + network presence + bound services."""

    def __init__(
        self,
        env: Environment,
        name: str,
        address: NetworkAddress,
        system_type: str = "unix",
        cpu_speed: float = 1.0,
        disk_access_ms: float = 30.0,
    ):
        self.env = env
        self.name = name
        self.address = address
        self.system_type = system_type
        self.cpu = CPU(env, name=f"{name}.cpu", speed_factor=cpu_speed)
        self.disk = Disk(env, name=f"{name}.disk", access_ms=disk_access_ms)
        self.services: typing.Dict[int, Service] = {}
        self._up = True
        self._next_ephemeral = 32768

    # ------------------------------------------------------------------
    # Liveness (failure injection)
    # ------------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self._up

    def crash(self) -> None:
        """Take the host down; in-flight messages to it are lost."""
        self._up = False

    def restart(self) -> None:
        """Bring the host back up (services stay bound: warm restart)."""
        self._up = True

    # ------------------------------------------------------------------
    # Ports and services
    # ------------------------------------------------------------------
    def bind(self, port: int, service: Service) -> Endpoint:
        """Attach ``service`` to ``port``; returns its endpoint."""
        if port in self.services:
            raise PortInUse(f"{self.name}:{port} already bound")
        if not isinstance(service, Service):
            raise TypeError(f"expected a Service, got {type(service).__name__}")
        self.services[port] = service
        return Endpoint(self.address, port)

    def unbind(self, port: int) -> None:
        if port not in self.services:
            raise KeyError(f"{self.name}:{port} is not bound")
        del self.services[port]

    def service_at(self, port: int) -> typing.Optional[Service]:
        return self.services.get(port)

    def ephemeral_endpoint(self) -> Endpoint:
        """A fresh client-side endpoint (for reply routing)."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 32768
        return Endpoint(self.address, port)

    def __repr__(self) -> str:
        state = "up" if self._up else "DOWN"
        return f"<Host {self.name} ({self.system_type}) {self.address} {state}>"
