"""Transports: datagram (UDP-like) and stream (TCP-like) delivery.

The HRPC prototype in the paper mixes and matches transport components
(Sun RPC over UDP, Courier over SPP/TCP, raw TCP and UDP message
passing).  Both transports here deliver :class:`Datagram` objects to a
:class:`~repro.net.host.Service` bound on the destination host and
support request/response with reply correlation, differing in their
failure behaviour:

- **DatagramTransport**: unreliable; messages to dead hosts or unbound
  ports vanish; requests retransmit a few times and then raise
  :class:`TransportTimeout`.
- **StreamTransport**: connection-oriented; connecting to a dead host
  raises :class:`HostDown`, to an unbound port :class:`ConnectionRefused`,
  and delivery is reliable once connected (at the cost of an extra
  round-trip of setup latency on each exchange).
"""

from __future__ import annotations

import typing

from repro.net.errors import (
    ConnectionRefused,
    HostDown,
    NoRouteToHost,
    TransportTimeout,
)
from repro.net.host import Host
from repro.net.messages import Datagram
from repro.net.addresses import Endpoint

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.internet import Internetwork


class RemoteCallError(Exception):
    """An exception raised by the remote service, carried back to the caller.

    The original exception is available as ``__cause__``-style chaining
    via the ``remote_exception`` attribute.
    """

    def __init__(self, remote_exception: BaseException):
        super().__init__(f"remote service raised {remote_exception!r}")
        self.remote_exception = remote_exception


class Transport:
    """Common machinery for both transports."""

    #: default request timeout (ms); generous relative to testbed RTTs
    DEFAULT_TIMEOUT_MS = 2000.0

    def __init__(self, internet: "Internetwork", name: str):
        self.internet = internet
        self.env = internet.env
        self.name = name

    # -- one-way ---------------------------------------------------------
    def send(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        reply_to: typing.Optional[Endpoint] = None,
        reply_sink: typing.Optional[typing.Callable[[object, int], None]] = None,
    ) -> typing.Generator:
        """Fire-and-forget delivery (may silently vanish on datagrams)."""
        raise NotImplementedError

    # -- request/response --------------------------------------------------
    def request(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        timeout_ms: typing.Optional[float] = None,
    ) -> typing.Generator:
        """Send a request and yield until the reply payload arrives.

        Returns the reply payload; raises a network error on failure, or
        :class:`RemoteCallError` if the remote service itself raised.
        """
        raise NotImplementedError

    # -- internals --------------------------------------------------------
    def _wire_delay(self, src: Host, dst_address: object, size_bytes: int) -> float:
        """Sampled latency along the route; raises NoRouteToHost."""
        return self.internet.path_delay(src.address, dst_address, size_bytes)

    def _deliver(
        self,
        datagram: Datagram,
        reply_event,
    ) -> typing.Generator:
        """Run after the wire delay: hand the message to the bound service.

        ``reply_event`` (may be None for one-way sends) is failed or
        succeeded according to what the service does.
        """
        env = self.env
        dst_host = self.internet.host_at(datagram.destination.address)
        if dst_host is None or not dst_host.is_up:
            # Message to a dead host: datagram semantics say it vanishes.
            env.trace.emit(
                "net", f"lost: {datagram} (host down/unknown)", transport=self.name
            )
            return
        service = dst_host.service_at(datagram.destination.port)
        if service is None:
            env.trace.emit(
                "net", f"lost: {datagram} (no service)", transport=self.name
            )
            return
        env.stats.counter(f"net.{self.name}.delivered").increment()

        replied = []

        def responder(payload: object, size_bytes: int = 0) -> None:
            """Send the reply back across the wire to the requester."""
            if reply_event is None:
                return
            if replied:
                raise RuntimeError("service replied twice to one request")
            replied.append(True)

            def reply_trip():
                delay = self._wire_delay(
                    dst_host, datagram.source.address, size_bytes
                )
                yield env.timeout(delay)
                src = self.internet.host_at(datagram.source.address)
                if src is None or not src.is_up:
                    env.trace.emit("net", "reply lost: requester down")
                    return
                if not reply_event.triggered:
                    reply_event.succeed(payload)

            env.process(reply_trip(), name=f"{self.name}.reply")

        def run_handler():
            try:
                yield from service.handle(datagram, responder)
            except BaseException as exc:  # noqa: BLE001 - carried to caller
                if reply_event is not None and not reply_event.triggered:
                    reply_event.fail(RemoteCallError(exc))
                else:
                    raise

        env.process(run_handler(), name=f"{self.name}.handler")
        return
        yield  # pragma: no cover - makes this a generator


class DatagramTransport(Transport):
    """Unreliable datagram delivery with retransmission on request()."""

    def __init__(
        self,
        internet: "Internetwork",
        name: str = "udp",
        retries: int = 3,
        retry_timeout_ms: float = 500.0,
    ):
        super().__init__(internet, name)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.retry_timeout_ms = retry_timeout_ms

    def send(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        reply_to: typing.Optional[Endpoint] = None,
        reply_event=None,
    ) -> typing.Generator:
        if not src_host.is_up:
            raise HostDown(f"source host {src_host.name} is down")
        datagram = Datagram(
            source=reply_to or src_host.ephemeral_endpoint(),
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            reply_to=reply_to,
            msg_id=self.internet.next_msg_id(),
        )
        segment_drop = self.internet.segment_would_drop(
            src_host.address, destination.address
        )
        delay = self._wire_delay(src_host, destination.address, size_bytes)
        yield self.env.timeout(delay)
        if segment_drop:
            self.env.trace.emit("net", f"dropped on wire: {datagram}")
            return
        yield from self._deliver(datagram, reply_event)

    def broadcast(
        self,
        src_host: Host,
        port: int,
        payload: object,
        size_bytes: int = 0,
        wait_ms: float = 100.0,
        first_only: bool = False,
    ) -> typing.Generator:
        """Send to every host on the source's segment; gather replies.

        Models the multicast location technique [Cheriton & Mann 1984].
        Returns the list of reply payloads received within ``wait_ms``
        (or just the first, if ``first_only``).  Every host on the wire
        receives and processes the packet — the cost that makes
        broadcast-based location unattractive at scale.
        """
        if not src_host.is_up:
            raise HostDown(f"source host {src_host.name} is down")
        env = self.env
        segment, _ = self.internet._route(src_host.address, src_host.address)
        replies: typing.List[object] = []
        first = env.event()

        def fanout(target):
            datagram = Datagram(
                source=src_host.ephemeral_endpoint(),
                destination=Endpoint(target.address, port),
                payload=payload,
                size_bytes=size_bytes,
                msg_id=self.internet.next_msg_id(),
            )
            delay = self._wire_delay(src_host, target.address, size_bytes)
            yield env.timeout(delay)
            if segment.would_drop(src_host.address, target.address):
                return
            collector = env.event()
            collector._add_callback(self._collect_into(replies, first))
            yield from self._deliver(datagram, collector)

        for target in segment.hosts:
            if target is src_host:
                continue
            env.process(fanout(target), name=f"{self.name}.bcast")
        env.stats.counter(f"net.{self.name}.broadcasts").increment()
        if first_only:
            timer = env.timeout(wait_ms)
            yield env.any_of([first, timer])
            return replies[:1]
        yield env.timeout(wait_ms)
        return list(replies)

    @staticmethod
    def _collect_into(replies: typing.List[object], first):
        def callback(event):
            if not event.ok:
                event.defuse()
                return
            replies.append(event._value)
            if not first.triggered:
                first.succeed(event._value)

        return callback

    def request(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        timeout_ms: typing.Optional[float] = None,
    ) -> typing.Generator:
        env = self.env
        deadline = timeout_ms if timeout_ms is not None else self.retry_timeout_ms
        reply_to = src_host.ephemeral_endpoint()
        last_error: typing.Optional[Exception] = None
        for attempt in range(self.retries + 1):
            reply_event = env.event()
            try:
                yield from self.send(
                    src_host,
                    destination,
                    payload,
                    size_bytes,
                    reply_to=reply_to,
                    reply_event=reply_event,
                )
            except NoRouteToHost:
                raise
            timer = env.timeout(deadline)
            outcome = env.any_of([reply_event, timer])
            try:
                yield outcome
            except RemoteCallError:
                raise
            if reply_event.triggered:
                return reply_event.value
            env.stats.counter(f"net.{self.name}.retransmits").increment()
            last_error = TransportTimeout(
                f"no reply from {destination} after attempt {attempt + 1}"
            )
            # Abandon the stale reply event; a late reply is ignored.
            reply_event.defuse()
        raise last_error or TransportTimeout(str(destination))


class StreamTransport(Transport):
    """Reliable, connection-oriented delivery (TCP-like).

    Each exchange pays one extra round trip of connection setup, the
    price of reliability the paper's TCP-based systems paid.
    """

    def __init__(self, internet: "Internetwork", name: str = "tcp"):
        super().__init__(internet, name)

    def _connect(self, src_host: Host, destination: Endpoint) -> typing.Generator:
        """Connection setup: one round trip; validates the far end."""
        if not src_host.is_up:
            raise HostDown(f"source host {src_host.name} is down")
        rtt = self._wire_delay(src_host, destination.address, 64) + self._wire_delay(
            src_host, destination.address, 64
        )
        yield self.env.timeout(rtt)
        dst_host = self.internet.host_at(destination.address)
        if dst_host is None or not dst_host.is_up:
            raise HostDown(f"{destination.address} unreachable")
        if dst_host.service_at(destination.port) is None:
            raise ConnectionRefused(str(destination))

    def send(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        reply_to: typing.Optional[Endpoint] = None,
        reply_event=None,
    ) -> typing.Generator:
        yield from self._connect(src_host, destination)
        datagram = Datagram(
            source=reply_to or src_host.ephemeral_endpoint(),
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            reply_to=reply_to,
            msg_id=self.internet.next_msg_id(),
        )
        delay = self._wire_delay(src_host, destination.address, size_bytes)
        yield self.env.timeout(delay)
        # Reliable: destination validated at connect time; if it crashed
        # between connect and transfer, surface the failure loudly.
        dst_host = self.internet.host_at(destination.address)
        if dst_host is None or not dst_host.is_up:
            raise HostDown(f"{destination.address} died mid-transfer")
        yield from self._deliver(datagram, reply_event)

    def request(
        self,
        src_host: Host,
        destination: Endpoint,
        payload: object,
        size_bytes: int = 0,
        timeout_ms: typing.Optional[float] = None,
    ) -> typing.Generator:
        env = self.env
        deadline = timeout_ms if timeout_ms is not None else self.DEFAULT_TIMEOUT_MS
        reply_to = src_host.ephemeral_endpoint()
        reply_event = env.event()
        yield from self.send(
            src_host,
            destination,
            payload,
            size_bytes,
            reply_to=reply_to,
            reply_event=reply_event,
        )
        timer = env.timeout(deadline)
        yield env.any_of([reply_event, timer])
        if reply_event.triggered:
            return reply_event.value
        reply_event.defuse()
        raise TransportTimeout(f"no reply from {destination} within {deadline} ms")
