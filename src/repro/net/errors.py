"""Network-layer exceptions and their transient/permanent taxonomy."""

import typing


class NetworkError(Exception):
    """Base class for all simulated network failures."""


class HostDown(NetworkError):
    """The destination host is crashed or powered off."""


class NoRouteToHost(NetworkError):
    """No segment path exists between source and destination."""


class ConnectionRefused(NetworkError):
    """No service is bound to the destination port (stream transport)."""


class TransportTimeout(NetworkError):
    """A reliable operation did not complete within its deadline."""


class PortInUse(NetworkError):
    """Attempt to bind a port that already has a service."""


#: Failures worth retrying: the condition may clear on its own (a lost
#: datagram, a crashed host that restarts, a service that rebinds).
TRANSIENT_ERRORS: typing.Tuple[typing.Type[BaseException], ...] = (
    TransportTimeout,
    HostDown,
    ConnectionRefused,
)


def is_transient(exc: BaseException) -> bool:
    """True for failures a retry might cure.

    :class:`NoRouteToHost` is permanent (the topology has no path) and
    anything non-network — including a remote application exception
    carried back by the RPC layer — must never be blindly retried.
    """
    return isinstance(exc, TRANSIENT_ERRORS)
