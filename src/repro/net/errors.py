"""Network-layer exceptions."""


class NetworkError(Exception):
    """Base class for all simulated network failures."""


class HostDown(NetworkError):
    """The destination host is crashed or powered off."""


class NoRouteToHost(NetworkError):
    """No segment path exists between source and destination."""


class ConnectionRefused(NetworkError):
    """No service is bound to the destination port (stream transport)."""


class TransportTimeout(NetworkError):
    """A reliable operation did not complete within its deadline."""


class PortInUse(NetworkError):
    """Attempt to bind a port that already has a service."""
