"""A shared Ethernet segment.

The paper's measurements were taken between MicroVAX-IIs "joined by an
Ethernet" at light load.  The segment charges a latency model per
message (base propagation + per-byte transfer) and can drop messages
with a configured probability for failure-injection experiments.

Partition/heal: :meth:`Ethernet.partition` installs a deterministic
segment-level drop rule — hosts assigned to different sides stop
hearing each other (unicast and broadcast alike) until :meth:`heal`.
The ad-hoc discovery scenarios use this to let membership views
diverge and then watch incarnation numbers reconcile.
"""

from __future__ import annotations

import typing

from repro.net.host import Host
from repro.net.messages import Datagram
from repro.sim.kernel import Environment
from repro.sim.latency import ConstantLatency, LatencyModel


class Ethernet:
    """A broadcast segment connecting a set of hosts."""

    def __init__(
        self,
        env: Environment,
        name: str = "ether0",
        latency: typing.Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
    ):
        if not 0 <= drop_probability < 1:
            raise ValueError(f"bad drop probability {drop_probability}")
        self.env = env
        self.name = name
        # Default: ~1 ms propagation + 10 Mbit/s-ish transfer cost.
        self.latency = latency or ConstantLatency(1.0, per_byte_ms=0.0008)
        self.drop_probability = drop_probability
        self._hosts: typing.Dict[str, Host] = {}
        # address -> partition side; empty means the segment is whole.
        self._partition_of: typing.Dict[str, int] = {}

    def attach(self, host: Host) -> None:
        if str(host.address) in self._hosts:
            raise ValueError(f"address {host.address} already on {self.name}")
        self._hosts[str(host.address)] = host

    def detach(self, host: Host) -> None:
        self._hosts.pop(str(host.address), None)

    def host_for(self, address: typing.Union[str, object]) -> typing.Optional[Host]:
        return self._hosts.get(str(address))

    @property
    def hosts(self) -> typing.List[Host]:
        return list(self._hosts.values())

    def carries(self, address: object) -> bool:
        return str(address) in self._hosts

    def transmit_delay(self, datagram: Datagram) -> float:
        """Sample the wire time for one message."""
        rng = self.env.rng.stream(f"ether:{self.name}")
        return self.latency.sample(rng, datagram.size_bytes)

    # ------------------------------------------------------------------
    # Partition/heal: deterministic segment-level drop rules
    # ------------------------------------------------------------------
    def partition(
        self, *groups: typing.Iterable[typing.Union[Host, str, object]]
    ) -> None:
        """Split the segment: hosts in different groups stop hearing
        each other (unicast and broadcast alike) until :meth:`heal`.

        Each group is a sequence of hosts or addresses.  Hosts not
        assigned to any group keep full connectivity — the rule only
        fires when *both* endpoints are assigned and their sides differ.
        Installing a new partition replaces the previous one.
        """
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        assignment: typing.Dict[str, int] = {}
        for side, group in enumerate(groups):
            for member in group:
                address = str(
                    member.address if isinstance(member, Host) else member
                )
                if address in assignment:
                    raise ValueError(
                        f"address {address} assigned to two partition groups"
                    )
                assignment[address] = side
        self._partition_of = assignment
        self.env.trace.emit(
            "net",
            f"segment {self.name} partitioned into {len(groups)} groups",
            sizes=[
                sum(1 for side in assignment.values() if side == index)
                for index in range(len(groups))
            ],
        )

    def heal(self) -> None:
        """Remove the partition rule: the segment is whole again."""
        if not self._partition_of:
            return
        self._partition_of = {}
        self.env.trace.emit("net", f"segment {self.name} healed")

    @property
    def partitioned(self) -> bool:
        return bool(self._partition_of)

    def crosses_partition(
        self, src: typing.Union[str, object], dst: typing.Union[str, object]
    ) -> bool:
        """Whether the installed drop rule severs ``src`` -> ``dst``."""
        if not self._partition_of:
            return False
        src_side = self._partition_of.get(str(src))
        dst_side = self._partition_of.get(str(dst))
        return (
            src_side is not None
            and dst_side is not None
            and src_side != dst_side
        )

    def would_drop(
        self,
        src: typing.Optional[typing.Union[str, object]] = None,
        dst: typing.Optional[typing.Union[str, object]] = None,
    ) -> bool:
        """Loss decision for one message along this wire.

        The deterministic partition rule is consulted first (when both
        endpoints are known), then the configured random drop
        probability.
        """
        if (
            src is not None
            and dst is not None
            and self.crosses_partition(src, dst)
        ):
            self.env.stats.counter("net.partition.drops").increment()
            return True
        if self.drop_probability == 0.0:
            return False
        rng = self.env.rng.stream(f"ether-drop:{self.name}")
        return rng.random() < self.drop_probability
