"""A shared Ethernet segment.

The paper's measurements were taken between MicroVAX-IIs "joined by an
Ethernet" at light load.  The segment charges a latency model per
message (base propagation + per-byte transfer) and can drop messages
with a configured probability for failure-injection experiments.
"""

from __future__ import annotations

import typing

from repro.net.host import Host
from repro.net.messages import Datagram
from repro.sim.kernel import Environment
from repro.sim.latency import ConstantLatency, LatencyModel


class Ethernet:
    """A broadcast segment connecting a set of hosts."""

    def __init__(
        self,
        env: Environment,
        name: str = "ether0",
        latency: typing.Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
    ):
        if not 0 <= drop_probability < 1:
            raise ValueError(f"bad drop probability {drop_probability}")
        self.env = env
        self.name = name
        # Default: ~1 ms propagation + 10 Mbit/s-ish transfer cost.
        self.latency = latency or ConstantLatency(1.0, per_byte_ms=0.0008)
        self.drop_probability = drop_probability
        self._hosts: typing.Dict[str, Host] = {}

    def attach(self, host: Host) -> None:
        if str(host.address) in self._hosts:
            raise ValueError(f"address {host.address} already on {self.name}")
        self._hosts[str(host.address)] = host

    def detach(self, host: Host) -> None:
        self._hosts.pop(str(host.address), None)

    def host_for(self, address: typing.Union[str, object]) -> typing.Optional[Host]:
        return self._hosts.get(str(address))

    @property
    def hosts(self) -> typing.List[Host]:
        return list(self._hosts.values())

    def carries(self, address: object) -> bool:
        return str(address) in self._hosts

    def transmit_delay(self, datagram: Datagram) -> float:
        """Sample the wire time for one message."""
        rng = self.env.rng.stream(f"ether:{self.name}")
        return self.latency.sample(rng, datagram.size_bytes)

    def would_drop(self) -> bool:
        if self.drop_probability == 0.0:
            return False
        rng = self.env.rng.stream(f"ether-drop:{self.name}")
        return rng.random() < self.drop_probability
