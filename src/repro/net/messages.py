"""Message types carried by the simulated network."""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.net.addresses import Endpoint

_msg_ids = itertools.count(1)


@dataclasses.dataclass
class Datagram:
    """One network message.

    ``payload`` is an arbitrary Python object (the serialization layer
    decides what bytes it would be); ``size_bytes`` is what the latency
    model charges for.  ``reply_to`` lets request/response protocols
    route answers without a connection abstraction.
    """

    source: Endpoint
    destination: Endpoint
    payload: object
    size_bytes: int = 0
    reply_to: typing.Optional[Endpoint] = None
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")

    def __str__(self) -> str:
        return (
            f"Datagram#{self.msg_id} {self.source} -> {self.destination} "
            f"({self.size_bytes} bytes)"
        )
