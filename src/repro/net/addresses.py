"""Network addresses and endpoints.

Addresses are dotted-quad strings as in the paper's environment (the
HNS's canonical use case is mapping a host name to an IP address).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True, order=True)
class NetworkAddress:
    """An internet-style host address (dotted quad)."""

    dotted: str

    def __post_init__(self) -> None:
        parts = self.dotted.split(".")
        if len(parts) != 4:
            raise ValueError(f"bad address {self.dotted!r}: need 4 octets")
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"bad address {self.dotted!r}: octet {part!r}")
            if not 0 <= int(part) <= 255:
                raise ValueError(f"bad address {self.dotted!r}: octet {part} out of range")

    @property
    def octets(self) -> typing.Tuple[int, int, int, int]:
        a, b, c, d = (int(p) for p in self.dotted.split("."))
        return (a, b, c, d)

    @property
    def network(self) -> typing.Tuple[int, int, int]:
        """Class-C style network prefix, used for segment assignment."""
        return self.octets[:3]

    def __str__(self) -> str:
        return self.dotted


@dataclasses.dataclass(frozen=True, order=True)
class Endpoint:
    """An (address, port) pair a service listens on."""

    address: NetworkAddress
    port: int

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise ValueError(f"bad port {self.port}")

    def __str__(self) -> str:
        return f"{self.address}:{self.port}"


class AddressAllocator:
    """Dispenses unique addresses on a network prefix."""

    def __init__(self, prefix: str = "128.95.1"):
        parts = prefix.split(".")
        if len(parts) != 3 or not all(p.isdigit() and 0 <= int(p) <= 255 for p in parts):
            raise ValueError(f"bad network prefix {prefix!r}")
        self.prefix = prefix
        self._next_host = 1

    def allocate(self) -> NetworkAddress:
        if self._next_host > 254:
            raise RuntimeError(f"network {self.prefix} exhausted")
        address = NetworkAddress(f"{self.prefix}.{self._next_host}")
        self._next_host += 1
        return address


# Well-known ports used by the simulated services (values are arbitrary
# but stable; some mirror real assignments for readability).
WELL_KNOWN_PORTS = {
    "bind": 53,
    "clearinghouse": 2049,
    "portmapper": 111,
    "courier-binder": 5002,
    "hns": 7001,
    "nsm-base": 7100,
    "service-base": 9000,
}
