"""The internetwork topology: segments, hosts, and routing.

The HCS environment is one Ethernet, but the model supports several
segments joined by gateways (each inter-segment hop adds a fixed
forwarding delay), which the scalability ablations use.
"""

from __future__ import annotations

import itertools
import typing

from repro.net.addresses import AddressAllocator, NetworkAddress
from repro.net.errors import NoRouteToHost
from repro.net.ethernet import Ethernet
from repro.net.host import Host
from repro.sim.kernel import Environment


class Internetwork:
    """Registry of hosts and segments plus the routing function."""

    def __init__(
        self,
        env: Environment,
        gateway_hop_ms: float = 8.0,
    ):
        if gateway_hop_ms < 0:
            raise ValueError("gateway hop delay must be non-negative")
        self.env = env
        self.gateway_hop_ms = gateway_hop_ms
        self.segments: typing.List[Ethernet] = []
        self._hosts_by_name: typing.Dict[str, Host] = {}
        self._hosts_by_address: typing.Dict[str, Host] = {}
        self._segment_of: typing.Dict[str, Ethernet] = {}
        self._allocators: typing.Dict[str, AddressAllocator] = {}
        # Per-environment message numbering: ids must be a function of
        # this run alone, or traced loss lines ("lost: Datagram#N ...")
        # would differ between same-seed runs in one process and break
        # the determinism gate.
        self._msg_ids = itertools.count(1)

    def next_msg_id(self) -> int:
        """The next wire-message id (transports stamp each Datagram)."""
        return next(self._msg_ids)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_segment(
        self, name: str = "", prefix: str = "", **ether_kwargs: object
    ) -> Ethernet:
        """Create and register a new Ethernet segment."""
        index = len(self.segments)
        name = name or f"ether{index}"
        prefix = prefix or f"128.95.{index + 1}"
        segment = Ethernet(self.env, name=name, **ether_kwargs)  # type: ignore[arg-type]
        self.segments.append(segment)
        self._allocators[name] = AddressAllocator(prefix)
        return segment

    def add_host(
        self,
        name: str,
        segment: typing.Optional[Ethernet] = None,
        system_type: str = "unix",
        **host_kwargs: object,
    ) -> Host:
        """Create a host, allocate it an address, attach it to a segment."""
        if name in self._hosts_by_name:
            raise ValueError(f"duplicate host name {name!r}")
        if segment is None:
            if not self.segments:
                self.add_segment()
            segment = self.segments[0]
        if segment not in self.segments:
            raise ValueError(f"segment {segment.name} not part of this internet")
        address = self._allocators[segment.name].allocate()
        host = Host(
            self.env, name, address, system_type=system_type, **host_kwargs  # type: ignore[arg-type]
        )
        segment.attach(host)
        self._hosts_by_name[name] = host
        self._hosts_by_address[str(address)] = host
        self._segment_of[str(address)] = segment
        return host

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def host_named(self, name: str) -> typing.Optional[Host]:
        return self._hosts_by_name.get(name)

    def host_at(self, address: typing.Union[str, NetworkAddress]) -> typing.Optional[Host]:
        return self._hosts_by_address.get(str(address))

    @property
    def hosts(self) -> typing.List[Host]:
        return list(self._hosts_by_name.values())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(
        self,
        src: typing.Union[str, NetworkAddress],
        dst: typing.Union[str, NetworkAddress],
    ) -> typing.Tuple[Ethernet, int]:
        """(first segment, gateway hops) for src -> dst, or NoRouteToHost."""
        src_seg = self._segment_of.get(str(src))
        dst_seg = self._segment_of.get(str(dst))
        if src_seg is None or dst_seg is None:
            raise NoRouteToHost(f"{src} -> {dst}")
        hops = 0 if src_seg is dst_seg else 1
        return src_seg, hops

    def path_delay(
        self,
        src: typing.Union[str, NetworkAddress],
        dst: typing.Union[str, NetworkAddress],
        size_bytes: int,
    ) -> float:
        """Sampled one-way delay between two attached addresses."""
        from repro.net.messages import Datagram  # local import: cycle guard

        segment, hops = self._route(src, dst)
        probe = Datagram.__new__(Datagram)  # latency only needs the size
        probe.size_bytes = size_bytes
        delay = segment.transmit_delay(probe)
        if hops:
            dst_seg = self._segment_of[str(dst)]
            delay += dst_seg.transmit_delay(probe) + self.gateway_hop_ms * hops
        return delay

    def segment_would_drop(
        self,
        src: typing.Union[str, NetworkAddress],
        dst: typing.Union[str, NetworkAddress],
    ) -> bool:
        """Loss decision for a datagram along the route."""
        segment, hops = self._route(str(src), str(dst))
        if segment.would_drop(src, dst):
            return True
        if hops:
            return self._segment_of[str(dst)].would_drop(src, dst)
        return False

    def same_host(self, a: typing.Union[str, NetworkAddress], b: typing.Union[str, NetworkAddress]) -> bool:
        return str(a) == str(b)
