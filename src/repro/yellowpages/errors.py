"""Yellow Pages failure modes."""


class YpError(Exception):
    """Base class for YP failures."""

    status = 1


class NoSuchMap(YpError):
    """The domain has no map of that name."""

    status = 2


class NoSuchKey(YpError):
    """The map exists but lacks the key."""

    status = 3
