"""Yellow Pages maps: flat key/value tables grouped into a domain."""

from __future__ import annotations

import typing

from repro.yellowpages.errors import NoSuchKey, NoSuchMap


class YpMap:
    """One map (e.g. ``hosts.byname``): case-sensitive keys, str values."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("map needs a name")
        self.name = name
        self._entries: typing.Dict[str, str] = {}
        self.order = 0  # bumped on every change, like a dbm timestamp

    def set(self, key: str, value: str) -> None:
        if not key:
            raise ValueError("empty key")
        self._entries[key] = value
        self.order += 1

    def delete(self, key: str) -> bool:
        removed = self._entries.pop(key, None) is not None
        if removed:
            self.order += 1
        return removed

    def match(self, key: str) -> str:
        try:
            return self._entries[key]
        except KeyError:
            raise NoSuchKey(f"{key!r} in map {self.name}") from None

    def keys(self) -> typing.List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class YpDomain:
    """A YP domain: the collection of maps one server is master for."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("domain needs a name")
        self.name = name
        self._maps: typing.Dict[str, YpMap] = {}

    def map(self, name: str) -> YpMap:
        """Get-or-create a map."""
        if name not in self._maps:
            self._maps[name] = YpMap(name)
        return self._maps[name]

    def existing_map(self, name: str) -> YpMap:
        m = self._maps.get(name)
        if m is None:
            raise NoSuchMap(f"{name!r} in domain {self.name}")
        return m

    def map_names(self) -> typing.List[str]:
        return sorted(self._maps)

    def __len__(self) -> int:
        return len(self._maps)
