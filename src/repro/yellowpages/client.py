"""YP client (the ypbind/ypmatch side)."""

from __future__ import annotations

import typing

from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.transport import Transport
from repro.yellowpages.errors import NoSuchKey, NoSuchMap, YpError
from repro.yellowpages.server import STATUS_OK, YpMapList, YpMatch, YpReply

_STATUS_TO_ERROR = {NoSuchMap.status: NoSuchMap, NoSuchKey.status: NoSuchKey}


class YpClient:
    """Matches keys against one YP server's domain."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        server: Endpoint,
        domain: str,
        name: str = "yp-client",
    ):
        self.host = host
        self.env = host.env
        self.transport = transport
        self.server = server
        self.domain = domain
        self.name = name

    def _roundtrip(self, request: object, size: int) -> typing.Generator:
        reply = yield from self.transport.request(
            self.host, self.server, request, size
        )
        if not isinstance(reply, YpReply):
            raise YpError(f"malformed reply {reply!r}")
        if reply.status != STATUS_OK:
            raise _STATUS_TO_ERROR.get(reply.status, YpError)(
                f"status {reply.status}"
            )
        return reply

    def match(self, map_name: str, key: str) -> typing.Generator:
        """ypmatch: the value for ``key`` in ``map_name``."""
        self.env.stats.counter(f"yp.{self.name}.lookups").increment()
        request = YpMatch(self.domain, map_name, key)
        reply = yield from self._roundtrip(
            request, 48 + len(map_name) + len(key)
        )
        yield from self.host.cpu.compute(0.3)  # tiny reply demarshal
        return reply.value

    def map_names(self) -> typing.Generator:
        reply = yield from self._roundtrip(YpMapList(self.domain), 48)
        return list(reply.values)
