"""The YP server process (ypserv)."""

from __future__ import annotations

import dataclasses
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.host import Host, Service
from repro.yellowpages.errors import NoSuchMap, YpError
from repro.yellowpages.maps import YpDomain

#: default ypserv port (the real one registers with the portmapper;
#: here it is fixed for determinism)
YP_PORT = 1067

STATUS_OK = 0

#: ypserv keeps its dbm maps in memory and does no authentication: a
#: match is fast, comparable to BIND's in-memory lookup path.
DEFAULT_MATCH_COST_MS = 9.0


@dataclasses.dataclass
class YpMatch:
    """Request: the value for ``key`` in ``map_name`` of ``domain``."""

    domain: str
    map_name: str
    key: str


@dataclasses.dataclass
class YpMapList:
    """Request: the names of all maps in ``domain``."""

    domain: str


@dataclasses.dataclass
class YpReply:
    """Status plus the matched value (or map names)."""
    status: int
    value: str = ""
    values: typing.Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class YpServer(Service):
    """Serves one or more YP domains."""

    def __init__(
        self,
        host: Host,
        domains: typing.Optional[typing.Sequence[YpDomain]] = None,
        match_cost_ms: float = DEFAULT_MATCH_COST_MS,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "",
    ):
        if match_cost_ms < 0:
            raise ValueError("match cost must be non-negative")
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.name = name or f"ypserv@{host.name}"
        self.domains: typing.Dict[str, YpDomain] = {
            d.name: d for d in (domains or [])
        }
        self.match_cost_ms = match_cost_ms
        self.endpoint: typing.Optional[Endpoint] = None

    def listen(self, port: int = YP_PORT) -> Endpoint:
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def add_domain(self, domain: YpDomain) -> None:
        if domain.name in self.domains:
            raise ValueError(f"duplicate domain {domain.name!r}")
        self.domains[domain.name] = domain

    def handle(self, datagram, responder):
        request = datagram.payload
        yield from self.host.cpu.compute(self.match_cost_ms)
        try:
            if isinstance(request, YpMatch):
                self.env.stats.counter(f"yp.{self.name}.matches").increment()
                domain = self.domains.get(request.domain)
                if domain is None:
                    raise NoSuchMap(f"domain {request.domain!r}")
                value = domain.existing_map(request.map_name).match(request.key)
                responder(YpReply(STATUS_OK, value=value), 32 + len(value))
            elif isinstance(request, YpMapList):
                domain = self.domains.get(request.domain)
                if domain is None:
                    raise NoSuchMap(f"domain {request.domain!r}")
                names = tuple(domain.map_names())
                responder(
                    YpReply(STATUS_OK, values=names),
                    32 + sum(len(n) for n in names),
                )
            else:
                responder(YpReply(YpError.status), 16)
        except YpError as err:
            self.env.trace.emit("yp", f"{self.name}: {err!r}")
            responder(YpReply(err.status), 16)

    def describe(self) -> str:
        return f"YpServer({self.name}; domains: {sorted(self.domains)})"
