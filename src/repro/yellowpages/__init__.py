"""Sun Yellow Pages (NIS) substrate: a third name-service type.

The paper's prototype federated BIND and the Clearinghouse and "plan[s]
to introduce additional name services as they become available".  This
package is that next service: Sun's Yellow Pages — flat, per-domain
key/value *maps* (``hosts.byname``, ``mail.aliases``, ...) served over
Sun RPC from in-memory dbm files.

Integrating it into the HNS costs exactly what the paper promises:
NSMs for the query classes worth supporting, plus registration — no
client changes.  See :mod:`repro.core.nsms.yp` and
``tests/integration/test_third_system_type.py``.
"""

from repro.yellowpages.maps import YpDomain, YpMap
from repro.yellowpages.errors import NoSuchKey, NoSuchMap, YpError
from repro.yellowpages.server import YpServer
from repro.yellowpages.client import YpClient

__all__ = [
    "NoSuchKey",
    "NoSuchMap",
    "YpClient",
    "YpDomain",
    "YpError",
    "YpMap",
    "YpServer",
]
