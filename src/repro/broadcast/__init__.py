"""Broadcast-based (decentralized) name location, V-system style.

The introduction notes the HNS design "is equally valid for other
approaches to naming, such as broadcast-based location protocols
[Cheriton & Mann 1984]", and the name-space discussion rejects
"locating the appropriate local name server ... through some multicast
technique" as "too inefficient in our environment".

This package implements the alternative so the claim can be measured:
every host runs a :class:`NameOwnerService` answering for the names it
owns; a :class:`BroadcastLocator` multicasts a query on the segment and
takes the first answer.  No central state — and every query costs every
host a packet, which is exactly why it loses at scale
(``benchmarks/bench_ablations.py::test_broadcast_vs_context_location``).
"""

from repro.broadcast.locator import (
    BroadcastLocator,
    NameAnswer,
    NameOwnerService,
    NameQuery,
)

__all__ = ["BroadcastLocator", "NameAnswer", "NameOwnerService", "NameQuery"]
