"""Decentralized name interpretation over broadcast."""

from __future__ import annotations

import typing

from repro.broadcast.messages import NameAnswer, NameQuery
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.host import Host, Service
from repro.net.transport import DatagramTransport

#: the well-known port every name-owner service listens on
LOCATOR_PORT = 1111

#: CPU cost for a host to examine a broadcast query it does not own —
#: the per-host tax broadcast location levies on the whole segment.
EXAMINE_COST_MS = 1.5
#: CPU cost to answer for an owned name
ANSWER_COST_MS = 4.0

__all__ = [
    "ANSWER_COST_MS",
    "BroadcastLocator",
    "EXAMINE_COST_MS",
    "LOCATOR_PORT",
    "NameAnswer",
    "NameOwnerService",
    "NameQuery",
]


class NameOwnerService(Service):
    """Per-host service answering broadcasts for the names it owns.

    'names are interpreted by the services that provide named entities,
    rather than by a logically centralized name service.'
    """

    def __init__(self, host: Host, calibration: Calibration = DEFAULT_CALIBRATION):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self._owned: typing.Dict[str, typing.Dict[str, str]] = {}
        self.examined = 0
        self.answered = 0
        host.bind(LOCATOR_PORT, self)

    def own(self, name: str, **data: object) -> None:
        """Claim a name (e.g. a service this host provides).

        Field values are stringified: answers travel as wire messages
        (see :mod:`repro.broadcast.messages`), not Python objects.
        """
        if not name:
            raise ValueError("cannot own the empty name")
        self._owned[name.lower()] = {
            key: str(value) for key, value in data.items()
        }

    def disown(self, name: str) -> bool:
        return self._owned.pop(name.lower(), None) is not None

    def owns(self, name: str) -> bool:
        return name.lower() in self._owned

    def handle(self, datagram, responder):
        request = datagram.payload
        if not isinstance(request, NameQuery):
            return
        # Every host pays to look at every broadcast query.
        self.examined += 1
        self.env.stats.counter("broadcast.examined").increment()
        yield from self.host.cpu.compute(EXAMINE_COST_MS)
        data = self._owned.get(request.name.lower())
        if data is None:
            return  # silence: not mine
        yield from self.host.cpu.compute(ANSWER_COST_MS)
        self.answered += 1
        self.env.stats.counter("broadcast.answered").increment()
        responder(
            NameAnswer(
                name=request.name,
                owner=self.host.name,
                address=str(self.host.address),
                data=dict(data),
            ),
            size_bytes=96,
        )


class BroadcastLocator:
    """Client side: multicast the query, take the first answer."""

    def __init__(
        self,
        host: Host,
        transport: DatagramTransport,
        wait_ms: float = 60.0,
    ):
        if wait_ms <= 0:
            raise ValueError("wait window must be positive")
        self.host = host
        self.env = host.env
        self.transport = transport
        self.wait_ms = wait_ms

    def locate(self, name: str) -> typing.Generator:
        """Find the owner of ``name``; returns a :class:`NameAnswer`.

        Raises LookupError if nobody answered within the window.
        """
        self.env.stats.counter("broadcast.locates").increment()
        replies = yield from self.transport.broadcast(
            self.host,
            LOCATOR_PORT,
            NameQuery(name),
            size_bytes=64 + len(name),
            wait_ms=self.wait_ms,
            first_only=True,
        )
        if not replies:
            raise LookupError(f"no host on the segment owns {name!r}")
        answer = replies[0]
        if not isinstance(answer, NameAnswer):
            raise LookupError(f"malformed broadcast answer {answer!r}")
        return answer
