"""Broadcast-tier wire messages and their IDL descriptions.

``NameQuery``/``NameAnswer`` started life as plain dataclasses inside
the locator — the one message family the serializer (and therefore
HNS002/HNS004) never saw.  They live here now, with IDL descriptions,
so broadcast message sizes are real wire bytes like everything else
that crosses the simulated segment.

The answer's per-name payload travels as a flat ``key=value`` mapping
(strings both sides), the same encoding discipline the meta zone's
UNSPEC records use: arbitrary Python objects never ride a wire message.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.serial import StringType, StructType, U32Type

NAME_QUERY_IDL = StructType(
    "NameQuery",
    [("name", StringType(255))],
)

NAME_ANSWER_IDL = StructType(
    "NameAnswer",
    [
        ("name", StringType(255)),
        ("owner", StringType(64)),
        ("address", StringType(64)),
        # "key=value;key=value" — the meta zone's UNSPEC field encoding
        ("fields", StringType(255)),
        ("count", U32Type()),
    ],
)


def encode_data(data: typing.Mapping[str, str]) -> str:
    """Flat mapping -> the ``key=value;...`` wire field."""
    return ";".join(f"{key}={data[key]}" for key in sorted(data))


def decode_data(text: str) -> typing.Dict[str, str]:
    """The ``key=value;...`` wire field -> flat mapping."""
    if not text:
        return {}
    return dict(
        typing.cast(
            typing.Tuple[str, str], tuple(pair.split("=", 1))
        )
        for pair in text.split(";")
    )


@dataclasses.dataclass
class NameQuery:
    """Broadcast: who owns this name?"""

    name: str

    idl_type = NAME_QUERY_IDL

    def to_idl(self) -> dict:
        return {"name": self.name}

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "NameQuery":
        return cls(name=typing.cast(str, value["name"]))


@dataclasses.dataclass
class NameAnswer:
    """An owner's reply: where the name lives."""

    name: str
    owner: str     # host name
    address: str   # dotted quad
    data: typing.Dict[str, str]

    idl_type = NAME_ANSWER_IDL

    def to_idl(self) -> dict:
        return {
            "name": self.name,
            "owner": self.owner,
            "address": self.address,
            "fields": encode_data(self.data),
            "count": len(self.data),
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "NameAnswer":
        return cls(
            name=typing.cast(str, value["name"]),
            owner=typing.cast(str, value["owner"]),
            address=typing.cast(str, value["address"]),
            data=decode_data(typing.cast(str, value["fields"])),
        )
