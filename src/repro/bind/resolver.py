"""The BIND client resolver.

Two client styles share this class:

- the **conventional resolver** using the standard (hand-coded) BIND
  library routines — this is what a 27 ms name-to-address lookup means;
- the **HRPC interface to BIND** the HNS built, whose request/response
  marshalling comes from the stub compiler (``marshalling="generated"``)
  and which pays an extra per-call Raw-HRPC control overhead.

Either style can run with no cache, a marshalled cache, or a
demarshalled cache — the three columns of Table 3.2 — and can preload
its cache with a zone transfer, the mechanism the paper borrowed for
HNS cache preloading.
"""

from __future__ import annotations

import typing

from repro.bind.cache import CacheEntry, CacheFormat, ResolverCache
from repro.bind.errors import BindError, NameNotFound, UpdateRefused, ZoneNotFound
from repro.bind.messages import (
    BATCH_QUERY_REQUEST_IDL,
    BATCH_QUERY_RESPONSE_IDL,
    QUERY_REQUEST_IDL,
    QUERY_RESPONSE_IDL,
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_REFUSED,
    BatchQueryRequest,
    BatchQueryResponse,
    BatchQuestion,
    IxfrRequest,
    IxfrResponse,
    NotifyRequest,
    NotifySubscribeRequest,
    NotifySubscribeResponse,
    QueryRequest,
    QueryResponse,
    UpdateBatchRequest,
    UpdateBatchResponse,
    UpdateMode,
    UpdateOp,
    UpdateRequest,
    UpdateResponse,
    XferRequest,
    XferResponse,
)
from repro.bind.names import DomainName
from repro.bind.replica import ReplicaScheduler, ReplicaState
from repro.bind.rr import ResourceRecord, RRType
from repro.bind.zone import ZoneDelta
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.errors import NetworkError, is_transient
from repro.net.host import Host, Service
from repro.net.transport import Transport
from repro.obs.span import NULL_SPAN
from repro.resolution import (
    _UNSET,
    FastPathPolicy,
    PolicySet,
    ReplicaPolicy,
    ResolutionPolicy,
    merge_policies,
)
from repro.serial import HandcodedMarshaller, StubCompiler
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import SpanLike


#: sentinel payload marking a cached NXDOMAIN answer
_NEGATIVE = object()


class BindResolver:
    """Client-side lookup/update/transfer against one BIND server."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        server: Endpoint,
        marshalling: str = "handcoded",
        cache: typing.Optional[ResolverCache] = None,
        per_call_overhead_ms: float = 0.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "resolver",
        secondaries: typing.Sequence[Endpoint] = (),
        negative_ttl_ms: float = 0.0,
        policy: typing.Any = _UNSET,
        fast_path: typing.Any = _UNSET,
        replica_policy: typing.Any = _UNSET,
        policies: typing.Optional[PolicySet] = None,
    ):
        if marshalling not in ("handcoded", "generated"):
            raise ValueError(f"unknown marshalling style {marshalling!r}")
        if negative_ttl_ms < 0:
            raise ValueError("negative-cache TTL must be >= 0")
        # Resolve the policy bundle once: a PolicySet base (all-None
        # matches the historical kwarg defaults) with any legacy kwargs
        # folded over it.  ``None`` uniformly means "that mechanism at
        # its prototype .disabled() behaviour".
        resolved = merge_policies(
            policies if policies is not None else PolicySet(),
            policy=policy,
            fast_path=fast_path,
            replica_policy=replica_policy,
            caller="BindResolver",
        )
        self.policies = resolved
        policy = resolved.resolution
        fast_path = resolved.fast_path
        replica_policy = resolved.replica
        self.host = host
        self.env = host.env
        self.transport = transport
        self.server = server
        #: replica servers tried, in order, when the primary is
        #: unreachable (reads only; updates always go to the primary)
        self.secondaries = list(secondaries)
        self.cache = cache
        self.per_call_overhead_ms = per_call_overhead_ms
        self.calibration = calibration
        self.name = name
        self.marshalling = marshalling
        #: fault-tolerance knobs: None reproduces the prototype's
        #: single-pass behaviour (one try per replica, no serve-stale)
        self.policy = policy
        #: >0 enables caching of NXDOMAIN answers for that many ms — an
        #: extension of the TTL scheme that spares repeated misses for
        #: absent names (disabled by default, as in the prototype).  An
        #: explicit value wins over the policy's.
        if negative_ttl_ms <= 0 and policy is not None:
            negative_ttl_ms = policy.negative_ttl_ms
        self.negative_ttl_ms = negative_ttl_ms
        #: performance knobs (coalescing, refresh-ahead, batching);
        #: None keeps the paper-faithful one-call-per-miss behaviour
        self.fast_path = fast_path
        #: replica-aware read knobs (adaptive selection, hedging, IXFR);
        #: None keeps the static primary-then-secondaries failover
        self.replica_policy = replica_policy
        self._scheduler: typing.Optional[ReplicaScheduler] = None
        if replica_policy is not None and replica_policy.scheduling:
            self._scheduler = ReplicaScheduler(
                self.env,
                [server] + self.secondaries,
                replica_policy,
                name=self.name,
            )
        #: origin -> serial of the last cache preload, for IXFR re-preload
        self._preload_serials: typing.Dict[str, int] = {}
        #: where the primary's NOTIFY pushes land (bound on first use)
        self._notify_endpoint: typing.Optional[Endpoint] = None
        #: origin -> the serial our cache state reflects (IXFR baseline)
        self._notify_serials: typing.Dict[str, int] = {}
        #: origins with a NOTIFY-triggered delta pull in flight
        self._notify_inflight: typing.Set[str] = set()
        #: in-flight single-flight fetches: cache key -> leader's event,
        #: carrying ``(result, record_count)`` when it resolves
        self._flights: typing.Dict[object, Event] = {}
        if marshalling == "generated":
            compiler = StubCompiler()
            self._request_m = compiler.marshaller(QUERY_REQUEST_IDL)
            self._response_m = compiler.marshaller(QUERY_RESPONSE_IDL)
        else:
            self._request_m = HandcodedMarshaller(QUERY_REQUEST_IDL)
            self._response_m = HandcodedMarshaller(QUERY_RESPONSE_IDL)
        self._hand_request = HandcodedMarshaller(QUERY_REQUEST_IDL)
        # Batch-response marshaller, built on first batched lookup.
        self._batch_response_m: typing.Optional[object] = None

    # ------------------------------------------------------------------
    def lookup(
        self,
        name: typing.Union[str, DomainName],
        rtype: RRType = RRType.A,
    ) -> typing.Generator:
        """Resolve (name, rtype); returns a list of ResourceRecords.

        Raises :class:`NameNotFound` on NXDOMAIN.  This is a process
        generator: drive it with ``yield from`` inside a simulation.
        """
        name = DomainName(name)
        key = (str(name), rtype.value)
        with self.env.obs.span(
            "bind.lookup",
            resolver=self.name,
            owner=str(name),
            rtype=rtype.name,
        ) as span:
            # --- cache probe ----------------------------------------------
            if self.cache is not None:
                records = yield from self._probe_cache(key, name, rtype, span)
                if records is not None:
                    span.set(outcome="hit")
                    return records
            # --- single-flight coalescing ---------------------------------
            fast = self.fast_path
            if fast is not None and fast.coalesce:
                flight = self._flights.get(key)
                if flight is not None:
                    span.set(outcome="coalesced")
                    records = yield from self._follow(flight)
                    return records
                span.set(outcome="miss", role="leader")
                records = yield from self._lead(
                    key, self._fetch_counted(name, rtype, key)
                )
                return records
            span.set(outcome="miss")
            records = yield from self._fetch(name, rtype, key)
            return records

    def _probe_cache(
        self,
        key: object,
        name: DomainName,
        rtype: RRType,
        span: "SpanLike" = NULL_SPAN,
    ) -> typing.Generator:
        """Cache-only resolution: records on a fresh hit, else None.

        Charges the probe and hit costs, honours negative entries
        (raising :class:`NameNotFound`), and spawns a refresh-ahead
        renewal when the hit lands inside the policy's refresh window.
        """
        env = self.env
        assert self.cache is not None
        entry, probe_cost = self.cache.probe(key)
        yield from self.host.cpu.compute(probe_cost)
        if entry is None:
            return None
        if entry.payload is _NEGATIVE:
            span.set(outcome="negative")
            env.stats.counter(f"bind.{self.name}.negative_hits").increment()
            raise NameNotFound(f"{name} {rtype} (negatively cached)")
        if self.cache.format is CacheFormat.MARSHALLED:
            value, demarshal_cost = self._response_m.decode(
                typing.cast(bytes, entry.payload)
            )
            records = QueryResponse.from_idl(value).records
            yield from self.host.cpu.compute(
                self.cache.hit_cost(entry, demarshal_cost)
            )
        else:
            records = list(typing.cast(list, entry.payload))
            yield from self.host.cpu.compute(self.cache.hit_cost(entry))
        env.stats.counter(f"bind.{self.name}.cache_hits").increment()
        self._maybe_refresh(key, name, rtype, entry)
        return records

    def cached_records(
        self,
        name: typing.Union[str, DomainName],
        rtype: RRType = RRType.A,
    ) -> typing.Generator:
        """Public cache-only probe: records, or None on a miss.

        Same costs, counters, negative handling, and refresh-ahead
        side effects as the probe inside :meth:`lookup` — the batched
        FindNSM path uses this to decide which mappings it still needs.
        """
        if self.cache is None:
            return None
        name = DomainName(name)
        key = (str(name), rtype.value)
        records = yield from self._probe_cache(key, name, rtype)
        return records

    # --- single-flight machinery --------------------------------------
    def _lead(self, key: object, work: typing.Generator) -> typing.Generator:
        """Run ``work`` as the single-flight leader for ``key``.

        ``work`` must return ``(result, record_count)``.  Followers that
        joined while it ran receive the result (or, defused, the same
        exception — one classified error propagates to everyone).
        """
        event = self.env.event()
        # A failure must reach followers but never the kernel: there may
        # legitimately be nobody parked on the flight.
        event.defuse()
        self._flights[key] = event
        try:
            result, record_count = yield from work
        except BaseException as err:
            self._flights.pop(key, None)
            event.fail(err)
            raise
        self._flights.pop(key, None)
        event.succeed((result, record_count))
        return result

    def _follow(self, flight: Event) -> typing.Generator:
        """Park on a leader's in-flight fetch; pay only the copy cost."""
        if self.cache is not None:
            self.cache.record_coalesced()
        else:
            self.env.stats.counter(f"bind.{self.name}.coalesced").increment()
        result, record_count = yield flight
        yield from self.host.cpu.compute(
            self.calibration.cache_copy_base_ms
            + self.calibration.cache_copy_per_record_ms * record_count
        )
        return list(result)

    def _fetch_counted(
        self, name: DomainName, rtype: RRType, key: object
    ) -> typing.Generator:
        records = yield from self._fetch(name, rtype, key)
        return records, len(records)

    # --- refresh-ahead ------------------------------------------------
    def _maybe_refresh(
        self, key: object, name: DomainName, rtype: RRType, entry: CacheEntry
    ) -> None:
        """Spawn a background renewal if ``entry`` is near expiry."""
        fast = self.fast_path
        if fast is None or fast.refresh_ahead_fraction <= 0:
            return
        assert self.cache is not None
        if not self.cache.needs_refresh(entry, fast.refresh_ahead_fraction):
            return
        if key in self._flights:
            return  # a renewal (or a coalesced miss) is already underway
        # Register the flight synchronously so every later probe — and
        # any miss arriving before the renewal lands — sees it.
        event = self.env.event()
        event.defuse()
        self._flights[key] = event
        self.cache.record_refresh()
        # Defer the renewal by a jittered slice of the remaining TTL:
        # the triggering hit keeps its hit latency (the host CPU is a
        # FIFO device, so an immediate renewal's call overhead would
        # head-of-line-block it), and entries inserted together do not
        # renew in one synchronized burst.  At most half the remaining
        # window is spent deferring, leaving the other half for the
        # fetch itself to land before expiry.
        defer_ms = self.env.rng.stream("bind.refresh_jitter").uniform(
            0.0, max(0.0, entry.expires_at - self.env.now) / 2.0
        )
        # Causal link: the renewal runs as its own process, so the span
        # context of the triggering hit must travel explicitly.
        parent = self.env.obs.current()
        self.env.process(
            self._refresh(event, key, name, rtype, defer_ms, parent=parent)
        )

    def _refresh(
        self,
        event: Event,
        key: object,
        name: DomainName,
        rtype: RRType,
        defer_ms: float = 0.0,
        parent: typing.Optional["SpanLike"] = None,
    ) -> typing.Generator:
        """The background renewal process for one cache entry.

        Failures are deliberately silent: the requesting client already
        has a fresh answer, and the still-resident entry remains
        available to the serve-stale ladder.  Coalesced followers (cold
        misses that joined this flight) do see the failure — for them it
        is a real lookup failure.
        """
        if defer_ms > 0:
            yield self.env.timeout(defer_ms)
        with self.env.obs.span(
            "bind.refresh",
            parent=parent,
            resolver=self.name,
            owner=str(name),
        ) as span:
            try:
                records = yield from self._fetch(
                    name, rtype, key, background=True
                )
            except Exception as err:
                span.set(outcome="failed")
                self._flights.pop(key, None)
                event.fail(err)
                self.env.stats.counter(
                    f"bind.{self.name}.refresh_failures"
                ).increment()
                return
            span.set(outcome="renewed")
            self._flights.pop(key, None)
            event.succeed((records, len(records)))

    def _compute(
        self, cost_ms: float, background: bool = False
    ) -> typing.Generator:
        """Charge ``cost_ms`` of client CPU, optionally at low priority.

        Foreground work takes the host CPU FIFO as usual.  Background
        work (refresh-ahead renewals) models a low-priority thread: it
        backs off while anything else holds or waits for the CPU and
        charges its cost in small slices, so a renewal's call overhead
        never head-of-line-blocks a foreground cache hit.  Politeness is
        bounded — on a saturated CPU the renewal stops yielding after a
        while rather than starving past its entry's expiry.
        """
        if not background or cost_ms <= 0:
            if cost_ms > 0:
                yield from self.host.cpu.compute(cost_ms)
            return
        cpu = self.host.cpu
        give_up_at = self.env.now + 40.0 * max(cost_ms, 1.0)
        remaining = cost_ms
        while remaining > 0:
            while (cpu.in_use or cpu.queue_length) and self.env.now < give_up_at:
                yield self.env.timeout(1.0)
            step = min(4.0, remaining)
            yield from cpu.compute(step)
            remaining -= step

    # --- the remote call ----------------------------------------------
    def _fetch(
        self,
        name: DomainName,
        rtype: RRType,
        key: object,
        background: bool = False,
    ) -> typing.Generator:
        """The full remote-call path: request, failover, serve-stale,
        negative caching, cache insert.  Returns the record list."""
        with self.env.obs.span(
            "bind.fetch",
            resolver=self.name,
            owner=str(name),
            background=background,
        ) as span:
            records = yield from self._fetch_inner(
                name, rtype, key, background, span
            )
            return records

    def _fetch_inner(
        self,
        name: DomainName,
        rtype: RRType,
        key: object,
        background: bool,
        span: "SpanLike",
    ) -> typing.Generator:
        env = self.env
        env.stats.counter(f"bind.{self.name}.remote_lookups").increment()
        if self.per_call_overhead_ms:
            yield from self._compute(self.per_call_overhead_ms, background)
        request = QueryRequest(name, rtype)
        # Requests are fixed-shape; both client styles use the cheap path
        # (the paper's generated-marshalling pain was on responses).
        request_bytes, marshal_cost = self._hand_request.encode(request.to_idl())
        yield from self._compute(
            max(marshal_cost, self.calibration.request_marshal_ms), background
        )
        try:
            reply = yield from self._request_with_failover(
                request, len(request_bytes)
            )
        except NetworkError as err:
            # Degradation ladder, rung 3: every replica unreachable and
            # retries exhausted — serve an expired entry if one is still
            # within the stale window.
            stale = yield from self._serve_stale(key, err)
            if stale is not None:
                span.set(served_stale=True)
                return stale
            raise
        if not isinstance(reply, QueryResponse):
            raise BindError(f"unexpected reply {reply!r}")
        # Demarshal the response with this client's style.
        response_bytes, _ = HandcodedMarshaller(QUERY_RESPONSE_IDL).encode(
            reply.to_idl()
        )
        _, demarshal_cost = self._response_m.decode(response_bytes)
        yield from self._compute(demarshal_cost, background)
        if reply.status == STATUS_NXDOMAIN:
            if self.cache is not None and self.negative_ttl_ms > 0:
                insert_cost = self.cache.insert(
                    key, _NEGATIVE, 0, self.negative_ttl_ms
                )
                yield from self._compute(insert_cost, background)
            raise NameNotFound(f"{name} {rtype}")
        if reply.status != STATUS_OK:
            raise BindError(f"status {reply.status} for {name} {rtype}")
        # --- cache insert -------------------------------------------------
        if self.cache is not None and reply.records:
            ttl = min(r.ttl for r in reply.records)
            payload: object
            if self.cache.format is CacheFormat.MARSHALLED:
                payload = response_bytes
            else:
                payload = list(reply.records)
            insert_cost = self.cache.insert(key, payload, len(reply.records), ttl)
            yield from self._compute(insert_cost, background)
        return list(reply.records)

    def _serve_stale(
        self, key: object, err: Exception
    ) -> typing.Generator:
        """Return expired-but-retained records for ``key``, or None.

        Only transient failures qualify — a permanent error (no route)
        will not be cured by the authoritative server coming back, so
        masking it with stale data would hide a configuration problem.
        """
        policy = self.policy
        cache = self.cache
        if (
            cache is None
            or policy is None
            or policy.stale_window_ms <= 0
            or not is_transient(err)
        ):
            return None
        entry = cache.stale_entry(key, policy.stale_window_ms)
        if entry is None or entry.payload is _NEGATIVE:
            return None
        if cache.format is CacheFormat.MARSHALLED:
            value, demarshal_cost = self._response_m.decode(
                typing.cast(bytes, entry.payload)
            )
            records = QueryResponse.from_idl(value).records
            yield from self.host.cpu.compute(
                cache.hit_cost(entry, demarshal_cost)
            )
        else:
            records = list(typing.cast(list, entry.payload))
            yield from self.host.cpu.compute(cache.hit_cost(entry))
        self.env.stats.counter(f"bind.{self.name}.stale_hits").increment()
        self.env.trace.emit(
            "bind",
            f"{self.name}: serving stale {key} ({err!r})",
        )
        return records

    def _request_with_failover(
        self, payload: object, size_bytes: int
    ) -> typing.Generator:
        """One read request against the replica set.

        With a :class:`~repro.resolution.ReplicaPolicy` whose scheduling
        is enabled, the exchange is replica-aware (adaptive ordering,
        breaker skip, hedging); otherwise it is the prototype's static
        primary-then-secondaries failover.  Both honour the
        :class:`ResolutionPolicy` retry rounds.
        """
        if self._scheduler is not None:
            reply = yield from self._request_adaptive(payload, size_bytes)
            return reply
        reply = yield from self._request_ordered(payload, size_bytes)
        return reply

    def _request_ordered(
        self, payload: object, size_bytes: int
    ) -> typing.Generator:
        """Read-request fan-out: primary, then each secondary, with
        policy-driven retry rounds.

        One *round* tries every replica once; with a
        :class:`ResolutionPolicy`, transiently failed rounds repeat up
        to ``attempts`` times with jittered exponential backoff between
        rounds.  Raises the last network error if all rounds fail.
        """
        policy = self.policy
        rounds = policy.attempts if policy is not None else 1
        timeout_ms = policy.call_timeout_ms if policy is not None else None
        last_error: typing.Optional[Exception] = None
        for round_index in range(rounds):
            if round_index:
                self.env.stats.counter(f"bind.{self.name}.retries").increment()
                assert policy is not None
                delay = policy.backoff_ms(
                    round_index - 1,
                    self.env.rng.stream(f"bind.backoff:{self.name}"),
                )
                if delay > 0:
                    yield self.env.timeout(delay)
            with self.env.obs.span("bind.round", round=round_index):
                for endpoint in [self.server] + self.secondaries:
                    with self.env.obs.span(
                        "bind.leg", endpoint=str(endpoint)
                    ) as leg:
                        try:
                            reply = yield from self.transport.request(
                                self.host,
                                endpoint,
                                payload,
                                size_bytes,
                                timeout_ms=timeout_ms,
                            )
                        except NetworkError as err:
                            leg.set(
                                outcome="error",
                                error_type=type(err).__name__,
                            )
                            last_error = err
                            self.env.stats.counter(
                                f"bind.{self.name}.failovers"
                            ).increment()
                            continue
                        leg.set(outcome="won")
                        return reply
                assert last_error is not None
                if not is_transient(last_error):
                    raise last_error
        assert last_error is not None
        raise last_error

    def _request_adaptive(
        self, payload: object, size_bytes: int
    ) -> typing.Generator:
        """Replica-aware read: same retry-round structure as
        :meth:`_request_ordered`, but each round is one
        :meth:`_hedged_exchange` over the scheduler's plan instead of a
        static walk of the replica list."""
        policy = self.policy
        rounds = policy.attempts if policy is not None else 1
        timeout_ms = policy.call_timeout_ms if policy is not None else None
        last_error: typing.Optional[Exception] = None
        for round_index in range(rounds):
            if round_index:
                self.env.stats.counter(f"bind.{self.name}.retries").increment()
                assert policy is not None
                delay = policy.backoff_ms(
                    round_index - 1,
                    self.env.rng.stream(f"bind.backoff:{self.name}"),
                )
                if delay > 0:
                    yield self.env.timeout(delay)
            with self.env.obs.span("bind.round", round=round_index) as rspan:
                try:
                    reply = yield from self._hedged_exchange(
                        payload, size_bytes, timeout_ms
                    )
                    return reply
                except NetworkError as err:
                    rspan.set(error_type=type(err).__name__)
                    last_error = err
                    if not is_transient(err):
                        raise
        assert last_error is not None
        raise last_error

    def _hedged_exchange(
        self, payload: object, size_bytes: int, timeout_ms: typing.Optional[float]
    ) -> typing.Generator:
        """One round against the replica set, with hedging.

        The scheduler's best replica is tried first.  If no answer has
        arrived after the hedge delay (the policy quantile of recent
        latencies), the same request is re-issued to the next replica in
        the plan — first answer wins, the loser's reply is discarded
        (its latency still feeds the scheduler).  A failed leg falls
        through to the next unplanned replica immediately, exactly like
        the static failover walk; the exchange fails only when every
        planned replica has failed.
        """
        env = self.env
        scheduler = self._scheduler
        assert scheduler is not None
        replica_policy = self.replica_policy
        assert replica_policy is not None
        queue = scheduler.plan()
        # Legs run as their own processes; the caller's span context must
        # travel into them explicitly.
        obs_parent = env.obs.current()
        result = env.event()
        # The result may be failed with nobody parked on it (e.g. the
        # last leg fails while the winner already returned) — that must
        # never surface at the kernel.
        result.defuse()
        pending = {"outstanding": 0}

        def launch(state: ReplicaState, hedge: bool) -> None:
            pending["outstanding"] += 1
            scheduler.record_start(state, hedge=hedge)
            if hedge:
                env.stats.counter(f"bind.{self.name}.hedges").increment()

            def leg() -> typing.Generator:
                start = env.now
                with env.obs.span(
                    "bind.leg",
                    parent=obs_parent,
                    endpoint=state.label,
                    hedge=hedge,
                ) as lspan:
                    try:
                        reply = yield from self.transport.request(
                            self.host,
                            state.endpoint,
                            payload,
                            size_bytes,
                            timeout_ms=timeout_ms,
                        )
                    except NetworkError as err:
                        lspan.set(
                            outcome="error", error_type=type(err).__name__
                        )
                        pending["outstanding"] -= 1
                        scheduler.record_failure(state, env.now - start)
                        if result.triggered:
                            return
                        env.stats.counter(
                            f"bind.{self.name}.failovers"
                        ).increment()
                        if queue:
                            launch(queue.pop(0), hedge=False)
                        elif pending["outstanding"] == 0:
                            result.fail(err)
                        return
                    except Exception as err:
                        # Application-level failure (e.g. a RemoteCallError
                        # from the server): the replica *answered*, so it is
                        # healthy — but no other replica will answer better.
                        lspan.set(outcome="app_error")
                        pending["outstanding"] -= 1
                        scheduler.record_success(
                            state, env.now - start, won=False
                        )
                        if not result.triggered:
                            result.fail(err)
                        return
                    pending["outstanding"] -= 1
                    won = not result.triggered
                    lspan.set(outcome="won" if won else "lost")
                    scheduler.record_success(state, env.now - start, won=won)
                    if won:
                        result.succeed(reply)

            env.process(leg(), name=f"bind.{self.name}.leg:{state.label}")

        launch(queue.pop(0), hedge=False)
        hedges_left = (
            replica_policy.max_hedges if replica_policy.hedging else 0
        )
        while not result.triggered:
            delay = (
                scheduler.hedge_delay_ms()
                if hedges_left > 0 and queue
                else None
            )
            if delay is None:
                # Nothing left to hedge onto: just wait the result out
                # (raises the failure if every leg failed).
                reply = yield result
                return reply
            timer = env.timeout(delay)
            yield env.any_of([result, timer])
            if result.triggered:
                break
            hedges_left -= 1
            launch(queue.pop(0), hedge=True)
        return result.value

    # ------------------------------------------------------------------
    def lookup_batch(
        self, questions: typing.Sequence[BatchQuestion]
    ) -> typing.Generator:
        """Send several (possibly chained) questions in one round trip.

        Returns one :class:`QueryResponse` per question, in question
        order; per-question failures travel as answer statuses, never
        exceptions.  Successful answers are inserted into the cache
        under their *answer* owner name (chained questions only learn
        their owner server-side).  Identical concurrent batches coalesce
        like single lookups when the fast path enables it.
        """
        questions = list(questions)
        key = ("batch",) + tuple(
            (q.name, q.rtype.value, q.chain_from, q.chain_field)
            for q in questions
        )
        with self.env.obs.span(
            "bind.batch", resolver=self.name, questions=len(questions)
        ) as span:
            fast = self.fast_path
            if fast is not None and fast.coalesce:
                flight = self._flights.get(key)
                if flight is not None:
                    span.set(outcome="coalesced")
                    answers = yield from self._follow(flight)
                    return answers
                span.set(outcome="miss", role="leader")
                answers = yield from self._lead(
                    key, self._fetch_batch(questions)
                )
                return answers
            answers, _count = yield from self._fetch_batch(questions)
            return answers

    def _fetch_batch(
        self, questions: typing.List[BatchQuestion]
    ) -> typing.Generator:
        """One batched exchange; returns ``(answers, total_records)``."""
        env = self.env
        env.stats.counter(f"bind.{self.name}.batch_lookups").increment()
        # One per-call overhead for the whole batch: with six sequential
        # mappings this control cost is paid six times; here, once.
        if self.per_call_overhead_ms:
            yield from self.host.cpu.compute(self.per_call_overhead_ms)
        request = BatchQueryRequest(questions)
        request_bytes, marshal_cost = HandcodedMarshaller(
            BATCH_QUERY_REQUEST_IDL
        ).encode(request.to_idl())
        yield from self.host.cpu.compute(
            max(marshal_cost, self.calibration.request_marshal_ms)
        )
        reply = yield from self._request_with_failover(
            request, len(request_bytes)
        )
        if not isinstance(reply, BatchQueryResponse):
            raise BindError(f"unexpected reply {reply!r}")
        # Demarshal the whole response with this client's style.
        response_bytes, _ = HandcodedMarshaller(BATCH_QUERY_RESPONSE_IDL).encode(
            reply.to_idl()
        )
        if self._batch_response_m is None:
            if self.marshalling == "generated":
                self._batch_response_m = StubCompiler().marshaller(
                    BATCH_QUERY_RESPONSE_IDL
                )
            else:
                self._batch_response_m = HandcodedMarshaller(
                    BATCH_QUERY_RESPONSE_IDL
                )
        _, demarshal_cost = self._batch_response_m.decode(response_bytes)
        yield from self.host.cpu.compute(demarshal_cost)
        total_records = 0
        cache = self.cache
        for question, answer in zip(questions, reply.answers):
            total_records += len(answer.records)
            if cache is None:
                continue
            if answer.status == STATUS_OK and answer.records:
                owner_key = (
                    str(answer.records[0].name),
                    question.rtype.value,
                )
                ttl = min(r.ttl for r in answer.records)
                payload: object
                if cache.format is CacheFormat.MARSHALLED:
                    payload, _cost = HandcodedMarshaller(
                        QUERY_RESPONSE_IDL
                    ).encode(answer.to_idl())
                else:
                    payload = list(answer.records)
                insert_cost = cache.insert(
                    owner_key, payload, len(answer.records), ttl
                )
                yield from self.host.cpu.compute(insert_cost)
            elif (
                answer.status == STATUS_NXDOMAIN
                and question.chain_from < 0
                and self.negative_ttl_ms > 0
            ):
                # Only literal questions know their owner client-side.
                owner_key = (
                    str(DomainName(question.name)),
                    question.rtype.value,
                )
                insert_cost = cache.insert(
                    owner_key, _NEGATIVE, 0, self.negative_ttl_ms
                )
                yield from self.host.cpu.compute(insert_cost)
        return reply.answers, total_records

    def lookup_address(self, name: typing.Union[str, DomainName]) -> typing.Generator:
        """Name-to-address convenience: returns a dotted-quad string."""
        records = yield from self.lookup(name, RRType.A)
        return records[0].address

    # ------------------------------------------------------------------
    def update(
        self,
        mode: int,
        name: typing.Union[str, DomainName],
        rtype: RRType,
        records: typing.Sequence[ResourceRecord] = (),
    ) -> typing.Generator:
        """Dynamic update (requires the modified BIND); returns new serial."""
        name = DomainName(name)
        request = UpdateRequest(mode, name, rtype, list(records))
        request_bytes, marshal_cost = HandcodedMarshaller(request.idl_type).encode(
            request.to_idl()
        )
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes)
        )
        if not isinstance(reply, UpdateResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status == STATUS_REFUSED:
            raise UpdateRefused(
                f"server at {self.server} does not accept dynamic updates"
            )
        if reply.status == STATUS_NXDOMAIN:
            raise NameNotFound(f"no zone for {name}")
        if reply.status != STATUS_OK:
            raise BindError(f"update failed with status {reply.status}")
        return reply.serial

    def add_record(self, record: ResourceRecord) -> typing.Generator:
        result = yield from self.update(
            UpdateMode.ADD, record.name, record.rtype, [record]
        )
        return result

    def remove_records(
        self, name: typing.Union[str, DomainName], rtype: RRType
    ) -> typing.Generator:
        result = yield from self.update(UpdateMode.DELETE, name, rtype)
        return result

    def replace_records(
        self,
        name: typing.Union[str, DomainName],
        rtype: RRType,
        records: typing.Sequence[ResourceRecord],
    ) -> typing.Generator:
        result = yield from self.update(UpdateMode.REPLACE, name, rtype, records)
        return result

    def update_batch(
        self, ops: typing.Sequence[UpdateOp]
    ) -> typing.Generator:
        """Send several dynamic-update operations in one datagram.

        Returns ``(serial, statuses)`` — the zone's serial after the
        batch and one status per operation.  Raises on the first failed
        operation, like the single-op :meth:`update` would have.
        """
        ops = list(ops)
        if not ops:
            raise ValueError("empty update batch")
        request = UpdateBatchRequest(ops)
        request_bytes, marshal_cost = HandcodedMarshaller(
            request.idl_type
        ).encode(request.to_idl())
        yield from self.host.cpu.compute(marshal_cost)
        self.env.stats.counter(
            f"bind.{self.name}.update_batches"
        ).increment()
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes)
        )
        if not isinstance(reply, UpdateBatchResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status == STATUS_REFUSED:
            raise UpdateRefused(
                f"server at {self.server} does not accept dynamic updates"
            )
        for op, status in zip(ops, reply.statuses):
            if status == STATUS_NXDOMAIN:
                raise NameNotFound(f"no zone for {op.name}")
            if status != STATUS_OK:
                raise BindError(
                    f"batched update of {op.name} failed with status {status}"
                )
        if reply.status != STATUS_OK:
            raise BindError(f"update batch failed with status {reply.status}")
        return reply.serial, list(reply.statuses)

    # ------------------------------------------------------------------
    # NOTIFY subscription: invalidation beyond TTL for this cache
    # ------------------------------------------------------------------
    def subscribe_notify(
        self, origin: typing.Union[str, DomainName]
    ) -> typing.Generator:
        """Subscribe to the primary's NOTIFY push for ``origin``.

        On each push past our serial the resolver pulls just the deltas
        through the IXFR journal and installs them into the cache
        (deletions invalidate their keys) — changed bindings stop being
        served long before their TTL would have run out.  Returns the
        zone serial the subscription starts from.
        """
        if self.cache is None:
            raise ValueError("NOTIFY subscription requires a cache")
        origin = DomainName(origin)
        if self._notify_endpoint is None:
            # Replies never route through port dispatch, so an
            # ephemeral-range port is safe to claim for the listener.
            port = self.host.ephemeral_endpoint().port
            self._notify_endpoint = self.host.bind(
                port, _NotifyListener(self)
            )
        request = NotifySubscribeRequest(
            origin,
            str(self._notify_endpoint.address),
            self._notify_endpoint.port,
        )
        request_bytes, marshal_cost = HandcodedMarshaller(
            request.idl_type
        ).encode(request.to_idl())
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes)
        )
        if (
            not isinstance(reply, NotifySubscribeResponse)
            or reply.status != STATUS_OK
        ):
            raise BindError(f"NOTIFY subscription for {origin} refused")
        key = str(origin)
        self._notify_serials[key] = max(
            reply.serial, self._notify_serials.get(key, 0)
        )
        return reply.serial

    def _on_notify(
        self, origin: DomainName, serial: int
    ) -> typing.Generator:
        """A push landed: pull the delta since our serial into the cache.

        Pushes at or behind our serial, or racing an in-flight pull,
        are dropped — the next real bump pushes again.
        """
        key = str(origin)
        have = self._notify_serials.get(key)
        if have is None or serial <= have or key in self._notify_inflight:
            return
        self._notify_inflight.add(key)
        try:
            self.env.stats.counter(
                f"bind.{self.name}.notify_pulls"
            ).increment()
            new_serial, full, deltas, records = (
                yield from self.incremental_zone_transfer(origin, have)
            )
            if full:
                yield from self._install_zone(records)
            else:
                yield from self._install_deltas(deltas)
            self._notify_serials[key] = new_serial
            if key in self._preload_serials:
                self._preload_serials[key] = new_serial
        except (NetworkError, BindError):
            # Missed delta: TTL expiry still bounds the staleness.
            self.env.stats.counter(
                f"bind.{self.name}.notify_pull_failures"
            ).increment()
        finally:
            self._notify_inflight.discard(key)

    # ------------------------------------------------------------------
    def zone_transfer(self, origin: typing.Union[str, DomainName]) -> typing.Generator:
        """AXFR: fetch every record of a zone; returns (serial, records)."""
        origin = DomainName(origin)
        request = XferRequest(origin)
        request_bytes, marshal_cost = HandcodedMarshaller(request.idl_type).encode(
            request.to_idl()
        )
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes), timeout_ms=10_000
        )
        if not isinstance(reply, XferResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status != STATUS_OK:
            raise ZoneNotFound(f"zone transfer of {origin} refused/unknown")
        return reply.serial, list(reply.records)

    def incremental_zone_transfer(
        self, origin: typing.Union[str, DomainName], serial: int
    ) -> typing.Generator:
        """IXFR: fetch the zone's dynamic updates past ``serial``.

        Returns ``(serial, full, deltas, records)``; ``full`` is true
        when the primary's journal no longer covered ``serial`` and the
        reply is a whole-zone snapshot in ``records`` instead.
        """
        origin = DomainName(origin)
        request = IxfrRequest(origin, serial)
        request_bytes, marshal_cost = HandcodedMarshaller(request.idl_type).encode(
            request.to_idl()
        )
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes), timeout_ms=10_000
        )
        if not isinstance(reply, IxfrResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status != STATUS_OK:
            raise ZoneNotFound(f"incremental transfer of {origin} refused/unknown")
        return reply.serial, bool(reply.full), list(reply.deltas), list(reply.records)

    def preload_cache(self, origin: typing.Union[str, DomainName]) -> typing.Generator:
        """Preload the cache from a zone transfer; returns records loaded.

        "The BIND zone transfer mechanism ... was employed to preload
        the caches."  Each transferred record set is installed under its
        (name, type) key with its own TTL.

        With a :class:`~repro.resolution.ReplicaPolicy` whose ``ixfr``
        is enabled, a *re*-preload asks the primary only for the updates
        past the serial of the previous preload and installs just the
        changed record sets (deletions invalidate their keys), so the
        steady-state cost is proportional to churn rather than zone
        size.  A truncated journal degrades to the full install.
        """
        if self.cache is None:
            raise ValueError("preload requires a cache")
        origin = DomainName(origin)
        have = self._preload_serials.get(str(origin))
        replica_policy = self.replica_policy
        if replica_policy is not None and replica_policy.ixfr and have is not None:
            serial, full, deltas, records = (
                yield from self.incremental_zone_transfer(origin, have)
            )
            if not full:
                loaded = yield from self._install_deltas(deltas)
                self._preload_serials[str(origin)] = serial
                self.env.stats.counter(
                    f"bind.{self.name}.incremental_preloads"
                ).increment()
                return loaded
            # Journal truncated: the reply already carries the snapshot.
            self.env.stats.counter(
                f"bind.{self.name}.preload_fallbacks"
            ).increment()
        else:
            serial, records = yield from self.zone_transfer(origin)
        yield from self._install_zone(records)
        self._preload_serials[str(origin)] = serial
        return len(records)

    def _install_zone(
        self, records: typing.List[ResourceRecord]
    ) -> typing.Generator:
        """Install a full transfer's records into the cache."""
        assert self.cache is not None
        groups: typing.Dict[typing.Tuple[str, int], typing.List[ResourceRecord]] = {}
        for record in records:
            groups.setdefault((str(record.name), record.rtype.value), []).append(record)
        # Installing each entry pays the per-record install cost (the
        # dominant term of the paper's 390 ms preload).
        install_cost = self.calibration.xfer_install_per_record_ms * len(records)
        yield from self.host.cpu.compute(install_cost)
        for key, group in groups.items():
            ttl = min(r.ttl for r in group)
            if self.cache.format is CacheFormat.MARSHALLED:
                payload_bytes, _ = HandcodedMarshaller(QUERY_RESPONSE_IDL).encode(
                    QueryResponse(STATUS_OK, group).to_idl()
                )
                self.cache.insert(key, payload_bytes, len(group), ttl)
            else:
                self.cache.insert(key, list(group), len(group), ttl)

    def _install_deltas(
        self, deltas: typing.List[ZoneDelta]
    ) -> typing.Generator:
        """Install journal deltas into the cache; returns records loaded.

        The install cost covers only the delta's records — this is what
        makes an IXFR re-preload cheap at low churn.
        """
        assert self.cache is not None
        loaded = sum(len(d.records) for d in deltas)
        install_cost = self.calibration.xfer_install_per_record_ms * loaded
        if install_cost > 0:
            yield from self.host.cpu.compute(install_cost)
        for delta in deltas:
            key = (str(delta.name), delta.rtype.value)
            if not delta.records:
                self.cache.invalidate(key)
                continue
            group = list(delta.records)
            ttl = min(r.ttl for r in group)
            if self.cache.format is CacheFormat.MARSHALLED:
                payload_bytes, _ = HandcodedMarshaller(QUERY_RESPONSE_IDL).encode(
                    QueryResponse(STATUS_OK, group).to_idl()
                )
                self.cache.insert(key, payload_bytes, len(group), ttl)
            else:
                self.cache.insert(key, group, len(group), ttl)
        return loaded


class _NotifyListener(Service):
    """Receives the primary's NOTIFY pushes for a subscribed resolver."""

    def __init__(self, resolver: BindResolver):
        self.resolver = resolver

    def handle(self, datagram, responder):
        request = datagram.payload
        if isinstance(request, NotifyRequest):
            yield from self.resolver._on_notify(
                DomainName(request.origin), request.serial
            )
