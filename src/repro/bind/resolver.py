"""The BIND client resolver.

Two client styles share this class:

- the **conventional resolver** using the standard (hand-coded) BIND
  library routines — this is what a 27 ms name-to-address lookup means;
- the **HRPC interface to BIND** the HNS built, whose request/response
  marshalling comes from the stub compiler (``marshalling="generated"``)
  and which pays an extra per-call Raw-HRPC control overhead.

Either style can run with no cache, a marshalled cache, or a
demarshalled cache — the three columns of Table 3.2 — and can preload
its cache with a zone transfer, the mechanism the paper borrowed for
HNS cache preloading.
"""

from __future__ import annotations

import typing

from repro.bind.cache import CacheFormat, ResolverCache
from repro.bind.errors import BindError, NameNotFound, UpdateRefused, ZoneNotFound
from repro.bind.messages import (
    QUERY_REQUEST_IDL,
    QUERY_RESPONSE_IDL,
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_REFUSED,
    QueryRequest,
    QueryResponse,
    UpdateMode,
    UpdateRequest,
    UpdateResponse,
    XferRequest,
    XferResponse,
)
from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.errors import NetworkError, is_transient
from repro.net.host import Host
from repro.net.transport import Transport
from repro.resolution import ResolutionPolicy
from repro.serial import HandcodedMarshaller, StubCompiler


#: sentinel payload marking a cached NXDOMAIN answer
_NEGATIVE = object()


class BindResolver:
    """Client-side lookup/update/transfer against one BIND server."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        server: Endpoint,
        marshalling: str = "handcoded",
        cache: typing.Optional[ResolverCache] = None,
        per_call_overhead_ms: float = 0.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "resolver",
        secondaries: typing.Sequence[Endpoint] = (),
        negative_ttl_ms: float = 0.0,
        policy: typing.Optional[ResolutionPolicy] = None,
    ):
        if marshalling not in ("handcoded", "generated"):
            raise ValueError(f"unknown marshalling style {marshalling!r}")
        if negative_ttl_ms < 0:
            raise ValueError("negative-cache TTL must be >= 0")
        self.host = host
        self.env = host.env
        self.transport = transport
        self.server = server
        #: replica servers tried, in order, when the primary is
        #: unreachable (reads only; updates always go to the primary)
        self.secondaries = list(secondaries)
        self.cache = cache
        self.per_call_overhead_ms = per_call_overhead_ms
        self.calibration = calibration
        self.name = name
        self.marshalling = marshalling
        #: fault-tolerance knobs: None reproduces the prototype's
        #: single-pass behaviour (one try per replica, no serve-stale)
        self.policy = policy
        #: >0 enables caching of NXDOMAIN answers for that many ms — an
        #: extension of the TTL scheme that spares repeated misses for
        #: absent names (disabled by default, as in the prototype).  An
        #: explicit value wins over the policy's.
        if negative_ttl_ms <= 0 and policy is not None:
            negative_ttl_ms = policy.negative_ttl_ms
        self.negative_ttl_ms = negative_ttl_ms
        if marshalling == "generated":
            compiler = StubCompiler()
            self._request_m = compiler.marshaller(QUERY_REQUEST_IDL)
            self._response_m = compiler.marshaller(QUERY_RESPONSE_IDL)
        else:
            self._request_m = HandcodedMarshaller(QUERY_REQUEST_IDL)
            self._response_m = HandcodedMarshaller(QUERY_RESPONSE_IDL)
        self._hand_request = HandcodedMarshaller(QUERY_REQUEST_IDL)

    # ------------------------------------------------------------------
    def lookup(
        self,
        name: typing.Union[str, DomainName],
        rtype: RRType = RRType.A,
    ) -> typing.Generator:
        """Resolve (name, rtype); returns a list of ResourceRecords.

        Raises :class:`NameNotFound` on NXDOMAIN.  This is a process
        generator: drive it with ``yield from`` inside a simulation.
        """
        name = DomainName(name)
        key = (str(name), rtype.value)
        env = self.env
        # --- cache probe --------------------------------------------------
        if self.cache is not None:
            entry, probe_cost = self.cache.probe(key)
            yield from self.host.cpu.compute(probe_cost)
            if entry is not None and entry.payload is _NEGATIVE:
                env.stats.counter(
                    f"bind.{self.name}.negative_hits"
                ).increment()
                raise NameNotFound(f"{name} {rtype} (negatively cached)")
            if entry is not None:
                if self.cache.format is CacheFormat.MARSHALLED:
                    value, demarshal_cost = self._response_m.decode(
                        typing.cast(bytes, entry.payload)
                    )
                    records = QueryResponse.from_idl(value).records
                    yield from self.host.cpu.compute(
                        self.cache.hit_cost(entry, demarshal_cost)
                    )
                else:
                    records = list(typing.cast(list, entry.payload))
                    yield from self.host.cpu.compute(self.cache.hit_cost(entry))
                env.stats.counter(f"bind.{self.name}.cache_hits").increment()
                return records
        # --- remote call --------------------------------------------------
        env.stats.counter(f"bind.{self.name}.remote_lookups").increment()
        if self.per_call_overhead_ms:
            yield from self.host.cpu.compute(self.per_call_overhead_ms)
        request = QueryRequest(name, rtype)
        # Requests are fixed-shape; both client styles use the cheap path
        # (the paper's generated-marshalling pain was on responses).
        request_bytes, marshal_cost = self._hand_request.encode(request.to_idl())
        yield from self.host.cpu.compute(
            max(marshal_cost, self.calibration.request_marshal_ms)
        )
        try:
            reply = yield from self._request_with_failover(
                request, len(request_bytes)
            )
        except NetworkError as err:
            # Degradation ladder, rung 3: every replica unreachable and
            # retries exhausted — serve an expired entry if one is still
            # within the stale window.
            stale = yield from self._serve_stale(key, err)
            if stale is not None:
                return stale
            raise
        if not isinstance(reply, QueryResponse):
            raise BindError(f"unexpected reply {reply!r}")
        # Demarshal the response with this client's style.
        response_bytes, _ = HandcodedMarshaller(QUERY_RESPONSE_IDL).encode(
            reply.to_idl()
        )
        _, demarshal_cost = self._response_m.decode(response_bytes)
        yield from self.host.cpu.compute(demarshal_cost)
        if reply.status == STATUS_NXDOMAIN:
            if self.cache is not None and self.negative_ttl_ms > 0:
                insert_cost = self.cache.insert(
                    key, _NEGATIVE, 0, self.negative_ttl_ms
                )
                yield from self.host.cpu.compute(insert_cost)
            raise NameNotFound(f"{name} {rtype}")
        if reply.status != STATUS_OK:
            raise BindError(f"status {reply.status} for {name} {rtype}")
        # --- cache insert -------------------------------------------------
        if self.cache is not None and reply.records:
            ttl = min(r.ttl for r in reply.records)
            payload: object
            if self.cache.format is CacheFormat.MARSHALLED:
                payload = response_bytes
            else:
                payload = list(reply.records)
            insert_cost = self.cache.insert(key, payload, len(reply.records), ttl)
            yield from self.host.cpu.compute(insert_cost)
        return list(reply.records)

    def _serve_stale(
        self, key: object, err: Exception
    ) -> typing.Generator:
        """Return expired-but-retained records for ``key``, or None.

        Only transient failures qualify — a permanent error (no route)
        will not be cured by the authoritative server coming back, so
        masking it with stale data would hide a configuration problem.
        """
        policy = self.policy
        if (
            self.cache is None
            or policy is None
            or policy.stale_window_ms <= 0
            or not is_transient(err)
        ):
            return None
        entry = self.cache.stale_entry(key, policy.stale_window_ms)
        if entry is None or entry.payload is _NEGATIVE:
            return None
        if self.cache.format is CacheFormat.MARSHALLED:
            value, demarshal_cost = self._response_m.decode(
                typing.cast(bytes, entry.payload)
            )
            records = QueryResponse.from_idl(value).records
            yield from self.host.cpu.compute(
                self.cache.hit_cost(entry, demarshal_cost)
            )
        else:
            records = list(typing.cast(list, entry.payload))
            yield from self.host.cpu.compute(self.cache.hit_cost(entry))
        self.env.stats.counter(f"bind.{self.name}.stale_hits").increment()
        self.env.trace.emit(
            "bind",
            f"{self.name}: serving stale {key} ({err!r})",
        )
        return records

    def _request_with_failover(
        self, payload: object, size_bytes: int
    ) -> typing.Generator:
        """Read-request fan-out: primary, then each secondary, with
        policy-driven retry rounds.

        One *round* tries every replica once; with a
        :class:`ResolutionPolicy`, transiently failed rounds repeat up
        to ``attempts`` times with jittered exponential backoff between
        rounds.  Raises the last network error if all rounds fail.
        """
        policy = self.policy
        rounds = policy.attempts if policy is not None else 1
        timeout_ms = policy.call_timeout_ms if policy is not None else None
        last_error: typing.Optional[Exception] = None
        for round_index in range(rounds):
            if round_index:
                self.env.stats.counter(f"bind.{self.name}.retries").increment()
                assert policy is not None
                delay = policy.backoff_ms(
                    round_index - 1,
                    self.env.rng.stream(f"bind.backoff:{self.name}"),
                )
                if delay > 0:
                    yield self.env.timeout(delay)
            for endpoint in [self.server] + self.secondaries:
                try:
                    reply = yield from self.transport.request(
                        self.host,
                        endpoint,
                        payload,
                        size_bytes,
                        timeout_ms=timeout_ms,
                    )
                except NetworkError as err:
                    last_error = err
                    self.env.stats.counter(
                        f"bind.{self.name}.failovers"
                    ).increment()
                    continue
                return reply
            assert last_error is not None
            if not is_transient(last_error):
                raise last_error
        assert last_error is not None
        raise last_error

    def lookup_address(self, name: typing.Union[str, DomainName]) -> typing.Generator:
        """Name-to-address convenience: returns a dotted-quad string."""
        records = yield from self.lookup(name, RRType.A)
        return records[0].address

    # ------------------------------------------------------------------
    def update(
        self,
        mode: int,
        name: typing.Union[str, DomainName],
        rtype: RRType,
        records: typing.Sequence[ResourceRecord] = (),
    ) -> typing.Generator:
        """Dynamic update (requires the modified BIND); returns new serial."""
        name = DomainName(name)
        request = UpdateRequest(mode, name, rtype, list(records))
        request_bytes, marshal_cost = HandcodedMarshaller(request.idl_type).encode(
            request.to_idl()
        )
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes)
        )
        if not isinstance(reply, UpdateResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status == STATUS_REFUSED:
            raise UpdateRefused(
                f"server at {self.server} does not accept dynamic updates"
            )
        if reply.status == STATUS_NXDOMAIN:
            raise NameNotFound(f"no zone for {name}")
        if reply.status != STATUS_OK:
            raise BindError(f"update failed with status {reply.status}")
        return reply.serial

    def add_record(self, record: ResourceRecord) -> typing.Generator:
        result = yield from self.update(
            UpdateMode.ADD, record.name, record.rtype, [record]
        )
        return result

    def remove_records(
        self, name: typing.Union[str, DomainName], rtype: RRType
    ) -> typing.Generator:
        result = yield from self.update(UpdateMode.DELETE, name, rtype)
        return result

    def replace_records(
        self,
        name: typing.Union[str, DomainName],
        rtype: RRType,
        records: typing.Sequence[ResourceRecord],
    ) -> typing.Generator:
        result = yield from self.update(UpdateMode.REPLACE, name, rtype, records)
        return result

    # ------------------------------------------------------------------
    def zone_transfer(self, origin: typing.Union[str, DomainName]) -> typing.Generator:
        """AXFR: fetch every record of a zone; returns (serial, records)."""
        origin = DomainName(origin)
        request = XferRequest(origin)
        request_bytes, marshal_cost = HandcodedMarshaller(request.idl_type).encode(
            request.to_idl()
        )
        yield from self.host.cpu.compute(marshal_cost)
        reply = yield from self.transport.request(
            self.host, self.server, request, len(request_bytes), timeout_ms=10_000
        )
        if not isinstance(reply, XferResponse):
            raise BindError(f"unexpected reply {reply!r}")
        if reply.status != STATUS_OK:
            raise ZoneNotFound(f"zone transfer of {origin} refused/unknown")
        return reply.serial, list(reply.records)

    def preload_cache(self, origin: typing.Union[str, DomainName]) -> typing.Generator:
        """Preload the cache from a zone transfer; returns records loaded.

        "The BIND zone transfer mechanism ... was employed to preload
        the caches."  Each transferred record set is installed under its
        (name, type) key with its own TTL.
        """
        if self.cache is None:
            raise ValueError("preload requires a cache")
        serial, records = yield from self.zone_transfer(origin)
        groups: typing.Dict[typing.Tuple[str, int], typing.List[ResourceRecord]] = {}
        for record in records:
            groups.setdefault((str(record.name), record.rtype.value), []).append(record)
        # Installing each entry pays the per-record install cost (the
        # dominant term of the paper's 390 ms preload).
        install_cost = self.calibration.xfer_install_per_record_ms * len(records)
        yield from self.host.cpu.compute(install_cost)
        for key, group in groups.items():
            ttl = min(r.ttl for r in group)
            if self.cache.format is CacheFormat.MARSHALLED:
                payload_bytes, _ = HandcodedMarshaller(QUERY_RESPONSE_IDL).encode(
                    QueryResponse(STATUS_OK, group).to_idl()
                )
                self.cache.insert(key, payload_bytes, len(group), ttl)
            else:
                self.cache.insert(key, list(group), len(group), ttl)
        return len(records)
