"""The resolver cache, in both formats from Table 3.2.

"In the initial version, we kept data in its marshalled form, and
demarshalled it upon every access, expecting that marshalling was a
minor expense.  To our surprise, the cost of marshalling was very high
... by simply changing the cache to keep demarshalled information, the
times decreased dramatically."

The cache is TTL-invalidated ("Cached data is tagged with a
time-to-live field for cache invalidation"), matching BIND's own
mechanism, and charges the calibrated probe/copy/insert costs so that
cache-hit experiments land on the paper's numbers.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.kernel import Environment


class CacheFormat(enum.Enum):
    """What representation the cache stores."""

    MARSHALLED = "marshalled"      # wire bytes; demarshal on every hit
    DEMARSHALLED = "demarshalled"  # ready-to-use values; copy on hit


@dataclasses.dataclass
class CacheEntry:
    """One cached result."""

    payload: object          # bytes if MARSHALLED, value if DEMARSHALLED
    record_count: int
    expires_at: float
    inserted_at: float


class ResolverCache:
    """TTL cache with optional LRU capacity bound.

    Probe/copy/insert charge *returned costs* (ms) that the calling
    process is responsible for yielding as CPU time — the cache itself
    is pure bookkeeping, so it can also be used outside a simulation.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "cache",
        fmt: CacheFormat = CacheFormat.DEMARSHALLED,
        capacity: typing.Optional[int] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        stale_retention_ms: float = 0.0,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        if stale_retention_ms < 0:
            raise ValueError("stale retention must be >= 0")
        self.env = env
        self.name = name
        self.format = fmt
        self.capacity = capacity
        self.calibration = calibration
        #: how long expired entries are kept around for serve-stale
        #: (0 = drop on the probe that finds them expired, the
        #: prototype's behaviour)
        self.stale_retention_ms = stale_retention_ms
        self._entries: "collections.OrderedDict[object, CacheEntry]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        #: lookups that piggybacked on another caller's in-flight fetch
        self.coalesced = 0
        #: background refresh-ahead renewals spawned for entries here
        self.refreshes = 0

    def _count(self, counter: str) -> None:
        """Mirror an attribute counter into ``env.stats`` under the
        stable ``cache.<name>.<counter>`` scheme, so benchmarks and
        traces read every cache uniformly."""
        self.env.stats.counter(f"cache.{self.name}.{counter}").increment()

    # ------------------------------------------------------------------
    def probe(self, key: object) -> typing.Tuple[typing.Optional[CacheEntry], float]:
        """Look up ``key``.

        Returns ``(entry or None, cost_ms)``.  Expired entries count as
        misses and are removed.  The cost covers the probe only; hit
        payload processing (copy or demarshal) is charged separately via
        :meth:`hit_cost`.
        """
        cost = self.calibration.cache_probe_ms
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("misses")
            return None, cost
        if entry.expires_at <= self.env.now:
            # Within the stale-retention window the entry stays resident
            # (a fallback for serve-stale); it still reads as a miss.
            if self.env.now - entry.expires_at >= self.stale_retention_ms:
                del self._entries[key]
                self.expirations += 1
                self._count("expirations")
            self.misses += 1
            self._count("misses")
            return None, cost
        self._entries.move_to_end(key)  # LRU maintenance
        self.hits += 1
        self._count("hits")
        return entry, cost

    def stale_entry(
        self, key: object, window_ms: float
    ) -> typing.Optional[CacheEntry]:
        """An entry usable under serve-stale, or None.

        Returns the entry if it is still fresh *or* expired no more than
        ``window_ms`` ago.  Pure bookkeeping: no cost is charged and no
        hit/miss counters move — the caller accounts for stale hits.
        """
        if window_ms < 0:
            raise ValueError("stale window must be >= 0")
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self.env.now - entry.expires_at > window_ms:
            return None
        return entry

    # ------------------------------------------------------------------
    # Iteration (the public face of ``_entries``)
    # ------------------------------------------------------------------
    def entries(
        self, include_stale: bool = False
    ) -> typing.Iterator[typing.Tuple[object, CacheEntry]]:
        """Iterate ``(key, entry)`` pairs without disturbing LRU order.

        By default only live (unexpired) entries are yielded; pass
        ``include_stale=True`` to include expired entries still resident
        under the stale-retention window.
        """
        now = self.env.now
        for key, entry in list(self._entries.items()):
            if include_stale or entry.expires_at > now:
                yield key, entry

    def warm_entries(
        self, suffix: str
    ) -> typing.Iterator[typing.Tuple[str, CacheEntry]]:
        """Live entries whose owner name ends with ``suffix``.

        Keys are matched on their name component: either the key itself
        (a string) or the first element of a tuple key such as the
        resolver's ``(owner, rtype)``.  Yields ``(owner, entry)``.
        """
        for key, entry in self.entries():
            owner = key[0] if isinstance(key, tuple) and key else key
            if isinstance(owner, str) and owner.endswith(suffix):
                yield owner, entry

    def hit_cost(self, entry: CacheEntry, demarshal_cost_ms: float = 0.0) -> float:
        """Cost of materialising a hit for the caller.

        For a demarshalled cache this is the copy cost alone; for a
        marshalled cache the caller passes the (generated or hand-coded)
        demarshal cost of the stored bytes, and pays the copy on top —
        matching the 11.11 vs 0.83 ms split of Table 3.2.
        """
        copy = (
            self.calibration.cache_copy_base_ms
            + self.calibration.cache_copy_per_record_ms * entry.record_count
        )
        if self.format is CacheFormat.MARSHALLED:
            return demarshal_cost_ms + copy
        return copy

    def insert(
        self,
        key: object,
        payload: object,
        record_count: int,
        ttl_ms: float,
    ) -> float:
        """Store a result; returns the insert cost (ms).

        A non-positive TTL means "uncacheable": nothing is stored (the
        probe cost of the failed future lookup is the caller's problem).
        """
        if ttl_ms <= 0:
            return 0.0
        if self.capacity is not None and len(self._entries) >= self.capacity:
            if key not in self._entries:
                self._evict_one()
        self._entries[key] = CacheEntry(
            payload=payload,
            record_count=record_count,
            expires_at=self.env.now + ttl_ms,
            inserted_at=self.env.now,
        )
        self._entries.move_to_end(key)
        return self.calibration.cache_insert_ms

    def _evict_one(self) -> None:
        """Make room for one insert.

        Expired entries (including stale-retained ones kept around for
        serve-stale) are sacrificed first, oldest first, so a stale
        resident never pushes out a live hot entry; only a cache full of
        live entries falls back to plain LRU.
        """
        now = self.env.now
        victim = None
        for key, entry in self._entries.items():  # OrderedDict: LRU first
            if entry.expires_at <= now:
                victim = key
                break
        if victim is not None:
            del self._entries[victim]
        else:
            self._entries.popitem(last=False)
        self.evictions += 1
        self._count("evictions")

    def needs_refresh(self, entry: CacheEntry, fraction: float) -> bool:
        """Is ``entry`` inside the refresh-ahead window?

        True when less than ``fraction`` of the entry's original TTL
        remains — the trigger for spawning a background renewal so the
        entry is replaced before it can expire.
        """
        if fraction <= 0:
            return False
        ttl = entry.expires_at - entry.inserted_at
        if ttl <= 0:
            return False
        return (entry.expires_at - self.env.now) <= fraction * ttl

    def record_coalesced(self) -> None:
        """Count a lookup that joined another caller's in-flight fetch."""
        self.coalesced += 1
        self._count("coalesced")

    def record_refresh(self) -> None:
        """Count a refresh-ahead renewal spawned for an entry here."""
        self.refreshes += 1
        self._count("refreshes")

    def invalidate(self, key: object) -> bool:
        """Drop one entry; True if it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.expires_at > self.env.now

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
