"""BIND protocol messages and their IDL descriptions.

Messages travel through the simulated transports as Python objects; the
IDL descriptions here let clients and servers produce *real wire bytes*
for them, so message sizes (and therefore wire and marshalling costs)
are grounded rather than guessed.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType
from repro.bind.zone import ZoneDelta
from repro.serial import (
    ArrayType,
    OpaqueType,
    StringType,
    StructType,
    U32Type,
)

# Status codes (DNS RCODE subset).
STATUS_OK = 0
STATUS_SERVFAIL = 2
STATUS_NXDOMAIN = 3
STATUS_REFUSED = 5

# ----------------------------------------------------------------------
# IDL descriptions (shared by conventional and HRPC-generated clients)
# ----------------------------------------------------------------------
RR_IDL = StructType(
    "ResourceRecord",
    [
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("rclass", U32Type()),
        ("ttl", U32Type()),
        ("data", OpaqueType(256)),
    ],
)

QUERY_REQUEST_IDL = StructType(
    "QueryRequest",
    [("name", StringType(255)), ("rtype", U32Type())],
)

QUERY_RESPONSE_IDL = StructType(
    "QueryResponse",
    [("status", U32Type()), ("records", ArrayType(RR_IDL, 64))],
)

BATCH_QUESTION_IDL = StructType(
    "BatchQuestion",
    [
        ("name", StringType(255)),
        ("rtype", U32Type()),
        # 0 = literal name; i+1 = substitute a label from answer i
        ("chain", U32Type()),
        ("field", StringType(64)),
    ],
)

BATCH_QUERY_REQUEST_IDL = StructType(
    "BatchQueryRequest",
    [("questions", ArrayType(BATCH_QUESTION_IDL, 16))],
)

BATCH_QUERY_RESPONSE_IDL = StructType(
    "BatchQueryResponse",
    [("answers", ArrayType(QUERY_RESPONSE_IDL, 16))],
)

UPDATE_REQUEST_IDL = StructType(
    "UpdateRequest",
    [
        ("mode", U32Type()),
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("records", ArrayType(RR_IDL, 64)),
    ],
)

UPDATE_RESPONSE_IDL = StructType(
    "UpdateResponse",
    [("status", U32Type()), ("serial", U32Type())],
)

UPDATE_OP_IDL = StructType(
    "UpdateOp",
    [
        ("mode", U32Type()),
        ("name", StringType(255)),
        ("rtype", U32Type()),
        # lease duration in ms granted with this operation (0 = none)
        ("lease", U32Type()),
        ("records", ArrayType(RR_IDL, 64)),
    ],
)

UPDATE_BATCH_REQUEST_IDL = StructType(
    "UpdateBatchRequest",
    [("ops", ArrayType(UPDATE_OP_IDL, 64))],
)

UPDATE_BATCH_RESPONSE_IDL = StructType(
    "UpdateBatchResponse",
    [
        ("status", U32Type()),
        ("serial", U32Type()),
        ("statuses", ArrayType(U32Type(), 64)),
    ],
)

NOTIFY_REQUEST_IDL = StructType(
    "NotifyRequest",
    [("origin", StringType(255)), ("serial", U32Type())],
)

NOTIFY_RESPONSE_IDL = StructType("NotifyResponse", [("status", U32Type())])

NOTIFY_SUBSCRIBE_REQUEST_IDL = StructType(
    "NotifySubscribeRequest",
    [
        ("origin", StringType(255)),
        ("address", StringType(64)),
        ("port", U32Type()),
    ],
)

NOTIFY_SUBSCRIBE_RESPONSE_IDL = StructType(
    "NotifySubscribeResponse",
    [("status", U32Type()), ("serial", U32Type())],
)

XFER_REQUEST_IDL = StructType("XferRequest", [("origin", StringType(255))])

SERIAL_REQUEST_IDL = StructType("SerialRequest", [("origin", StringType(255))])

SERIAL_RESPONSE_IDL = StructType(
    "SerialResponse", [("status", U32Type()), ("serial", U32Type())]
)

XFER_RESPONSE_IDL = StructType(
    "XferResponse",
    [
        ("status", U32Type()),
        ("serial", U32Type()),
        ("records", ArrayType(RR_IDL, 4096)),
    ],
)

IXFR_REQUEST_IDL = StructType(
    "IxfrRequest",
    [("origin", StringType(255)), ("serial", U32Type())],
)

IXFR_DELTA_IDL = StructType(
    "IxfrDelta",
    [
        ("serial", U32Type()),
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("records", ArrayType(RR_IDL, 64)),
    ],
)

IXFR_RESPONSE_IDL = StructType(
    "IxfrResponse",
    [
        ("status", U32Type()),
        ("serial", U32Type()),
        # 1 = the journal could not cover the delta; ``records`` holds a
        # full AXFR-style snapshot and ``deltas`` is empty
        ("full", U32Type()),
        ("deltas", ArrayType(IXFR_DELTA_IDL, 1024)),
        ("records", ArrayType(RR_IDL, 4096)),
    ],
)


def rr_to_idl(record: ResourceRecord) -> dict:
    """Resource record -> IDL dict value."""
    return {
        "name": str(record.name),
        "rtype": record.rtype.value,
        "rclass": 1,
        "ttl": int(record.ttl),
        "data": record.data,
    }


def rr_from_idl(value: typing.Mapping[str, object]) -> ResourceRecord:
    """IDL dict value -> resource record."""
    return ResourceRecord(
        name=DomainName(typing.cast(str, value["name"])),
        rtype=RRType(value["rtype"]),
        ttl=float(typing.cast(int, value["ttl"])),
        data=typing.cast(bytes, value["data"]),
    )


# ----------------------------------------------------------------------
# Message dataclasses
# ----------------------------------------------------------------------
@dataclasses.dataclass
class QueryRequest:
    """A lookup for (name, record type)."""
    name: DomainName
    rtype: RRType

    def to_idl(self) -> dict:
        return {"name": str(self.name), "rtype": self.rtype.value}

    idl_type = QUERY_REQUEST_IDL


@dataclasses.dataclass
class QueryResponse:
    """Status plus the matching resource records."""
    status: int
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "records": [rr_to_idl(r) for r in self.records],
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "QueryResponse":
        return cls(
            status=typing.cast(int, value["status"]),
            records=[rr_from_idl(v) for v in typing.cast(list, value["records"])],
        )

    idl_type = QUERY_RESPONSE_IDL


@dataclasses.dataclass(frozen=True)
class BatchQuestion:
    """One question of a multi-question (batched) query.

    ``chain_from >= 0`` makes this a *chained* question: the server
    resolves it only after answer ``chain_from`` of the same batch, and
    substitutes the value of ``chain_field`` (a ``key=value;...`` field
    of that answer's first record) for the single ``*`` label in
    ``name``.  Chaining is what lets a dependent mapping sequence —
    context -> name service -> NSM — collapse into one round trip.
    """

    name: str
    rtype: RRType
    chain_from: int = -1
    chain_field: str = ""

    def to_idl(self) -> dict:
        return {
            "name": self.name,
            "rtype": self.rtype.value,
            "chain": self.chain_from + 1,
            "field": self.chain_field,
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "BatchQuestion":
        return cls(
            name=typing.cast(str, value["name"]),
            rtype=RRType(value["rtype"]),
            chain_from=typing.cast(int, value["chain"]) - 1,
            chain_field=typing.cast(str, value["field"]),
        )

    idl_type = BATCH_QUESTION_IDL


@dataclasses.dataclass
class BatchQueryRequest:
    """Several (possibly chained) questions in one datagram."""

    questions: typing.List[BatchQuestion]

    def to_idl(self) -> dict:
        return {"questions": [q.to_idl() for q in self.questions]}

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "BatchQueryRequest":
        return cls(
            questions=[
                BatchQuestion.from_idl(v)
                for v in typing.cast(list, value["questions"])
            ]
        )

    idl_type = BATCH_QUERY_REQUEST_IDL


@dataclasses.dataclass
class BatchQueryResponse:
    """One :class:`QueryResponse` per question, in question order."""

    answers: typing.List[QueryResponse]

    def to_idl(self) -> dict:
        return {"answers": [a.to_idl() for a in self.answers]}

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "BatchQueryResponse":
        return cls(
            answers=[
                QueryResponse.from_idl(v)
                for v in typing.cast(list, value["answers"])
            ]
        )

    idl_type = BATCH_QUERY_RESPONSE_IDL


def meta_field(data: bytes, field: str) -> typing.Optional[str]:
    """Pull one ``key=value;...`` field out of UNSPEC record data.

    The server-side half of question chaining: meta-zone records carry
    their payload in this form (see :mod:`repro.core.metastore`), and a
    chained question names the field whose value feeds its ``*`` label.
    Returns None when the data is not in that form or lacks the field.
    """
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError:
        return None
    for part in text.split(";"):
        key, sep, value = part.partition("=")
        if sep and key == field:
            return value
    return None


def substitute_label(template: str, value: str) -> str:
    """Replace the first ``*`` label of ``template`` with ``value``.

    The value is sanitised to a single label the same way registration
    sanitises host names (non-alphanumerics become ``-``), so a chained
    question finds the owner the registrar wrote.
    """
    label = "".join(c if c.isalnum() else "-" for c in value.lower())
    labels = template.split(".")
    for i, piece in enumerate(labels):
        if piece == "*":
            labels[i] = label
            break
    return ".".join(labels)


class UpdateMode:
    """Dynamic-update operations (add / delete / replace)."""
    ADD = 1
    DELETE = 2
    REPLACE = 3


@dataclasses.dataclass
class UpdateRequest:
    """A dynamic update (requires the modified BIND)."""
    mode: int
    name: DomainName
    rtype: RRType
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "mode": self.mode,
            "name": str(self.name),
            "rtype": self.rtype.value,
            "records": [rr_to_idl(r) for r in self.records],
        }

    idl_type = UPDATE_REQUEST_IDL


@dataclasses.dataclass
class UpdateResponse:
    """Update outcome plus the zone's new serial."""
    status: int
    serial: int

    def to_idl(self) -> dict:
        return {"status": self.status, "serial": self.serial}

    idl_type = UPDATE_RESPONSE_IDL


@dataclasses.dataclass(frozen=True)
class UpdateOp:
    """One operation of a batched dynamic update.

    ``lease_ms > 0`` asks the primary to grant a lease: the binding is
    retracted automatically unless re-asserted before the lease runs
    out, and answers for it advertise a TTL capped to the remainder.
    """

    mode: int
    name: DomainName
    rtype: RRType
    records: typing.Tuple[ResourceRecord, ...] = ()
    lease_ms: float = 0.0

    def to_idl(self) -> dict:
        return {
            "mode": self.mode,
            "name": str(self.name),
            "rtype": self.rtype.value,
            "lease": int(self.lease_ms),
            "records": [rr_to_idl(r) for r in self.records],
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "UpdateOp":
        return cls(
            mode=typing.cast(int, value["mode"]),
            name=DomainName(typing.cast(str, value["name"])),
            rtype=RRType(value["rtype"]),
            records=tuple(
                rr_from_idl(v) for v in typing.cast(list, value["records"])
            ),
            lease_ms=float(typing.cast(int, value["lease"])),
        )

    idl_type = UPDATE_OP_IDL


@dataclasses.dataclass
class UpdateBatchRequest:
    """Several coalesced update operations in one datagram."""

    ops: typing.List[UpdateOp]

    def to_idl(self) -> dict:
        return {"ops": [op.to_idl() for op in self.ops]}

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "UpdateBatchRequest":
        return cls(
            ops=[UpdateOp.from_idl(v) for v in typing.cast(list, value["ops"])]
        )

    idl_type = UPDATE_BATCH_REQUEST_IDL


@dataclasses.dataclass
class UpdateBatchResponse:
    """Batch outcome: overall status, final serial, per-op statuses."""

    status: int
    serial: int
    statuses: typing.List[int]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "serial": self.serial,
            "statuses": list(self.statuses),
        }

    idl_type = UPDATE_BATCH_RESPONSE_IDL


@dataclasses.dataclass
class NotifyRequest:
    """Primary -> subscriber push: ``origin`` moved to ``serial``.

    One-way; the subscriber pulls the delta through IXFR at its own
    pace rather than trusting pushed payloads.
    """

    origin: DomainName
    serial: int

    def to_idl(self) -> dict:
        return {"origin": str(self.origin), "serial": self.serial}

    idl_type = NOTIFY_REQUEST_IDL


@dataclasses.dataclass
class NotifyResponse:
    """Acknowledgement of a NOTIFY push (rarely waited on)."""

    status: int

    def to_idl(self) -> dict:
        return {"status": self.status}

    idl_type = NOTIFY_RESPONSE_IDL


@dataclasses.dataclass
class NotifySubscribeRequest:
    """Ask the primary to push serial bumps for ``origin`` to us."""

    origin: DomainName
    address: str
    port: int

    def to_idl(self) -> dict:
        return {
            "origin": str(self.origin),
            "address": self.address,
            "port": self.port,
        }

    idl_type = NOTIFY_SUBSCRIBE_REQUEST_IDL


@dataclasses.dataclass
class NotifySubscribeResponse:
    """Subscription outcome plus the zone's current serial.

    The serial seeds the subscriber's IXFR baseline, so the first push
    pulls exactly the changes since subscription time.
    """

    status: int
    serial: int

    def to_idl(self) -> dict:
        return {"status": self.status, "serial": self.serial}

    idl_type = NOTIFY_SUBSCRIBE_RESPONSE_IDL


@dataclasses.dataclass
class XferRequest:
    """AXFR: ask for the whole zone."""
    origin: DomainName

    def to_idl(self) -> dict:
        return {"origin": str(self.origin)}

    idl_type = XFER_REQUEST_IDL


@dataclasses.dataclass
class SerialRequest:
    """SOA-style probe: what is the zone's current serial?

    Secondaries use this to skip the full transfer when nothing changed.
    """

    origin: DomainName

    def to_idl(self) -> dict:
        return {"origin": str(self.origin)}

    idl_type = SERIAL_REQUEST_IDL


@dataclasses.dataclass
class SerialResponse:
    """The zone's current SOA serial."""
    status: int
    serial: int

    def to_idl(self) -> dict:
        return {"status": self.status, "serial": self.serial}

    idl_type = SERIAL_RESPONSE_IDL


@dataclasses.dataclass
class XferResponse:
    """AXFR answer: serial plus every record of the zone."""
    status: int
    serial: int
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "serial": self.serial,
            "records": [rr_to_idl(r) for r in self.records],
        }

    idl_type = XFER_RESPONSE_IDL


def delta_to_idl(delta: ZoneDelta) -> dict:
    """Journal entry -> IDL dict value."""
    return {
        "serial": delta.serial,
        "name": str(delta.name),
        "rtype": delta.rtype.value,
        "records": [rr_to_idl(r) for r in delta.records],
    }


def delta_from_idl(value: typing.Mapping[str, object]) -> ZoneDelta:
    """IDL dict value -> journal entry."""
    return ZoneDelta(
        serial=typing.cast(int, value["serial"]),
        name=DomainName(typing.cast(str, value["name"])),
        rtype=RRType(value["rtype"]),
        records=tuple(
            rr_from_idl(v) for v in typing.cast(list, value["records"])
        ),
    )


@dataclasses.dataclass
class IxfrRequest:
    """IXFR: ask for the dynamic updates past ``serial``."""

    origin: DomainName
    serial: int

    def to_idl(self) -> dict:
        return {"origin": str(self.origin), "serial": self.serial}

    idl_type = IXFR_REQUEST_IDL


@dataclasses.dataclass
class IxfrResponse:
    """IXFR answer: either the journal delta past the requested serial
    (``full == 0``, entries in ``deltas``) or — when the journal was
    truncated — a full AXFR-style snapshot (``full == 1``, records in
    ``records``)."""

    status: int
    serial: int
    full: int
    deltas: typing.List[ZoneDelta]
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "serial": self.serial,
            "full": self.full,
            "deltas": [delta_to_idl(d) for d in self.deltas],
            "records": [rr_to_idl(r) for r in self.records],
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "IxfrResponse":
        return cls(
            status=typing.cast(int, value["status"]),
            serial=typing.cast(int, value["serial"]),
            full=typing.cast(int, value["full"]),
            deltas=[
                delta_from_idl(v) for v in typing.cast(list, value["deltas"])
            ],
            records=[
                rr_from_idl(v) for v in typing.cast(list, value["records"])
            ],
        )

    idl_type = IXFR_RESPONSE_IDL
