"""BIND protocol messages and their IDL descriptions.

Messages travel through the simulated transports as Python objects; the
IDL descriptions here let clients and servers produce *real wire bytes*
for them, so message sizes (and therefore wire and marshalling costs)
are grounded rather than guessed.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType
from repro.serial import (
    ArrayType,
    OpaqueType,
    StringType,
    StructType,
    U32Type,
)

# Status codes (DNS RCODE subset).
STATUS_OK = 0
STATUS_SERVFAIL = 2
STATUS_NXDOMAIN = 3
STATUS_REFUSED = 5

# ----------------------------------------------------------------------
# IDL descriptions (shared by conventional and HRPC-generated clients)
# ----------------------------------------------------------------------
RR_IDL = StructType(
    "ResourceRecord",
    [
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("rclass", U32Type()),
        ("ttl", U32Type()),
        ("data", OpaqueType(256)),
    ],
)

QUERY_REQUEST_IDL = StructType(
    "QueryRequest",
    [("name", StringType(255)), ("rtype", U32Type())],
)

QUERY_RESPONSE_IDL = StructType(
    "QueryResponse",
    [("status", U32Type()), ("records", ArrayType(RR_IDL, 64))],
)

UPDATE_REQUEST_IDL = StructType(
    "UpdateRequest",
    [
        ("mode", U32Type()),
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("records", ArrayType(RR_IDL, 64)),
    ],
)

UPDATE_RESPONSE_IDL = StructType(
    "UpdateResponse",
    [("status", U32Type()), ("serial", U32Type())],
)

XFER_REQUEST_IDL = StructType("XferRequest", [("origin", StringType(255))])

SERIAL_REQUEST_IDL = StructType("SerialRequest", [("origin", StringType(255))])

SERIAL_RESPONSE_IDL = StructType(
    "SerialResponse", [("status", U32Type()), ("serial", U32Type())]
)

XFER_RESPONSE_IDL = StructType(
    "XferResponse",
    [
        ("status", U32Type()),
        ("serial", U32Type()),
        ("records", ArrayType(RR_IDL, 4096)),
    ],
)


def rr_to_idl(record: ResourceRecord) -> dict:
    """Resource record -> IDL dict value."""
    return {
        "name": str(record.name),
        "rtype": record.rtype.value,
        "rclass": 1,
        "ttl": int(record.ttl),
        "data": record.data,
    }


def rr_from_idl(value: typing.Mapping[str, object]) -> ResourceRecord:
    """IDL dict value -> resource record."""
    return ResourceRecord(
        name=DomainName(typing.cast(str, value["name"])),
        rtype=RRType(value["rtype"]),
        ttl=float(typing.cast(int, value["ttl"])),
        data=typing.cast(bytes, value["data"]),
    )


# ----------------------------------------------------------------------
# Message dataclasses
# ----------------------------------------------------------------------
@dataclasses.dataclass
class QueryRequest:
    """A lookup for (name, record type)."""
    name: DomainName
    rtype: RRType

    def to_idl(self) -> dict:
        return {"name": str(self.name), "rtype": self.rtype.value}

    idl_type = QUERY_REQUEST_IDL


@dataclasses.dataclass
class QueryResponse:
    """Status plus the matching resource records."""
    status: int
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "records": [rr_to_idl(r) for r in self.records],
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "QueryResponse":
        return cls(
            status=typing.cast(int, value["status"]),
            records=[rr_from_idl(v) for v in typing.cast(list, value["records"])],
        )

    idl_type = QUERY_RESPONSE_IDL


class UpdateMode:
    """Dynamic-update operations (add / delete / replace)."""
    ADD = 1
    DELETE = 2
    REPLACE = 3


@dataclasses.dataclass
class UpdateRequest:
    """A dynamic update (requires the modified BIND)."""
    mode: int
    name: DomainName
    rtype: RRType
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "mode": self.mode,
            "name": str(self.name),
            "rtype": self.rtype.value,
            "records": [rr_to_idl(r) for r in self.records],
        }

    idl_type = UPDATE_REQUEST_IDL


@dataclasses.dataclass
class UpdateResponse:
    """Update outcome plus the zone's new serial."""
    status: int
    serial: int

    def to_idl(self) -> dict:
        return {"status": self.status, "serial": self.serial}

    idl_type = UPDATE_RESPONSE_IDL


@dataclasses.dataclass
class XferRequest:
    """AXFR: ask for the whole zone."""
    origin: DomainName

    def to_idl(self) -> dict:
        return {"origin": str(self.origin)}

    idl_type = XFER_REQUEST_IDL


@dataclasses.dataclass
class SerialRequest:
    """SOA-style probe: what is the zone's current serial?

    Secondaries use this to skip the full transfer when nothing changed.
    """

    origin: DomainName

    def to_idl(self) -> dict:
        return {"origin": str(self.origin)}

    idl_type = SERIAL_REQUEST_IDL


@dataclasses.dataclass
class SerialResponse:
    """The zone's current SOA serial."""
    status: int
    serial: int

    def to_idl(self) -> dict:
        return {"status": self.status, "serial": self.serial}

    idl_type = SERIAL_RESPONSE_IDL


@dataclasses.dataclass
class XferResponse:
    """AXFR answer: serial plus every record of the zone."""
    status: int
    serial: int
    records: typing.List[ResourceRecord]

    def to_idl(self) -> dict:
        return {
            "status": self.status,
            "serial": self.serial,
            "records": [rr_to_idl(r) for r in self.records],
        }

    idl_type = XFER_RESPONSE_IDL
