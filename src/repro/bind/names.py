"""Domain names: case-insensitive, dot-separated, hierarchical."""

from __future__ import annotations

import typing

MAX_LABEL = 63
MAX_NAME = 255


class DomainName:
    """An absolute domain name such as ``fiji.cs.washington.edu``.

    Comparison and hashing are case-insensitive, as in DNS.  The root is
    the empty name, written ``.``.
    """

    __slots__ = ("labels",)

    def __init__(self, text: typing.Union[str, "DomainName", typing.Sequence[str]]):
        if isinstance(text, DomainName):
            self.labels: typing.Tuple[str, ...] = text.labels
            return
        if isinstance(text, str):
            stripped = text.strip().rstrip(".")
            labels = tuple(part for part in stripped.split(".")) if stripped else ()
        else:
            labels = tuple(text)
        for label in labels:
            if not label:
                raise ValueError(f"empty label in domain name {text!r}")
            if len(label) > MAX_LABEL:
                raise ValueError(f"label too long ({len(label)} > {MAX_LABEL}): {label!r}")
            if any(c in ". \t\n" for c in label):
                raise ValueError(f"invalid character in label {label!r}")
        if sum(len(l) + 1 for l in labels) > MAX_NAME:
            raise ValueError(f"domain name too long: {text!r}")
        self.labels = tuple(label.lower() for label in labels)

    @property
    def is_root(self) -> bool:
        return not self.labels

    @property
    def parent(self) -> "DomainName":
        if self.is_root:
            raise ValueError("the root has no parent")
        return DomainName(self.labels[1:])

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True if ``self`` equals or falls under ``other``."""
        if len(other.labels) > len(self.labels):
            return False
        return self.labels[len(self.labels) - len(other.labels):] == other.labels

    def child(self, label: str) -> "DomainName":
        return DomainName((label.lower(),) + self.labels)

    def relative_to(self, origin: "DomainName") -> str:
        """The part of this name below ``origin`` (for zone files)."""
        if not self.is_subdomain_of(origin):
            raise ValueError(f"{self} is not under {origin}")
        depth = len(self.labels) - len(origin.labels)
        return ".".join(self.labels[:depth]) if depth else "@"

    def __str__(self) -> str:
        return ".".join(self.labels) if self.labels else "."

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            try:
                other = DomainName(other)
            except ValueError:
                return NotImplemented
        if not isinstance(other, DomainName):
            return NotImplemented
        return self.labels == other.labels

    def __hash__(self) -> int:
        return hash(self.labels)

    def __lt__(self, other: "DomainName") -> bool:
        return self.labels[::-1] < other.labels[::-1]
