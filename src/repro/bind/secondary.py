"""Secondary (replica) BIND servers.

"While the HNS is logically a single, centralized facility, its
implementation must be distributed and replicated for the usual reasons
of performance, availability, and scalability.  Because the
implementation problems associated with these properties are for the
most part successfully addressed in previous name services, we chose to
ease our implementation effort by making use of an existing name
service" — i.e. BIND's own primary/secondary replication, driven by the
zone-transfer mechanism.

A :class:`SecondaryBindServer` answers queries and zone transfers from
its replica zones, refuses dynamic updates (only the primary accepts
those), and runs a refresh process: every ``refresh_ms`` it probes the
primary's SOA serial and pulls a full AXFR only when the serial moved.
With a :class:`~repro.resolution.ReplicaPolicy` whose ``ixfr`` is on,
the pull becomes an *incremental* transfer: only the journal entries
past the replica's serial travel and are applied in place, with a clean
AXFR fallback when the primary's journal has been truncated.
"""

from __future__ import annotations

import typing

from repro.bind.messages import (
    STATUS_OK,
    NotifyRequest,
    NotifySubscribeRequest,
    NotifySubscribeResponse,
    SerialRequest,
    SerialResponse,
)
from repro.bind.names import DomainName
from repro.bind.resolver import BindResolver
from repro.bind.server import BindServer
from repro.bind.zone import Zone
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import Endpoint
from repro.net.errors import NetworkError
from repro.net.host import Host
from repro.net.transport import RemoteCallError, Transport
from repro.resolution import ReplicaPolicy


class SecondaryBindServer(BindServer):
    """A replica server refreshed from a primary by zone transfer."""

    def __init__(
        self,
        host: Host,
        primary: Endpoint,
        origins: typing.Sequence[typing.Union[str, DomainName]],
        transport: Transport,
        refresh_ms: float = 60_000.0,
        lookup_cost_ms: typing.Optional[float] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "",
        replica_policy: typing.Optional[ReplicaPolicy] = None,
    ):
        if refresh_ms <= 0:
            raise ValueError("refresh interval must be positive")
        super().__init__(
            host,
            zones=[Zone(origin) for origin in origins],
            lookup_cost_ms=lookup_cost_ms,
            allow_dynamic_update=False,  # secondaries never take updates
            calibration=calibration,
            name=name or f"bind2@{host.name}",
        )
        self.primary = primary
        self.transport = transport
        self.refresh_ms = refresh_ms
        #: None keeps the full-AXFR refresh the prototype used
        self.replica_policy = replica_policy
        self.replica_serials: typing.Dict[DomainName, int] = {
            zone.origin: 0 for zone in self.zones
        }
        self._resolver = BindResolver(
            host, transport, primary, calibration=calibration,
            name=f"{self.name}.xfer",
        )
        self._refresh_process = None
        #: origins with a NOTIFY-triggered pull already in flight
        self._notify_pulls: typing.Set[DomainName] = set()

    # ------------------------------------------------------------------
    def start_refresh(self):
        """Begin the periodic refresh loop (a simulation process)."""
        if self._refresh_process is not None and self._refresh_process.is_alive:
            raise RuntimeError(f"{self.name}: refresh already running")
        self._refresh_process = self.env.process(
            self._refresh_loop(), name=f"{self.name}.refresh"
        )
        return self._refresh_process

    def _refresh_loop(self):
        while True:
            yield from self.refresh_once()
            yield self.env.timeout(self.refresh_ms)

    def refresh_once(self) -> typing.Generator:
        """One refresh pass over all replica zones; returns zones pulled."""
        pulled = 0
        for zone in self.zones:
            try:
                changed = yield from self._refresh_zone(zone)
            except (NetworkError, RemoteCallError):
                # Primary unreachable: keep serving the last good copy.
                self.env.stats.counter(f"bind.{self.name}.refresh_failures").increment()
                continue
            if changed:
                pulled += 1
        return pulled

    def _refresh_zone(
        self, zone: Zone, force_ixfr: bool = False
    ) -> typing.Generator:
        """SOA-serial probe, then a transfer only if the primary moved on.

        The transfer is incremental (IXFR) when the replica policy asks
        for it — or when a NOTIFY push forces it — and the primary's
        journal still covers our serial; otherwise — including every
        first synchronisation — it is a full AXFR installed atomically
        as a fresh zone.
        """
        request = SerialRequest(zone.origin)
        reply = yield from self.transport.request(
            self.host, self.primary, request, 48
        )
        if not isinstance(reply, SerialResponse) or reply.status != STATUS_OK:
            return False
        if reply.serial <= self.replica_serials[zone.origin]:
            self.env.stats.counter(f"bind.{self.name}.refresh_skips").increment()
            return False
        policy = self.replica_policy
        if force_ixfr or (policy is not None and policy.ixfr):
            serial, full, deltas, records = (
                yield from self._resolver.incremental_zone_transfer(
                    zone.origin, self.replica_serials[zone.origin]
                )
            )
            if not full:
                # Applying a delta pays the install cost only for the
                # records that actually changed.
                install_cost = self.calibration.xfer_install_per_record_ms * sum(
                    len(d.records) for d in deltas
                )
                if install_cost > 0:
                    yield from self.host.cpu.compute(install_cost)
                for delta in deltas:
                    zone.apply_delta(delta)
                self.replica_serials[zone.origin] = serial
                self.env.stats.counter(f"bind.{self.name}.ixfrs").increment()
                self.env.stats.counter(f"bind.{self.name}.refreshes").increment()
                self.env.trace.emit(
                    "bind",
                    f"{self.name}: incrementally refreshed {zone.origin} to "
                    f"serial {serial} ({len(deltas)} deltas)",
                )
                return True
            # Journal truncated: the reply already carries the snapshot.
            self.env.stats.counter(f"bind.{self.name}.axfr_fallbacks").increment()
        else:
            serial, records = yield from self._resolver.zone_transfer(zone.origin)
        # Install the fresh copy atomically.  The replica adopts the
        # primary's serial but discards its (rebuilt, fabricated-serial)
        # journal, so downstream IXFR against this replica falls back to
        # AXFR until real deltas accumulate.
        fresh = Zone(zone.origin, default_ttl=zone.default_ttl)
        for record in records:
            fresh.add(record)
        fresh.serial = serial
        fresh.reset_journal()
        index = self.zones.index(zone)
        self.zones[index] = fresh
        self.replica_serials[zone.origin] = serial
        self.env.stats.counter(f"bind.{self.name}.refreshes").increment()
        self.env.trace.emit(
            "bind",
            f"{self.name}: refreshed {zone.origin} to serial {serial} "
            f"({len(records)} records)",
        )
        return True

    # ------------------------------------------------------------------
    # NOTIFY: the primary pushes serial bumps instead of us polling
    # ------------------------------------------------------------------
    def subscribe_to_primary(self) -> typing.Generator:
        """Subscribe to the primary's NOTIFY push for every replica zone.

        Requires :meth:`listen` first (the push needs somewhere to
        land).  Returns the number of zones the primary accepted; a
        refusal (primary not in NOTIFY mode) just leaves that zone on
        the polling refresh loop.
        """
        if self.endpoint is None:
            raise RuntimeError(f"{self.name}: listen() before subscribing")
        granted = 0
        for zone in self.zones:
            request = NotifySubscribeRequest(
                zone.origin, str(self.endpoint.address), self.endpoint.port
            )
            reply = yield from self.transport.request(
                self.host, self.primary, request, 64
            )
            if (
                isinstance(reply, NotifySubscribeResponse)
                and reply.status == STATUS_OK
            ):
                granted += 1
        return granted

    def _handle_notify(self, request: NotifyRequest, responder):
        """The primary says the zone moved: pull the delta right now.

        The pull reuses the refresh path but forces IXFR — a push-
        triggered refresh is exactly the churn-proportional case the
        journal exists for.  Concurrent pushes for the same origin
        coalesce onto the in-flight pull.
        """
        zone = self.zone_named(DomainName(request.origin))
        yield from self.host.cpu.compute(1.0)
        if zone is None:
            return
        if request.serial <= self.replica_serials.get(zone.origin, 0):
            return
        if zone.origin in self._notify_pulls:
            return
        self._notify_pulls.add(zone.origin)
        self.env.stats.counter(f"bind.{self.name}.notify_pulls").increment()
        try:
            yield from self._refresh_zone(zone, force_ixfr=True)
        except (NetworkError, RemoteCallError):
            # The polling refresh loop will catch the zone up later.
            self.env.stats.counter(
                f"bind.{self.name}.refresh_failures"
            ).increment()
        finally:
            self._notify_pulls.discard(zone.origin)

    @property
    def is_synchronized(self) -> bool:
        """True once every replica zone has been pulled at least once."""
        return all(serial > 0 for serial in self.replica_serials.values())
