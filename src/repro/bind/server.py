"""The BIND server process.

One class serves both roles from the paper:

- a **public** BIND holding actual naming data (construct with default
  flags and ``lookup_cost_ms=Calibration.public_bind_lookup_ms``); and
- the **modified** BIND used as the HNS meta-naming repository
  (``allow_dynamic_update=True`` and a small dedicated-zone lookup
  cost), "a version of BIND, modified to support both dynamic updates
  and also data of unspecified type [Schwartz 1987]".

The server answers queries, dynamic updates, and zone-transfer (AXFR)
requests.  Errors travel as status codes, as in DNS, so a missing name
is an answer, not a crashed call.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind.errors import NameNotFound
from repro.bind.messages import (
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_REFUSED,
    STATUS_SERVFAIL,
    BatchQueryRequest,
    BatchQueryResponse,
    IxfrRequest,
    IxfrResponse,
    NotifyRequest,
    NotifyResponse,
    NotifySubscribeRequest,
    NotifySubscribeResponse,
    QueryRequest,
    QueryResponse,
    SerialRequest,
    SerialResponse,
    UpdateBatchRequest,
    UpdateBatchResponse,
    UpdateMode,
    UpdateOp,
    UpdateRequest,
    UpdateResponse,
    XferRequest,
    XferResponse,
    meta_field,
    substitute_label,
)
from repro.bind.names import DomainName
from repro.bind.rr import RRType
from repro.bind.zone import Zone
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint, NetworkAddress
from repro.net.host import Host, Service
from repro.resolution import UpdatePolicy
from repro.serial import HandcodedMarshaller
from repro.serial.idl import IdlType

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.transport import Transport


class BindServer(Service):
    """An authoritative name server bound to a host."""

    def __init__(
        self,
        host: Host,
        zones: typing.Optional[typing.Sequence[Zone]] = None,
        lookup_cost_ms: typing.Optional[float] = None,
        allow_dynamic_update: bool = False,
        allow_zone_transfer: bool = True,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "",
        update_policy: typing.Optional[UpdatePolicy] = None,
        transport: typing.Optional["Transport"] = None,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.name = name or f"bind@{host.name}"
        self.zones: typing.List[Zone] = list(zones or [])
        self.lookup_cost_ms = (
            lookup_cost_ms
            if lookup_cost_ms is not None
            else calibration.public_bind_lookup_ms
        )
        self.allow_dynamic_update = allow_dynamic_update
        self.allow_zone_transfer = allow_zone_transfer
        #: write-pipeline knobs; None = the prototype's TTL-only path
        self.update_policy = update_policy
        #: needed only to push NOTIFYs; queries never use it
        self.transport = transport
        # Server-side marshalling uses the standard (hand-coded) BIND
        # routines regardless of what the client uses.
        self._marshallers: typing.Dict[int, HandcodedMarshaller] = {}
        self.endpoint: typing.Optional[Endpoint] = None
        #: (name, rtype) -> absolute expiry of the granted lease
        self._leases: typing.Dict[
            typing.Tuple[DomainName, RRType], float
        ] = {}
        self._lease_sweeper = None
        #: zone origin -> subscribed NOTIFY endpoints, in subscription order
        self._subscribers: typing.Dict[
            DomainName, typing.List[Endpoint]
        ] = {}
        #: origins with a debounced NOTIFY fan-out already scheduled
        self._notify_pending: typing.Set[DomainName] = set()

    # ------------------------------------------------------------------
    def listen(self, port: int = WELL_KNOWN_PORTS["bind"]) -> Endpoint:
        """Bind to ``port`` on the server's host."""
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def add_zone(self, zone: Zone) -> None:
        if any(z.origin == zone.origin for z in self.zones):
            raise ValueError(f"duplicate zone {zone.origin}")
        self.zones.append(zone)

    def zone_for(self, name: DomainName) -> typing.Optional[Zone]:
        """Longest-match authoritative zone for ``name``."""
        best: typing.Optional[Zone] = None
        for zone in self.zones:
            if name.is_subdomain_of(zone.origin):
                if best is None or len(zone.origin.labels) > len(best.origin.labels):
                    best = zone
        return best

    def zone_named(self, origin: DomainName) -> typing.Optional[Zone]:
        for zone in self.zones:
            if zone.origin == origin:
                return zone
        return None

    # ------------------------------------------------------------------
    def _marshaller(self, idl_type: IdlType) -> HandcodedMarshaller:
        key = id(idl_type)
        if key not in self._marshallers:
            self._marshallers[key] = HandcodedMarshaller(idl_type)
        return self._marshallers[key]

    def _encode_reply(self, message) -> typing.Tuple[object, int, float]:
        data = self._marshaller(message.idl_type).encode(message.to_idl())
        return message, len(data[0]), data[1]

    # ------------------------------------------------------------------
    # Service interface
    # ------------------------------------------------------------------
    def handle(self, datagram, responder):
        request = datagram.payload
        if isinstance(request, QueryRequest):
            yield from self._handle_query(request, responder)
        elif isinstance(request, BatchQueryRequest):
            yield from self._handle_batch_query(request, responder)
        elif isinstance(request, UpdateRequest):
            yield from self._handle_update(request, responder)
        elif isinstance(request, UpdateBatchRequest):
            yield from self._handle_update_batch(request, responder)
        elif isinstance(request, NotifySubscribeRequest):
            yield from self._handle_subscribe(request, responder)
        elif isinstance(request, NotifyRequest):
            yield from self._handle_notify(request, responder)
        elif isinstance(request, XferRequest):
            yield from self._handle_xfer(request, responder)
        elif isinstance(request, IxfrRequest):
            yield from self._handle_ixfr(request, responder)
        elif isinstance(request, SerialRequest):
            yield from self._handle_serial(request, responder)
        else:
            reply, size, cost = self._encode_reply(
                QueryResponse(STATUS_SERVFAIL, [])
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)

    def _answer_one(self, name: DomainName, rtype) -> QueryResponse:
        """The database side of one question (no cost accounting)."""
        zone = self.zone_for(name)
        if zone is None:
            return QueryResponse(STATUS_NXDOMAIN, [])
        try:
            records = zone.lookup(name, rtype)
        except NameNotFound:
            return QueryResponse(STATUS_NXDOMAIN, [])
        return QueryResponse(STATUS_OK, self._cap_to_lease(name, rtype, records))

    def _cap_to_lease(self, name, rtype, records):
        """Cap advertised TTLs to the lease remainder for leased keys.

        A cache must never hold a leased binding past the point where
        the primary would retract it; without this cap a reader that
        fetched just before a lease lapse would serve the stale binding
        for the record's full TTL.
        """
        if not self._leases:
            return records
        expiry = self._leases.get((name, rtype))
        if expiry is None:
            return records
        remaining = max(0.0, expiry - self.env.now)
        return [
            dataclasses.replace(r, ttl=remaining) if r.ttl > remaining else r
            for r in records
        ]

    def _handle_query(self, request: QueryRequest, responder):
        # ``requests`` counts datagrams (a batch is one), ``queries``
        # counts database walks — the requests-per-resolution metric
        # the fast-path benchmarks report divides over the former.
        self.env.stats.counter(f"bind.{self.name}.requests").increment()
        self.env.stats.counter(f"bind.{self.name}.queries").increment()
        # In-memory database walk: the calibrated fixed per-query cost.
        yield from self.host.cpu.compute(self.lookup_cost_ms)
        reply = self._answer_one(request.name, request.rtype)
        reply, size, marshal_cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(marshal_cost)
        self.env.trace.emit(
            "bind",
            f"{self.name}: {request.name} {request.rtype} -> "
            f"{'OK' if reply.status == STATUS_OK else 'NXDOMAIN'}",
            records=len(reply.records),
        )
        responder(reply, size)

    def _handle_batch_query(self, request: BatchQueryRequest, responder):
        """Answer several (possibly chained) questions in one exchange.

        Questions are resolved in order; each pays the full per-query
        database-walk cost — batching saves round trips and per-call
        overheads, not server work.  A chained question whose dependency
        failed (bad index, non-OK answer, or missing field) yields a
        SERVFAIL answer in its slot rather than failing the batch.
        """
        self.env.stats.counter(f"bind.{self.name}.requests").increment()
        self.env.stats.counter(f"bind.{self.name}.batches").increment()
        answers: typing.List[QueryResponse] = []
        for question in request.questions:
            self.env.stats.counter(f"bind.{self.name}.queries").increment()
            yield from self.host.cpu.compute(self.lookup_cost_ms)
            name_text = question.name
            if question.chain_from >= 0:
                value = None
                if 0 <= question.chain_from < len(answers):
                    dep = answers[question.chain_from]
                    if dep.status == STATUS_OK and dep.records:
                        value = meta_field(
                            dep.records[0].data, question.chain_field
                        )
                if value is None:
                    answers.append(QueryResponse(STATUS_SERVFAIL, []))
                    continue
                name_text = substitute_label(name_text, value)
            try:
                name = DomainName(name_text)
            except ValueError:
                answers.append(QueryResponse(STATUS_SERVFAIL, []))
                continue
            answers.append(self._answer_one(name, question.rtype))
        reply, size, marshal_cost = self._encode_reply(
            BatchQueryResponse(answers)
        )
        yield from self.host.cpu.compute(marshal_cost)
        self.env.trace.emit(
            "bind",
            f"{self.name}: batch of {len(request.questions)} -> "
            f"{sum(1 for a in answers if a.status == STATUS_OK)} OK",
        )
        responder(reply, size)

    def _handle_update(self, request: UpdateRequest, responder):
        self.env.stats.counter(f"bind.{self.name}.updates").increment()
        yield from self.host.cpu.compute(self.lookup_cost_ms)
        zone = self.zone_for(request.name)
        if not self.allow_dynamic_update:
            reply = UpdateResponse(STATUS_REFUSED, 0)
        elif zone is None:
            reply = UpdateResponse(STATUS_NXDOMAIN, 0)
        else:
            if request.mode == UpdateMode.ADD:
                for record in request.records:
                    zone.add(record)
            elif request.mode == UpdateMode.DELETE:
                zone.remove(request.name, request.rtype)
                if self._leases:
                    self._leases.pop((request.name, request.rtype), None)
            elif request.mode == UpdateMode.REPLACE:
                zone.replace(request.name, request.rtype, request.records)
            else:
                reply = UpdateResponse(STATUS_SERVFAIL, zone.serial)
                reply, size, cost = self._encode_reply(reply)
                yield from self.host.cpu.compute(cost)
                responder(reply, size)
                return
            reply = UpdateResponse(STATUS_OK, zone.serial)
            self._after_write((zone,))
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    # ------------------------------------------------------------------
    # Batched updates, leases, and NOTIFY fan-out (the write pipeline)
    # ------------------------------------------------------------------
    def _handle_update_batch(self, request: UpdateBatchRequest, responder):
        """Apply several coalesced update operations in one exchange.

        Each operation pays the full per-update database cost — the
        batch saves round trips and per-call overheads, not server
        work.  A failing operation gets a status in its slot rather
        than aborting the batch; the overall status is OK only when
        every operation succeeded.
        """
        env = self.env
        env.stats.counter(f"bind.{self.name}.requests").increment()
        env.stats.counter(f"bind.{self.name}.update_batches").increment()
        env.stats.counter("bind.update.batches").increment()
        with env.obs.span(
            "bind.update", server=self.name, ops=len(request.ops)
        ) as span:
            if not self.allow_dynamic_update:
                reply = UpdateBatchResponse(STATUS_REFUSED, 0, [])
            else:
                statuses: typing.List[int] = []
                changed: typing.List[Zone] = []
                for op in request.ops:
                    env.stats.counter(f"bind.{self.name}.updates").increment()
                    env.stats.counter("bind.update.ops").increment()
                    yield from self.host.cpu.compute(self.lookup_cost_ms)
                    statuses.append(self._apply_update_op(op, changed))
                serial = max((zone.serial for zone in changed), default=0)
                ok = all(s == STATUS_OK for s in statuses)
                reply = UpdateBatchResponse(
                    STATUS_OK if ok else STATUS_SERVFAIL, serial, statuses
                )
                span.set(serial=serial, ok=ok)
                env.trace.emit(
                    "bind",
                    f"{self.name}: update batch of {len(request.ops)} -> "
                    f"serial {serial}",
                )
                self._after_write(changed)
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _apply_update_op(
        self, op: UpdateOp, changed: typing.List[Zone]
    ) -> int:
        """Apply one batched operation; returns its status code."""
        zone = self.zone_for(op.name)
        if zone is None:
            return STATUS_NXDOMAIN
        if op.mode == UpdateMode.ADD:
            for record in op.records:
                zone.add(record)
        elif op.mode == UpdateMode.DELETE:
            zone.remove(op.name, op.rtype)
            self._leases.pop((op.name, op.rtype), None)
        elif op.mode == UpdateMode.REPLACE:
            zone.replace(op.name, op.rtype, list(op.records))
        else:
            return STATUS_SERVFAIL
        if op.lease_ms > 0 and op.mode != UpdateMode.DELETE:
            self._grant_lease(op.name, op.rtype, op.lease_ms)
        if zone not in changed:
            changed.append(zone)
        return STATUS_OK

    def _grant_lease(self, name: DomainName, rtype: RRType, lease_ms: float):
        """(Re-)grant a lease; the sweeper retracts it unless renewed."""
        self._leases[(name, rtype)] = self.env.now + lease_ms
        self.env.stats.counter("bind.update.lease_grants").increment()
        if self._lease_sweeper is None or not self._lease_sweeper.is_alive:
            self._lease_sweeper = self.env.process(
                self._sweep_leases(), name=f"bind.{self.name}.leases"
            )

    def _sweep_leases(self):
        """Retract leased bindings whose owners stopped renewing."""
        while self._leases:
            next_expiry = min(self._leases.values())
            if next_expiry > self.env.now:
                yield self.env.timeout(next_expiry - self.env.now)
            changed: typing.List[Zone] = []
            for key, expiry in list(self._leases.items()):
                if expiry > self.env.now:
                    continue
                del self._leases[key]
                name, rtype = key
                zone = self.zone_for(name)
                if zone is not None and zone.remove(name, rtype):
                    if zone not in changed:
                        changed.append(zone)
                    self.env.stats.counter(
                        "bind.update.lease_expirations"
                    ).increment()
                    self.env.trace.emit(
                        "bind",
                        f"{self.name}: lease lapsed, retracted "
                        f"{name} {rtype}",
                    )
            if changed:
                self._after_write(changed)

    def _handle_subscribe(self, request: NotifySubscribeRequest, responder):
        """Register a subscriber for NOTIFY pushes on one zone."""
        env = self.env
        env.stats.counter(f"bind.{self.name}.subscriptions").increment()
        yield from self.host.cpu.compute(1.0)
        policy = self.update_policy
        zone = self.zone_named(DomainName(request.origin))
        if policy is None or not policy.notify or self.transport is None:
            reply = NotifySubscribeResponse(STATUS_REFUSED, 0)
        elif zone is None:
            reply = NotifySubscribeResponse(STATUS_NXDOMAIN, 0)
        else:
            endpoint = Endpoint(NetworkAddress(request.address), request.port)
            subscribers = self._subscribers.setdefault(zone.origin, [])
            if endpoint not in subscribers:
                subscribers.append(endpoint)
            reply = NotifySubscribeResponse(STATUS_OK, zone.serial)
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_notify(self, request: NotifyRequest, responder):
        """A NOTIFY landed on a plain server: acknowledge and ignore.

        Secondaries override this to pull the delta immediately.
        """
        yield from self.host.cpu.compute(1.0)
        reply, size, cost = self._encode_reply(NotifyResponse(STATUS_OK))
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _after_write(self, zones: typing.Iterable[Zone]) -> None:
        """Schedule a debounced NOTIFY fan-out for each changed zone.

        A no-op unless NOTIFY mode is on and someone subscribed, so the
        prototype write path stays bit-identical.
        """
        policy = self.update_policy
        if policy is None or not policy.notify or self.transport is None:
            return
        for zone in zones:
            if not self._subscribers.get(zone.origin):
                continue
            if zone.origin in self._notify_pending:
                continue
            self._notify_pending.add(zone.origin)
            self.env.process(
                self._notify_origin(zone), name=f"bind.{self.name}.notify"
            )

    def _notify_origin(self, zone: Zone):
        """Push the zone's current serial to every subscriber.

        The debounce window lets a burst of writes collapse into one
        push; subscribers pull the whole delta through IXFR anyway.
        """
        policy = self.update_policy
        assert policy is not None and self.transport is not None
        if policy.notify_delay_ms > 0:
            yield self.env.timeout(policy.notify_delay_ms)
        self._notify_pending.discard(zone.origin)
        serial = zone.serial
        with self.env.obs.span(
            "bind.notify",
            server=self.name,
            origin=str(zone.origin),
            serial=serial,
        ):
            request = NotifyRequest(zone.origin, serial)
            _, size, marshal_cost = self._encode_reply(request)
            for subscriber in list(self._subscribers.get(zone.origin, ())):
                yield from self.host.cpu.compute(marshal_cost)
                self.env.stats.counter("bind.update.notifies").increment()
                # One-way push: a dead subscriber just misses it and
                # catches up from TTL expiry like everyone else.
                yield from self.transport.send(
                    self.host,
                    subscriber,
                    NotifyRequest(zone.origin, serial),
                    size,
                )

    def _handle_xfer(self, request: XferRequest, responder):
        self.env.stats.counter(f"bind.{self.name}.xfers").increment()
        zone = self.zone_named(request.origin)
        if not self.allow_zone_transfer or zone is None:
            reply, size, cost = self._encode_reply(
                XferResponse(STATUS_REFUSED if zone else STATUS_NXDOMAIN, 0, [])
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)
            return
        records = zone.all_records()
        # Streaming the zone costs setup plus a per-record charge.
        yield from self.host.cpu.compute(
            self.calibration.xfer_setup_ms
            + self.calibration.xfer_per_record_ms * len(records)
        )
        reply, size, cost = self._encode_reply(
            XferResponse(STATUS_OK, zone.serial, records)
        )
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_ixfr(self, request: IxfrRequest, responder):
        """Incremental zone transfer: stream only the journal entries
        past the requester's serial.  When the journal no longer covers
        the requested serial the reply degrades to a full AXFR-style
        snapshot (``full=1``) in the same exchange, so the requester
        never pays an extra round trip to discover truncation."""
        self.env.stats.counter(f"bind.{self.name}.ixfrs").increment()
        zone = self.zone_named(request.origin)
        if not self.allow_zone_transfer or zone is None:
            reply, size, cost = self._encode_reply(
                IxfrResponse(
                    STATUS_REFUSED if zone else STATUS_NXDOMAIN, 0, 0, [], []
                )
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)
            return
        deltas = zone.delta_since(request.serial)
        if deltas is None:
            self.env.stats.counter(
                f"bind.{self.name}.ixfr_fallbacks"
            ).increment()
            records = zone.all_records()
            yield from self.host.cpu.compute(
                self.calibration.xfer_setup_ms
                + self.calibration.xfer_per_record_ms * len(records)
            )
            reply = IxfrResponse(STATUS_OK, zone.serial, 1, [], records)
        else:
            delta_records = sum(len(d.records) for d in deltas)
            # Walking the journal costs setup plus the same per-record
            # streaming charge as AXFR, over only the delta.
            yield from self.host.cpu.compute(
                self.calibration.xfer_setup_ms
                + self.calibration.xfer_per_record_ms * delta_records
            )
            reply = IxfrResponse(STATUS_OK, zone.serial, 0, list(deltas), [])
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_serial(self, request: SerialRequest, responder):
        """Cheap SOA-serial probe used by secondaries before an AXFR."""
        zone = self.zone_named(request.origin)
        # A serial probe is a single in-memory read, not a full lookup.
        yield from self.host.cpu.compute(1.0)
        if zone is None:
            reply = SerialResponse(STATUS_NXDOMAIN, 0)
        else:
            reply = SerialResponse(STATUS_OK, zone.serial)
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def describe(self) -> str:
        zones = ", ".join(str(z.origin) for z in self.zones)
        return f"BindServer({self.name}; zones: {zones})"
