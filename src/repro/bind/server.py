"""The BIND server process.

One class serves both roles from the paper:

- a **public** BIND holding actual naming data (construct with default
  flags and ``lookup_cost_ms=Calibration.public_bind_lookup_ms``); and
- the **modified** BIND used as the HNS meta-naming repository
  (``allow_dynamic_update=True`` and a small dedicated-zone lookup
  cost), "a version of BIND, modified to support both dynamic updates
  and also data of unspecified type [Schwartz 1987]".

The server answers queries, dynamic updates, and zone-transfer (AXFR)
requests.  Errors travel as status codes, as in DNS, so a missing name
is an answer, not a crashed call.
"""

from __future__ import annotations

import typing

from repro.bind.errors import NameNotFound
from repro.bind.messages import (
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_REFUSED,
    STATUS_SERVFAIL,
    BatchQueryRequest,
    BatchQueryResponse,
    IxfrRequest,
    IxfrResponse,
    QueryRequest,
    QueryResponse,
    SerialRequest,
    SerialResponse,
    UpdateMode,
    UpdateRequest,
    UpdateResponse,
    XferRequest,
    XferResponse,
    meta_field,
    substitute_label,
)
from repro.bind.names import DomainName
from repro.bind.zone import Zone
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint
from repro.net.host import Host, Service
from repro.serial import HandcodedMarshaller
from repro.serial.idl import IdlType


class BindServer(Service):
    """An authoritative name server bound to a host."""

    def __init__(
        self,
        host: Host,
        zones: typing.Optional[typing.Sequence[Zone]] = None,
        lookup_cost_ms: typing.Optional[float] = None,
        allow_dynamic_update: bool = False,
        allow_zone_transfer: bool = True,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "",
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.name = name or f"bind@{host.name}"
        self.zones: typing.List[Zone] = list(zones or [])
        self.lookup_cost_ms = (
            lookup_cost_ms
            if lookup_cost_ms is not None
            else calibration.public_bind_lookup_ms
        )
        self.allow_dynamic_update = allow_dynamic_update
        self.allow_zone_transfer = allow_zone_transfer
        # Server-side marshalling uses the standard (hand-coded) BIND
        # routines regardless of what the client uses.
        self._marshallers: typing.Dict[int, HandcodedMarshaller] = {}
        self.endpoint: typing.Optional[Endpoint] = None

    # ------------------------------------------------------------------
    def listen(self, port: int = WELL_KNOWN_PORTS["bind"]) -> Endpoint:
        """Bind to ``port`` on the server's host."""
        self.endpoint = self.host.bind(port, self)
        return self.endpoint

    def add_zone(self, zone: Zone) -> None:
        if any(z.origin == zone.origin for z in self.zones):
            raise ValueError(f"duplicate zone {zone.origin}")
        self.zones.append(zone)

    def zone_for(self, name: DomainName) -> typing.Optional[Zone]:
        """Longest-match authoritative zone for ``name``."""
        best: typing.Optional[Zone] = None
        for zone in self.zones:
            if name.is_subdomain_of(zone.origin):
                if best is None or len(zone.origin.labels) > len(best.origin.labels):
                    best = zone
        return best

    def zone_named(self, origin: DomainName) -> typing.Optional[Zone]:
        for zone in self.zones:
            if zone.origin == origin:
                return zone
        return None

    # ------------------------------------------------------------------
    def _marshaller(self, idl_type: IdlType) -> HandcodedMarshaller:
        key = id(idl_type)
        if key not in self._marshallers:
            self._marshallers[key] = HandcodedMarshaller(idl_type)
        return self._marshallers[key]

    def _encode_reply(self, message) -> typing.Tuple[object, int, float]:
        data = self._marshaller(message.idl_type).encode(message.to_idl())
        return message, len(data[0]), data[1]

    # ------------------------------------------------------------------
    # Service interface
    # ------------------------------------------------------------------
    def handle(self, datagram, responder):
        request = datagram.payload
        if isinstance(request, QueryRequest):
            yield from self._handle_query(request, responder)
        elif isinstance(request, BatchQueryRequest):
            yield from self._handle_batch_query(request, responder)
        elif isinstance(request, UpdateRequest):
            yield from self._handle_update(request, responder)
        elif isinstance(request, XferRequest):
            yield from self._handle_xfer(request, responder)
        elif isinstance(request, IxfrRequest):
            yield from self._handle_ixfr(request, responder)
        elif isinstance(request, SerialRequest):
            yield from self._handle_serial(request, responder)
        else:
            reply, size, cost = self._encode_reply(
                QueryResponse(STATUS_SERVFAIL, [])
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)

    def _answer_one(self, name: DomainName, rtype) -> QueryResponse:
        """The database side of one question (no cost accounting)."""
        zone = self.zone_for(name)
        if zone is None:
            return QueryResponse(STATUS_NXDOMAIN, [])
        try:
            return QueryResponse(STATUS_OK, zone.lookup(name, rtype))
        except NameNotFound:
            return QueryResponse(STATUS_NXDOMAIN, [])

    def _handle_query(self, request: QueryRequest, responder):
        # ``requests`` counts datagrams (a batch is one), ``queries``
        # counts database walks — the requests-per-resolution metric
        # the fast-path benchmarks report divides over the former.
        self.env.stats.counter(f"bind.{self.name}.requests").increment()
        self.env.stats.counter(f"bind.{self.name}.queries").increment()
        # In-memory database walk: the calibrated fixed per-query cost.
        yield from self.host.cpu.compute(self.lookup_cost_ms)
        reply = self._answer_one(request.name, request.rtype)
        reply, size, marshal_cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(marshal_cost)
        self.env.trace.emit(
            "bind",
            f"{self.name}: {request.name} {request.rtype} -> "
            f"{'OK' if reply.status == STATUS_OK else 'NXDOMAIN'}",
            records=len(reply.records),
        )
        responder(reply, size)

    def _handle_batch_query(self, request: BatchQueryRequest, responder):
        """Answer several (possibly chained) questions in one exchange.

        Questions are resolved in order; each pays the full per-query
        database-walk cost — batching saves round trips and per-call
        overheads, not server work.  A chained question whose dependency
        failed (bad index, non-OK answer, or missing field) yields a
        SERVFAIL answer in its slot rather than failing the batch.
        """
        self.env.stats.counter(f"bind.{self.name}.requests").increment()
        self.env.stats.counter(f"bind.{self.name}.batches").increment()
        answers: typing.List[QueryResponse] = []
        for question in request.questions:
            self.env.stats.counter(f"bind.{self.name}.queries").increment()
            yield from self.host.cpu.compute(self.lookup_cost_ms)
            name_text = question.name
            if question.chain_from >= 0:
                value = None
                if 0 <= question.chain_from < len(answers):
                    dep = answers[question.chain_from]
                    if dep.status == STATUS_OK and dep.records:
                        value = meta_field(
                            dep.records[0].data, question.chain_field
                        )
                if value is None:
                    answers.append(QueryResponse(STATUS_SERVFAIL, []))
                    continue
                name_text = substitute_label(name_text, value)
            try:
                name = DomainName(name_text)
            except ValueError:
                answers.append(QueryResponse(STATUS_SERVFAIL, []))
                continue
            answers.append(self._answer_one(name, question.rtype))
        reply, size, marshal_cost = self._encode_reply(
            BatchQueryResponse(answers)
        )
        yield from self.host.cpu.compute(marshal_cost)
        self.env.trace.emit(
            "bind",
            f"{self.name}: batch of {len(request.questions)} -> "
            f"{sum(1 for a in answers if a.status == STATUS_OK)} OK",
        )
        responder(reply, size)

    def _handle_update(self, request: UpdateRequest, responder):
        self.env.stats.counter(f"bind.{self.name}.updates").increment()
        yield from self.host.cpu.compute(self.lookup_cost_ms)
        zone = self.zone_for(request.name)
        if not self.allow_dynamic_update:
            reply = UpdateResponse(STATUS_REFUSED, 0)
        elif zone is None:
            reply = UpdateResponse(STATUS_NXDOMAIN, 0)
        else:
            if request.mode == UpdateMode.ADD:
                for record in request.records:
                    zone.add(record)
            elif request.mode == UpdateMode.DELETE:
                zone.remove(request.name, request.rtype)
            elif request.mode == UpdateMode.REPLACE:
                zone.replace(request.name, request.rtype, request.records)
            else:
                reply = UpdateResponse(STATUS_SERVFAIL, zone.serial)
                reply, size, cost = self._encode_reply(reply)
                yield from self.host.cpu.compute(cost)
                responder(reply, size)
                return
            reply = UpdateResponse(STATUS_OK, zone.serial)
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_xfer(self, request: XferRequest, responder):
        self.env.stats.counter(f"bind.{self.name}.xfers").increment()
        zone = self.zone_named(request.origin)
        if not self.allow_zone_transfer or zone is None:
            reply, size, cost = self._encode_reply(
                XferResponse(STATUS_REFUSED if zone else STATUS_NXDOMAIN, 0, [])
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)
            return
        records = zone.all_records()
        # Streaming the zone costs setup plus a per-record charge.
        yield from self.host.cpu.compute(
            self.calibration.xfer_setup_ms
            + self.calibration.xfer_per_record_ms * len(records)
        )
        reply, size, cost = self._encode_reply(
            XferResponse(STATUS_OK, zone.serial, records)
        )
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_ixfr(self, request: IxfrRequest, responder):
        """Incremental zone transfer: stream only the journal entries
        past the requester's serial.  When the journal no longer covers
        the requested serial the reply degrades to a full AXFR-style
        snapshot (``full=1``) in the same exchange, so the requester
        never pays an extra round trip to discover truncation."""
        self.env.stats.counter(f"bind.{self.name}.ixfrs").increment()
        zone = self.zone_named(request.origin)
        if not self.allow_zone_transfer or zone is None:
            reply, size, cost = self._encode_reply(
                IxfrResponse(
                    STATUS_REFUSED if zone else STATUS_NXDOMAIN, 0, 0, [], []
                )
            )
            yield from self.host.cpu.compute(cost)
            responder(reply, size)
            return
        deltas = zone.delta_since(request.serial)
        if deltas is None:
            self.env.stats.counter(
                f"bind.{self.name}.ixfr_fallbacks"
            ).increment()
            records = zone.all_records()
            yield from self.host.cpu.compute(
                self.calibration.xfer_setup_ms
                + self.calibration.xfer_per_record_ms * len(records)
            )
            reply = IxfrResponse(STATUS_OK, zone.serial, 1, [], records)
        else:
            delta_records = sum(len(d.records) for d in deltas)
            # Walking the journal costs setup plus the same per-record
            # streaming charge as AXFR, over only the delta.
            yield from self.host.cpu.compute(
                self.calibration.xfer_setup_ms
                + self.calibration.xfer_per_record_ms * delta_records
            )
            reply = IxfrResponse(STATUS_OK, zone.serial, 0, list(deltas), [])
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def _handle_serial(self, request: SerialRequest, responder):
        """Cheap SOA-serial probe used by secondaries before an AXFR."""
        zone = self.zone_named(request.origin)
        # A serial probe is a single in-memory read, not a full lookup.
        yield from self.host.cpu.compute(1.0)
        if zone is None:
            reply = SerialResponse(STATUS_NXDOMAIN, 0)
        else:
            reply = SerialResponse(STATUS_OK, zone.serial)
        reply, size, cost = self._encode_reply(reply)
        yield from self.host.cpu.compute(cost)
        responder(reply, size)

    def describe(self) -> str:
        zones = ", ".join(str(z.origin) for z in self.zones)
        return f"BindServer({self.name}; zones: {zones})"
