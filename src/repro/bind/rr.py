"""Resource records.

"BIND data is stored as a collection of resource records, each of which
can be up to 256 bytes of data.  Separate resource records are intended
to store alternate data for one name, e.g., multiple network addresses
for gateway hosts."  The HNS modification adds ``UNSPEC``, data of
unspecified type.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.bind.names import DomainName

MAX_RDATA = 256


class RRType(enum.Enum):
    """Resource record types used in this reproduction."""

    A = 1        # host address
    CNAME = 5    # canonical name
    SOA = 6      # start of authority
    HINFO = 13   # host info (system type)
    TXT = 16     # free text
    UNSPEC = 103 # HNS modification: data of unspecified type

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class ResourceRecord:
    """One (name, type, ttl, data) record.

    ``data`` is uninterpreted bytes (≤ 256), as in BIND; higher layers
    encode addresses or HNS meta-records into it.  ``ttl`` is in
    simulated milliseconds (the paper's caches key invalidation off this
    field).
    """

    name: DomainName
    rtype: RRType
    ttl: float
    data: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.name, DomainName):
            object.__setattr__(self, "name", DomainName(self.name))
        if not isinstance(self.rtype, RRType):
            raise TypeError(f"rtype must be RRType, got {self.rtype!r}")
        if self.ttl < 0:
            raise ValueError(f"negative TTL: {self.ttl}")
        if not isinstance(self.data, bytes):
            raise TypeError("data must be bytes")
        if len(self.data) > MAX_RDATA:
            raise ValueError(
                f"rdata of {len(self.data)} bytes exceeds BIND's {MAX_RDATA}-byte limit"
            )

    @classmethod
    def a_record(
        cls, name: typing.Union[str, DomainName], address: str, ttl: float = 3_600_000
    ) -> "ResourceRecord":
        """Convenience constructor for host-address records."""
        octets = bytes(int(p) for p in address.split("."))
        if len(octets) != 4:
            raise ValueError(f"bad dotted quad {address!r}")
        return cls(DomainName(name), RRType.A, ttl, octets)

    @classmethod
    def text_record(
        cls,
        name: typing.Union[str, DomainName],
        text: str,
        rtype: RRType = RRType.TXT,
        ttl: float = 3_600_000,
    ) -> "ResourceRecord":
        """Convenience constructor for text/unspec records."""
        return cls(DomainName(name), rtype, ttl, text.encode("utf-8"))

    @property
    def address(self) -> str:
        """Decode an A record's data as a dotted quad."""
        if self.rtype is not RRType.A or len(self.data) != 4:
            raise ValueError(f"not an address record: {self}")
        return ".".join(str(b) for b in self.data)

    @property
    def text(self) -> str:
        """Decode the data as UTF-8 text."""
        return self.data.decode("utf-8")

    def wire_size(self) -> int:
        """Approximate encoded size (name + fixed header + data)."""
        return len(str(self.name)) + 10 + len(self.data)

    def __str__(self) -> str:
        return f"{self.name} {self.rtype} ttl={self.ttl:g} [{len(self.data)}B]"
