"""BIND master-file (zone file) reading and writing.

Real BIND loads its authoritative data from master files; this module
supports a faithful subset so testbeds can be described as text:

    ; comment
    $ORIGIN cs.washington.edu
    $TTL 3600000
    fiji        3600000  A      128.95.1.4
    june                 A      128.95.1.99
    schwartz             TXT    "mailhost=june.cs.washington.edu;mailbox=schwartz"
    meta                 UNSPEC "ns=BIND-cs"
    @                    TXT    "the origin itself"

Names are relative to ``$ORIGIN`` unless they end with a dot; a missing
TTL falls back to ``$TTL`` (or the zone default).  Supported types:
A, TXT, HINFO, UNSPEC, CNAME.
"""

from __future__ import annotations

import shlex
import typing

from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType
from repro.bind.zone import Zone


class ZoneFileError(Exception):
    """Malformed master file."""

    def __init__(self, message: str, line_number: int = 0):
        prefix = f"line {line_number}: " if line_number else ""
        super().__init__(prefix + message)
        self.line_number = line_number


_TEXT_TYPES = {RRType.TXT, RRType.HINFO, RRType.UNSPEC, RRType.CNAME}


def _strip_comment(line: str) -> str:
    # A ';' outside quotes starts a comment.
    out = []
    in_quotes = False
    for ch in line:
        if ch == '"':
            in_quotes = not in_quotes
        if ch == ";" and not in_quotes:
            break
        out.append(ch)
    return "".join(out).strip()


def parse_zone_text(text: str, default_origin: str = "") -> Zone:
    """Parse a master file into a :class:`Zone`."""
    origin: typing.Optional[DomainName] = (
        DomainName(default_origin) if default_origin else None
    )
    default_ttl: typing.Optional[float] = None
    pending: typing.List[typing.Tuple[int, ResourceRecord]] = []
    records: typing.List[ResourceRecord] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        try:
            tokens = shlex.split(line)
        except ValueError as err:
            raise ZoneFileError(str(err), line_number) from err
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError("$ORIGIN needs exactly one name", line_number)
            origin = DomainName(tokens[1])
            continue
        if directive == "$TTL":
            if len(tokens) != 2:
                raise ZoneFileError("$TTL needs exactly one value", line_number)
            try:
                default_ttl = float(tokens[1])
            except ValueError as err:
                raise ZoneFileError(f"bad TTL {tokens[1]!r}", line_number) from err
            continue
        if origin is None:
            raise ZoneFileError("record before any $ORIGIN", line_number)
        records.append(_parse_record(tokens, origin, default_ttl, line_number))

    if origin is None:
        raise ZoneFileError("master file defines no $ORIGIN")
    zone = Zone(origin, default_ttl=default_ttl if default_ttl is not None else 3_600_000)
    for record in records:
        zone.add(record)
    # Loading a file is one logical version, not len(records) updates.
    zone.serial = 1
    return zone


def _parse_record(
    tokens: typing.Sequence[str],
    origin: DomainName,
    default_ttl: typing.Optional[float],
    line_number: int,
) -> ResourceRecord:
    if len(tokens) < 3:
        raise ZoneFileError("record needs: name [ttl] TYPE rdata", line_number)
    name_token = tokens[0]
    rest = list(tokens[1:])
    # Optional TTL between name and type.
    ttl = default_ttl if default_ttl is not None else 3_600_000.0
    if rest and rest[0].replace(".", "", 1).isdigit():
        ttl = float(rest.pop(0))
    if len(rest) < 2:
        raise ZoneFileError("record needs a TYPE and rdata", line_number)
    type_token = rest[0].upper()
    rdata_tokens = rest[1:]
    try:
        rtype = RRType[type_token]
    except KeyError as err:
        raise ZoneFileError(f"unsupported type {type_token!r}", line_number) from err
    # Resolve the owner name.
    if name_token == "@":
        name = origin
    elif name_token.endswith("."):
        name = DomainName(name_token)
    else:
        name = DomainName(f"{name_token}.{origin}")
    try:
        if rtype is RRType.A:
            if len(rdata_tokens) != 1:
                raise ZoneFileError("A record needs one address", line_number)
            return ResourceRecord.a_record(name, rdata_tokens[0], ttl=ttl)
        if rtype in _TEXT_TYPES:
            return ResourceRecord(
                name, rtype, ttl, " ".join(rdata_tokens).encode("utf-8")
            )
    except ZoneFileError:
        raise
    except ValueError as err:
        raise ZoneFileError(str(err), line_number) from err
    raise ZoneFileError(f"unsupported type {type_token!r}", line_number)


def render_zone_text(zone: Zone) -> str:
    """Write a zone back out as a master file (parse/render round-trips)."""
    lines = [f"$ORIGIN {zone.origin}", f"$TTL {zone.default_ttl:.0f}"]
    for record in zone.all_records():
        owner = record.name.relative_to(zone.origin)
        if record.rtype is RRType.A:
            rdata = record.address
        else:
            rdata = '"' + record.text.replace('"', "") + '"'
        lines.append(f"{owner} {record.ttl:.0f} {record.rtype.name} {rdata}")
    return "\n".join(lines) + "\n"


def load_zone_file(path: str) -> Zone:
    """Parse a master file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_zone_text(handle.read())
