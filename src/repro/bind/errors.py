"""BIND error types, mirroring DNS RCODEs where sensible."""


class BindError(Exception):
    """Base class for name-service failures."""

    rcode = 2  # SERVFAIL


class NameNotFound(BindError):
    """NXDOMAIN: the queried name/type does not exist."""

    rcode = 3


class NotAuthoritative(BindError):
    """The server is not authoritative for the queried zone."""

    rcode = 9


class UpdateRefused(BindError):
    """Dynamic update sent to a server without the HNS modification."""

    rcode = 5


class ZoneNotFound(BindError):
    """Zone transfer requested for an unknown zone."""

    rcode = 3
