"""Authoritative zones with SOA serial numbers.

A zone maps (owner name, record type) to record sets.  Dynamic updates
— the HNS modification to BIND — bump the SOA serial, which secondary
servers and the cache-preload mechanism use to detect staleness.

Each update is also journalled: the zone keeps a bounded list of
:class:`ZoneDelta` entries, one per serial bump, recording the record
set for the touched ``(name, type)`` *after* the change (an empty set
means the key was deleted).  :meth:`Zone.delta_since` replays the
journal for incremental zone transfer (IXFR); when the requested serial
predates the journal window, it returns ``None`` and the caller falls
back to a full AXFR.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind.errors import NameNotFound
from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType


@dataclasses.dataclass(frozen=True)
class ZoneDelta:
    """One journalled dynamic update: the state of ``(name, rtype)``
    after the serial bump that produced it.  ``records`` empty means
    the key was deleted."""

    serial: int
    name: DomainName
    rtype: RRType
    records: typing.Tuple[ResourceRecord, ...]


class Zone:
    """All authoritative data under one origin."""

    def __init__(
        self,
        origin: typing.Union[str, DomainName],
        default_ttl: float = 3_600_000,
        journal_limit: int = 512,
    ):
        if default_ttl < 0:
            raise ValueError("default TTL must be non-negative")
        if journal_limit < 0:
            raise ValueError("journal limit must be non-negative")
        self.origin = DomainName(origin)
        self.default_ttl = default_ttl
        self.serial = 1
        self.journal_limit = journal_limit
        self._journal: typing.List[ZoneDelta] = []
        self._records: typing.Dict[
            typing.Tuple[DomainName, RRType], typing.List[ResourceRecord]
        ] = {}

    # ------------------------------------------------------------------
    def _check_in_zone(self, name: DomainName) -> None:
        if not name.is_subdomain_of(self.origin):
            raise ValueError(f"{name} is outside zone {self.origin}")

    def _journal_current(self, name: DomainName, rtype: RRType) -> None:
        """Journal the post-change state of (name, rtype) at the
        current serial."""
        records = tuple(self._records.get((name, rtype), ()))
        self._append_delta(ZoneDelta(self.serial, name, rtype, records))

    def _append_delta(self, delta: ZoneDelta) -> None:
        self._journal.append(delta)
        if len(self._journal) > self.journal_limit:
            del self._journal[: len(self._journal) - self.journal_limit]

    def add(self, record: ResourceRecord) -> None:
        """Add one record (duplicates by exact data are collapsed)."""
        self._check_in_zone(record.name)
        key = (record.name, record.rtype)
        existing = self._records.setdefault(key, [])
        if any(r.data == record.data for r in existing):
            # Same data: treat as a TTL refresh.
            self._records[key] = [
                record if r.data == record.data else r for r in existing
            ]
        else:
            existing.append(record)
        self.serial += 1
        self._journal_current(record.name, record.rtype)

    def remove(self, name: typing.Union[str, DomainName], rtype: RRType) -> int:
        """Delete all records for (name, type); returns how many."""
        name = DomainName(name)
        removed = self._records.pop((name, rtype), [])
        if removed:
            self.serial += 1
            self._journal_current(name, rtype)
        return len(removed)

    def replace(
        self, name: typing.Union[str, DomainName], rtype: RRType, records: typing.Sequence[ResourceRecord]
    ) -> None:
        """Atomically replace the record set for (name, type)."""
        name = DomainName(name)
        self._check_in_zone(name)
        for record in records:
            if record.name != name or record.rtype is not rtype:
                raise ValueError(f"{record} does not belong to ({name}, {rtype})")
        if records:
            self._records[(name, rtype)] = list(records)
        else:
            self._records.pop((name, rtype), None)
        self.serial += 1
        self._journal_current(name, rtype)

    # ------------------------------------------------------------------
    def delta_since(self, serial: int) -> typing.Optional[typing.List[ZoneDelta]]:
        """Journal entries newer than ``serial``, oldest first.

        Returns ``[]`` when the requester is already current, and
        ``None`` when the journal no longer reaches back far enough
        (truncated by ``journal_limit``, or the requester predates the
        journal entirely) — the IXFR signal to fall back to AXFR.
        Serial bumps are one journal entry each, so coverage holds iff
        the oldest entry's serial is ``<= serial + 1``.
        """
        if serial >= self.serial:
            return []
        if not self._journal or self._journal[0].serial > serial + 1:
            return None
        return [d for d in self._journal if d.serial > serial]

    def apply_delta(self, delta: ZoneDelta) -> None:
        """Apply one journalled update from a primary to this replica.

        Installs the record set verbatim, adopts the delta's serial, and
        re-journals the entry so the replica can itself serve IXFR to
        downstream requesters.
        """
        self._check_in_zone(delta.name)
        key = (delta.name, delta.rtype)
        if delta.records:
            self._records[key] = list(delta.records)
        else:
            self._records.pop(key, None)
        self.serial = delta.serial
        self._append_delta(delta)

    def reset_journal(self) -> None:
        """Discard the journal (after a full AXFR install the local
        journal's serials are fabricated, so downstream IXFR must fall
        back to AXFR until real deltas accumulate)."""
        self._journal.clear()

    def lookup(
        self, name: typing.Union[str, DomainName], rtype: RRType
    ) -> typing.List[ResourceRecord]:
        """Exact-match lookup; raises :class:`NameNotFound` on miss."""
        name = DomainName(name)
        records = self._records.get((name, rtype))
        if not records:
            raise NameNotFound(f"{name} {rtype} in zone {self.origin}")
        return list(records)

    def contains(self, name: typing.Union[str, DomainName], rtype: RRType) -> bool:
        return (DomainName(name), rtype) in self._records

    def names(self) -> typing.Set[DomainName]:
        return {name for name, _ in self._records}

    def all_records(self) -> typing.List[ResourceRecord]:
        """Every record in the zone, in stable order (for AXFR)."""
        out: typing.List[ResourceRecord] = []
        for key in sorted(self._records, key=lambda k: (k[0], k[1].value)):
            out.extend(self._records[key])
        return out

    @property
    def record_count(self) -> int:
        return sum(len(v) for v in self._records.values())

    def wire_size(self) -> int:
        """Approximate transfer size of the whole zone (bytes)."""
        return sum(r.wire_size() for r in self.all_records())

    def __repr__(self) -> str:
        return f"<Zone {self.origin} serial={self.serial} records={self.record_count}>"
