"""Authoritative zones with SOA serial numbers.

A zone maps (owner name, record type) to record sets.  Dynamic updates
— the HNS modification to BIND — bump the SOA serial, which secondary
servers and the cache-preload mechanism use to detect staleness.
"""

from __future__ import annotations

import typing

from repro.bind.errors import NameNotFound
from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType


class Zone:
    """All authoritative data under one origin."""

    def __init__(self, origin: typing.Union[str, DomainName], default_ttl: float = 3_600_000):
        if default_ttl < 0:
            raise ValueError("default TTL must be non-negative")
        self.origin = DomainName(origin)
        self.default_ttl = default_ttl
        self.serial = 1
        self._records: typing.Dict[
            typing.Tuple[DomainName, RRType], typing.List[ResourceRecord]
        ] = {}

    # ------------------------------------------------------------------
    def _check_in_zone(self, name: DomainName) -> None:
        if not name.is_subdomain_of(self.origin):
            raise ValueError(f"{name} is outside zone {self.origin}")

    def add(self, record: ResourceRecord) -> None:
        """Add one record (duplicates by exact data are collapsed)."""
        self._check_in_zone(record.name)
        key = (record.name, record.rtype)
        existing = self._records.setdefault(key, [])
        if any(r.data == record.data for r in existing):
            # Same data: treat as a TTL refresh.
            self._records[key] = [
                record if r.data == record.data else r for r in existing
            ]
        else:
            existing.append(record)
        self.serial += 1

    def remove(self, name: typing.Union[str, DomainName], rtype: RRType) -> int:
        """Delete all records for (name, type); returns how many."""
        name = DomainName(name)
        removed = self._records.pop((name, rtype), [])
        if removed:
            self.serial += 1
        return len(removed)

    def replace(
        self, name: typing.Union[str, DomainName], rtype: RRType, records: typing.Sequence[ResourceRecord]
    ) -> None:
        """Atomically replace the record set for (name, type)."""
        name = DomainName(name)
        self._check_in_zone(name)
        for record in records:
            if record.name != name or record.rtype is not rtype:
                raise ValueError(f"{record} does not belong to ({name}, {rtype})")
        if records:
            self._records[(name, rtype)] = list(records)
        else:
            self._records.pop((name, rtype), None)
        self.serial += 1

    def lookup(
        self, name: typing.Union[str, DomainName], rtype: RRType
    ) -> typing.List[ResourceRecord]:
        """Exact-match lookup; raises :class:`NameNotFound` on miss."""
        name = DomainName(name)
        records = self._records.get((name, rtype))
        if not records:
            raise NameNotFound(f"{name} {rtype} in zone {self.origin}")
        return list(records)

    def contains(self, name: typing.Union[str, DomainName], rtype: RRType) -> bool:
        return (DomainName(name), rtype) in self._records

    def names(self) -> typing.Set[DomainName]:
        return {name for name, _ in self._records}

    def all_records(self) -> typing.List[ResourceRecord]:
        """Every record in the zone, in stable order (for AXFR)."""
        out: typing.List[ResourceRecord] = []
        for key in sorted(self._records, key=lambda k: (k[0], k[1].value)):
            out.extend(self._records[key])
        return out

    @property
    def record_count(self) -> int:
        return sum(len(v) for v in self._records.values())

    def wire_size(self) -> int:
        """Approximate transfer size of the whole zone (bytes)."""
        return sum(r.wire_size() for r in self.all_records())

    def __repr__(self) -> str:
        return f"<Zone {self.origin} serial={self.serial} records={self.record_count}>"
