"""BIND substrate: a DNS-style name service.

Two configurations of this server appear in the paper:

- the **public BIND** servers holding actual naming data (host
  addresses etc.), queried by the conventional resolver library; and
- the **modified BIND** used as the HNS meta-naming repository, with two
  extensions: *dynamic updates* and *data of unspecified type*
  (``RRType.UNSPEC``), per [Schwartz 1987].

The resolver implements the TTL cache whose marshalled-vs-demarshalled
format question Table 3.2 answers, and the zone-transfer (AXFR)
mechanism the paper reused to preload the HNS cache.
"""

from repro.bind.names import DomainName
from repro.bind.rr import ResourceRecord, RRType
from repro.bind.zone import Zone, ZoneDelta
from repro.bind.errors import (
    BindError,
    NameNotFound,
    NotAuthoritative,
    UpdateRefused,
    ZoneNotFound,
)
from repro.bind.messages import (
    IxfrRequest,
    IxfrResponse,
    NotifyRequest,
    NotifyResponse,
    NotifySubscribeRequest,
    NotifySubscribeResponse,
    QueryRequest,
    QueryResponse,
    UpdateBatchRequest,
    UpdateBatchResponse,
    UpdateMode,
    UpdateOp,
    UpdateRequest,
    UpdateResponse,
    XferRequest,
    XferResponse,
)
from repro.bind.replica import ReplicaScheduler, ReplicaState
from repro.bind.server import BindServer
from repro.bind.secondary import SecondaryBindServer
from repro.bind.zonefile import (
    ZoneFileError,
    load_zone_file,
    parse_zone_text,
    render_zone_text,
)
from repro.bind.resolver import BindResolver, CacheFormat
from repro.bind.cache import ResolverCache

__all__ = [
    "BindError",
    "BindResolver",
    "BindServer",
    "CacheFormat",
    "DomainName",
    "IxfrRequest",
    "IxfrResponse",
    "NameNotFound",
    "NotAuthoritative",
    "NotifyRequest",
    "NotifyResponse",
    "NotifySubscribeRequest",
    "NotifySubscribeResponse",
    "QueryRequest",
    "QueryResponse",
    "ReplicaScheduler",
    "ReplicaState",
    "ResolverCache",
    "ResourceRecord",
    "RRType",
    "SecondaryBindServer",
    "UpdateBatchRequest",
    "UpdateBatchResponse",
    "UpdateMode",
    "UpdateOp",
    "UpdateRefused",
    "UpdateRequest",
    "UpdateResponse",
    "XferRequest",
    "XferResponse",
    "Zone",
    "ZoneDelta",
    "ZoneFileError",
    "ZoneNotFound",
    "load_zone_file",
    "parse_zone_text",
    "render_zone_text",
]
