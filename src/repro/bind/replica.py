"""Adaptive replica selection state for the meta read path.

The :class:`ReplicaScheduler` keeps, per replica endpoint, an EWMA of
observed request latency, an in-flight counter, and a circuit breaker,
and turns them into an ordered try-plan for each exchange:

- endpoints whose breaker is **open** are skipped up front (instead of
  being timed out in static order, which is what the prototype's
  failover list does);
- among the healthy endpoints, the first to try is the better-scored of
  two picked at random (power-of-two-choices, from a named RNG stream
  so runs stay deterministic), and the rest follow in score order;
- a bounded window of recent successful latencies yields the hedge
  delay: the :class:`~repro.resolution.ReplicaPolicy` quantile of that
  distribution.

Every counter is mirrored into the stats registry as
``bind.replica.<endpoint>.<counter>`` (``requests``, ``hedges``,
``wins``, ``errors``, ``skipped``), matching the ``cache.<name>.*``
convention; the latency estimate is mirrored as timer samples under
``bind.replica.<endpoint>.ewma_ms`` (counters are monotonic ints, a
gauge is not).
"""

from __future__ import annotations

import collections
import typing

from repro.net.addresses import Endpoint
from repro.resolution import CircuitBreaker, ReplicaPolicy
from repro.sim.kernel import Environment


class ReplicaState:
    """Everything the scheduler knows about one replica endpoint."""

    def __init__(self, env: Environment, endpoint: Endpoint, policy: ReplicaPolicy):
        self.endpoint = endpoint
        #: stable stat label, e.g. ``"10.0.0.2:530"``
        self.label = str(endpoint)
        #: EWMA of observed latency; None until the first sample
        self.ewma_ms: typing.Optional[float] = None
        #: requests currently outstanding against this endpoint
        self.inflight = 0
        self.breaker = CircuitBreaker(
            env, self.label, policy.breaker_threshold, policy.breaker_reset_ms
        )

    def __repr__(self) -> str:
        ewma = "?" if self.ewma_ms is None else f"{self.ewma_ms:.1f}"
        return (
            f"<ReplicaState {self.label} ewma={ewma}ms "
            f"inflight={self.inflight} breaker={self.breaker.state}>"
        )


class ReplicaScheduler:
    """Orders a resolver's replicas by observed behaviour.

    One scheduler is owned by one :class:`~repro.bind.resolver.
    BindResolver`; the endpoints are its primary followed by its
    secondaries, so with ``adaptive=False`` the plan degenerates to the
    prototype's static failover order (minus open breakers, when
    ``skip_open_breakers`` is set).
    """

    #: recent successful latencies kept for the hedge-delay quantile
    WINDOW = 128

    def __init__(
        self,
        env: Environment,
        endpoints: typing.Sequence[Endpoint],
        policy: ReplicaPolicy,
        name: str = "resolver",
    ):
        if not endpoints:
            raise ValueError("scheduler needs at least one endpoint")
        self.env = env
        self.policy = policy
        self.name = name
        self.states = [ReplicaState(env, ep, policy) for ep in endpoints]
        self._window: typing.Deque[float] = collections.deque(maxlen=self.WINDOW)

    # ------------------------------------------------------------------
    def _count(self, state: ReplicaState, counter: str, amount: int = 1) -> None:
        self.env.stats.counter(
            f"bind.replica.{state.label}.{counter}"
        ).increment(amount)

    def _score(self, state: ReplicaState) -> float:
        # Untried endpoints score below any measured one so they get
        # explored; in-flight requests push an endpoint down the order.
        base = -1.0 if state.ewma_ms is None else state.ewma_ms
        return base + state.inflight * self.policy.inflight_penalty_ms

    # ------------------------------------------------------------------
    def plan(self) -> typing.List[ReplicaState]:
        """The ordered list of replicas to try for one exchange."""
        states = list(self.states)
        candidates = states
        if self.policy.skip_open_breakers and self.policy.breaker_threshold:
            healthy = [s for s in states if s.breaker.state != "open"]
            if healthy:
                for state in states:
                    if state.breaker.state == "open":
                        self._count(state, "skipped")
                candidates = healthy
            # else: every breaker is open — fall through with the full
            # static order rather than refuse outright.
        if not self.policy.adaptive or len(candidates) < 2:
            return candidates
        rng = self.env.rng.stream(f"bind.replica.p2c:{self.name}")
        i, j = rng.sample(range(len(candidates)), 2)
        a, b = candidates[i], candidates[j]
        first = a if self._score(a) <= self._score(b) else b
        rest = sorted(
            (s for s in candidates if s is not first), key=self._score
        )
        return [first] + rest

    def hedge_delay_ms(self) -> typing.Optional[float]:
        """How long to wait before hedging, or None to not hedge.

        The policy quantile of the recent successful-latency window,
        clamped to ``[hedge_min_delay_ms, hedge_max_delay_ms]``; no
        hedging until ``hedge_min_samples`` samples have accumulated.
        """
        policy = self.policy
        if not policy.hedging or len(self._window) < policy.hedge_min_samples:
            return None
        ordered = sorted(self._window)
        k = (len(ordered) - 1) * policy.hedge_quantile
        lo = int(k)
        hi = min(lo + 1, len(ordered) - 1)
        q = ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)
        return min(max(q, policy.hedge_min_delay_ms), policy.hedge_max_delay_ms)

    # ------------------------------------------------------------------
    def record_start(self, state: ReplicaState, hedge: bool = False) -> None:
        """A request is being issued to ``state``'s endpoint."""
        state.inflight += 1
        self._count(state, "requests")
        if hedge:
            self._count(state, "hedges")

    def record_success(
        self, state: ReplicaState, latency_ms: float, won: bool
    ) -> None:
        """The endpoint answered after ``latency_ms``; ``won`` marks the
        reply that was actually used (hedge losers answer too)."""
        state.inflight = max(0, state.inflight - 1)
        self._observe(state, latency_ms)
        self._window.append(latency_ms)
        state.breaker.record_success()
        if won:
            self._count(state, "wins")

    def record_failure(self, state: ReplicaState, latency_ms: float) -> None:
        """The request failed (timeout / network error) after
        ``latency_ms`` of wasted waiting — which is real latency signal,
        so it feeds the EWMA too."""
        state.inflight = max(0, state.inflight - 1)
        self._observe(state, latency_ms)
        state.breaker.record_failure()
        self._count(state, "errors")

    def _observe(self, state: ReplicaState, latency_ms: float) -> None:
        alpha = self.policy.ewma_alpha
        if state.ewma_ms is None:
            state.ewma_ms = latency_ms
        else:
            state.ewma_ms = alpha * latency_ms + (1.0 - alpha) * state.ewma_ms
        self.env.stats.timer(f"bind.replica.{state.label}.ewma_ms").record(
            state.ewma_ms
        )

    # ------------------------------------------------------------------
    def state_for(self, endpoint: Endpoint) -> ReplicaState:
        """The state tracking ``endpoint`` (for tests/observability)."""
        for state in self.states:
            if state.endpoint == endpoint:
                return state
        raise KeyError(endpoint)

    def snapshot(self) -> typing.Dict[str, typing.Dict[str, typing.Any]]:
        """label -> {ewma_ms, inflight, breaker} for observability."""
        return {
            s.label: {
                "ewma_ms": s.ewma_ms,
                "inflight": s.inflight,
                "breaker": s.breaker.state,
            }
            for s in self.states
        }
