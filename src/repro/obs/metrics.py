"""From spans to metrics: histogram aggregation plus exemplars.

The stats registry answers "how slow are ``FindNSM``\\s?"; a trace
answers "why was *that one* slow?".  This pipeline connects the two:
every finished span feeds a per-span-name latency histogram
(``obs.span.<name>``) in the environment's :class:`~repro.sim.stats.
StatsRegistry`, and an :class:`ExemplarStore` keeps a few *trace ids*
per histogram bucket — so a fat p99 bucket comes with concrete traces
to pull up in the critical-path report.

Histograms and timers are outside the determinism digest (which covers
trace records, counters, and the clock), so recording here cannot
perturb a run.  Nothing in this module touches counters.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import Span
    from repro.sim.kernel import Environment

#: Default latency bucket bounds (simulated ms): resolution steps range
#: from sub-ms cache probes to multi-second retry ladders.
DEFAULT_BOUNDS: typing.Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
)


class ExemplarStore:
    """Per-bucket sample trace ids for each span-name histogram.

    At most ``per_bucket`` trace ids are kept per bucket, first-come —
    deterministic given a deterministic span stream, and enough to jump
    from any bucket of ``obs.span.<name>`` to real traces that landed
    in it.
    """

    def __init__(self, per_bucket: int = 3):
        if per_bucket < 1:
            raise ValueError("per_bucket must be >= 1")
        self.per_bucket = per_bucket
        #: histogram name -> bucket index -> [trace ids]
        self._store: typing.Dict[str, typing.Dict[int, typing.List[int]]] = {}

    def record(self, name: str, bucket_index: int, trace_id: int) -> None:
        buckets = self._store.setdefault(name, {})
        ids = buckets.setdefault(bucket_index, [])
        if len(ids) < self.per_bucket and trace_id not in ids:
            ids.append(trace_id)

    def exemplars(self, name: str) -> typing.Dict[int, typing.List[int]]:
        """bucket index -> sample trace ids, for one histogram."""
        return {
            index: list(ids)
            for index, ids in self._store.get(name, {}).items()
        }

    def names(self) -> typing.List[str]:
        return sorted(self._store)


class SpanMetrics:
    """The span->stats pipeline; attach via ``env.obs.enable(metrics=...)``."""

    def __init__(
        self,
        env: "Environment",
        bounds: typing.Sequence[float] = DEFAULT_BOUNDS,
        exemplars_per_bucket: int = 3,
    ):
        self.env = env
        self.bounds = tuple(float(b) for b in bounds)
        self.exemplars = ExemplarStore(exemplars_per_bucket)

    def observe(self, span: "Span") -> None:
        """Fold one finished span into the histograms + exemplars."""
        if span.end_ms is None:
            return
        histogram = self.env.stats.histogram(
            f"obs.span.{span.name}", self.bounds
        )
        duration = span.duration_ms
        histogram.record(duration)
        self.exemplars.record(
            histogram.name, histogram.bucket_index(duration), span.trace_id
        )
