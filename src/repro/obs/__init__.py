"""``repro.obs``: causal tracing and metrics for the resolution stack.

Spans (:mod:`repro.obs.span`) thread a deterministic trace id through
the whole resolution pipeline — ``Import`` -> ``FindNSM`` -> meta
mappings -> BIND replica legs -> NSM calls — without perturbing the
simulation.  On top of them: critical-path extraction
(:mod:`repro.obs.critical_path`), span-to-histogram aggregation with
exemplars (:mod:`repro.obs.metrics`), and JSON / Perfetto / text
exporters (:mod:`repro.obs.export`).

Enable per environment::

    env.obs.enable()                        # every trace
    env.obs.enable(sample_every=16)         # deterministic sampling
    env.obs.enable(metrics=SpanMetrics(env))  # + histograms/exemplars

Off by default; when on, runs stay digest-identical to untraced runs
(verified by ``python -m repro.analysis --determinism``).
"""

from repro.obs.critical_path import CriticalPath, PathStep
from repro.obs.export import (
    chrome_trace,
    render_trace,
    trace_to_json,
    write_chrome_trace,
    write_json,
)
from repro.obs.metrics import DEFAULT_BOUNDS, ExemplarStore, SpanMetrics
from repro.obs.span import NULL_SPAN, NullSpan, Observability, Span

__all__ = [
    "CriticalPath",
    "PathStep",
    "chrome_trace",
    "render_trace",
    "trace_to_json",
    "write_chrome_trace",
    "write_json",
    "DEFAULT_BOUNDS",
    "ExemplarStore",
    "SpanMetrics",
    "NULL_SPAN",
    "NullSpan",
    "Observability",
    "Span",
]
