"""Critical-path extraction: *where the time went* in one trace.

A trace is a tree of spans; the critical path is the blocking chain —
at every level, the child spans that the parent was actually waiting
on, walked backward from the parent's end.  For the paper's cold
``FindNSM`` the result is exactly the "six sequential mappings" figure
as a computed artifact; for the batched fast path (PR 3) or hedged
replica reads (PR 4) the optimisations show up as a literally shorter
path.

The walk is greedy and backward: starting from the parent's end time,
repeatedly take the child with the latest end not after the cursor,
then move the cursor to that child's start.  Children that overlap an
already-chosen child (a hedge loser, a background renewal) fall off
the path — which is the point.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.span import Span

#: tolerance when comparing span boundaries (simulated ms)
_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One span on the critical path.

    ``self_ms`` is the portion of the span's duration not covered by
    its own on-path children — the time this step itself contributed.
    ``depth`` is its nesting level on the path (root = 0).
    """

    span: Span
    self_ms: float
    depth: int


class CriticalPath:
    """The blocking chain of one completed trace."""

    def __init__(self, root: Span, steps: typing.List[PathStep]):
        self.root = root
        #: pre-order (chronological within each level) path steps
        self.steps = steps

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        spans: typing.Sequence[Span],
        root: typing.Optional[Span] = None,
    ) -> "CriticalPath":
        """Extract the critical path of ``spans`` (one trace's worth).

        ``root`` defaults to the earliest-starting parentless span; if
        every span has a parent (e.g. the true root was sampled away),
        the earliest-starting span stands in.
        """
        finished = [s for s in spans if s.end_ms is not None]
        if not finished:
            raise ValueError("no finished spans to analyse")
        if root is None:
            roots = [s for s in finished if s.parent_id is None]
            pool = roots or finished
            root = min(pool, key=lambda s: (s.start_ms, s.span_id))
        children: typing.Dict[int, typing.List[Span]] = {}
        for span in finished:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        steps: typing.List[PathStep] = []
        cls._expand(root, children, 0, steps)
        return cls(root, steps)

    @classmethod
    def _expand(
        cls,
        span: Span,
        children: typing.Dict[int, typing.List[Span]],
        depth: int,
        out: typing.List[PathStep],
    ) -> None:
        chain = cls._blocking_children(span, children)
        span_end = span.end_ms if span.end_ms is not None else span.start_ms
        covered = 0.0
        for c in chain:
            c_end = c.end_ms if c.end_ms is not None else c.start_ms
            covered += min(c_end, span_end) - max(c.start_ms, span.start_ms)
        self_ms = max(0.0, span_end - span.start_ms - covered)
        out.append(PathStep(span=span, self_ms=self_ms, depth=depth))
        for child in chain:
            cls._expand(child, children, depth + 1, out)

    @staticmethod
    def _blocking_children(
        span: Span, children: typing.Dict[int, typing.List[Span]]
    ) -> typing.List[Span]:
        """The children ``span`` was waiting on, in chronological order."""
        assert span.end_ms is not None
        kids = children.get(span.span_id, [])
        chain: typing.List[Span] = []
        cursor = span.end_ms
        for child in sorted(
            kids,
            key=lambda c: (
                c.end_ms if c.end_ms is not None else c.start_ms,
                c.start_ms,
            ),
            reverse=True,
        ):
            assert child.end_ms is not None
            if child.end_ms <= span.start_ms + _EPS:
                continue  # finished before the parent even started
            if child.end_ms <= cursor + _EPS:
                chain.append(child)
                cursor = child.start_ms
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    @property
    def total_ms(self) -> float:
        """End-to-end duration of the traced operation."""
        return self.root.duration_ms

    def names(self) -> typing.List[str]:
        """Span names along the path, in path order."""
        return [step.span.name for step in self.steps]

    def contains_sequence(self, names: typing.Sequence[str]) -> bool:
        """Do ``names`` appear on the path, in order (gaps allowed)?"""
        want = list(names)
        for step in self.steps:
            if want and step.span.name == want[0]:
                want.pop(0)
        return not want

    def render(self) -> str:
        """A text report: one line per path step, indented by depth."""
        lines = [
            f"critical path: {self.total_ms:.1f} ms over "
            f"{len(self.steps)} spans (trace {self.root.trace_id:012x})"
        ]
        for step in self.steps:
            span = step.span
            detail = _describe_attrs(span)
            status = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
            lines.append(
                f"{'  ' * step.depth}- {span.name}  "
                f"{span.duration_ms:8.1f} ms total, "
                f"{step.self_ms:8.1f} ms self"
                f"{'  ' + detail if detail else ''}{status}"
            )
        return "\n".join(lines)


def _describe_attrs(span: Span) -> str:
    """A compact ``key=value`` rendering of a span's attributes."""
    if not span.attrs:
        return ""
    parts = [f"{key}={span.attrs[key]}" for key in sorted(span.attrs)]
    return "(" + ", ".join(parts) + ")"
