"""Trace exporters: JSON, Chrome ``trace_event`` (Perfetto), text.

Three consumers, three formats:

- :func:`trace_to_json` / :func:`write_json` — the raw span data, for
  scripts and tests;
- :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome's
  ``trace_event`` JSON, loadable in ``ui.perfetto.dev`` (or
  ``chrome://tracing``): one Perfetto *process* per trace, one *thread*
  per simulated process, complete (``ph: "X"``) events with simulated
  microsecond timestamps;
- :func:`render_trace` — an indented text tree of one trace, with the
  critical-path steps marked, for terminals and CI logs.

Exporters only read finished spans; they are safe to call mid-run.
"""

from __future__ import annotations

import json
import typing

from repro.obs.critical_path import CriticalPath, _describe_attrs
from repro.obs.span import AttrValue, Observability, Span


def _span_to_json(span: Span) -> typing.Dict[str, object]:
    return {
        "trace_id": f"{span.trace_id:012x}",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start_ms": span.start_ms,
        "end_ms": span.end_ms,
        "duration_ms": span.duration_ms,
        "process": span.process,
        "status": span.status,
        "error": span.error,
        "attrs": {k: _jsonable(v) for k, v in sorted(span.attrs.items())},
    }


def _jsonable(value: AttrValue) -> object:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def trace_to_json(obs: Observability) -> typing.Dict[str, object]:
    """All finished traces as one JSON-able document."""
    traces = []
    for trace_id, spans in obs.traces().items():
        traces.append(
            {
                "trace_id": f"{trace_id:012x}",
                "spans": [_span_to_json(s) for s in spans],
            }
        )
    return {"traces": traces, "dropped_spans": obs.dropped}


def write_json(obs: Observability, path: str) -> int:
    """Write :func:`trace_to_json` to ``path``; returns the span count."""
    document = trace_to_json(obs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(obs.spans)


# ----------------------------------------------------------------------
# Chrome trace_event / Perfetto
# ----------------------------------------------------------------------
def chrome_trace(obs: Observability) -> typing.Dict[str, object]:
    """Finished spans as a Chrome ``trace_event`` document.

    Each trace becomes a Perfetto process (pid), each simulated process
    within it a thread (tid), so concurrent legs of one trace render as
    parallel tracks rather than corrupting each other's nesting.
    Timestamps are simulated milliseconds expressed in microseconds,
    the unit the format requires.
    """
    events: typing.List[typing.Dict[str, object]] = []
    for pid, (trace_id, spans) in enumerate(obs.traces().items(), start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"trace {trace_id:012x}"},
            }
        )
        tids: typing.Dict[str, int] = {}
        for span in spans:
            if span.end_ms is None:
                continue
            tid = tids.get(span.process)
            if tid is None:
                tid = len(tids) + 1
                tids[span.process] = tid
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": span.process},
                    }
                )
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": span.start_ms * 1000.0,
                    "dur": span.duration_ms * 1000.0,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "trace_id": f"{span.trace_id:012x}",
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "status": span.status,
                        **{
                            k: _jsonable(v)
                            for k, v in sorted(span.attrs.items())
                        },
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(obs: Observability, path: str) -> int:
    """Write :func:`chrome_trace` to ``path``; returns the event count."""
    document = chrome_trace(obs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True)
        fh.write("\n")
    return len(typing.cast(list, document["traceEvents"]))


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_trace(
    spans: typing.Sequence[Span],
    critical_path: typing.Optional[CriticalPath] = None,
) -> str:
    """An indented text tree of one trace's finished spans.

    Spans on ``critical_path`` (when given) are marked with ``*`` — the
    flame view and the blocking chain in one listing.
    """
    finished = [s for s in spans if s.end_ms is not None]
    if not finished:
        return "(no finished spans)"
    on_path: typing.Set[int] = set()
    if critical_path is not None:
        on_path = {step.span.span_id for step in critical_path.steps}
    children: typing.Dict[typing.Optional[int], typing.List[Span]] = {}
    ids = {s.span_id for s in finished}
    for span in finished:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: (s.start_ms, s.span_id))
    lines: typing.List[str] = []

    def emit(span: Span, depth: int) -> None:
        mark = "*" if span.span_id in on_path else " "
        detail = _describe_attrs(span)
        status = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
        lines.append(
            f"{mark} {'  ' * depth}{span.name}  "
            f"{span.start_ms:9.1f} +{span.duration_ms:8.1f} ms"
            f"{'  ' + detail if detail else ''}{status}"
        )
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
