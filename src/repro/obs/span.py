"""Causal spans over the resolution pipeline.

A :class:`Span` is one timed step of a resolution — a ``FindNSM``, one
meta mapping, one replica leg — carrying a trace id shared by every
span of the same logical operation and a parent link that records *who
was waiting on it*.  The paper's "six sequential mappings" then stops
being prose: it is the blocking chain of a traced cold ``FindNSM``
(:mod:`repro.obs.critical_path`).

Determinism contract (the same bar :class:`~repro.sim.kernel.
KernelMonitor` meets):

- **Off by default, ~zero when off.**  ``Observability.span`` returns a
  shared no-op context manager unless tracing is enabled — one attribute
  check per instrumentation site, no allocation.
- **Digest-identical when on.**  Spans never emit trace records, never
  touch stats *counters* (they may feed histograms/timers, which are
  outside the determinism digest), never schedule events, and never
  charge CPU; trace ids come from a dedicated named RNG stream
  (``obs.ids``) so no other stream's draw sequence moves.  Enabling
  tracing therefore cannot change a run's trajectory, which
  ``python -m repro.analysis --determinism`` verifies on every
  registered scenario.

Context propagation rides the generator call chain: ``with
env.obs.span(...)`` inside a process generator stays open across its
yields, and nested instrumentation finds it as the current span of the
active process.  Work handed to *another* process (hedged replica legs,
refresh-ahead renewals) must capture ``env.obs.current()`` at spawn
time and pass it as ``parent=`` explicitly — a new process starts with
an empty span stack.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import SpanMetrics
    from repro.sim.kernel import Environment
    from repro.sim.process import Process

#: Attribute values instrumentation may attach to a span.
AttrValue = typing.Union[str, int, float, bool, None]

#: sentinel distinguishing "inherit the current span" from an explicit
#: ``parent=None`` (which forces a new root)
_INHERIT = object()


class NullSpan:
    """The do-nothing span: what disabled or sampled-out sites get.

    The shared :data:`NULL_SPAN` instance absorbs ``set`` and context
    management without allocating.  An *owned* instance (``obs`` set)
    additionally holds a place on the process span stack so that
    descendants of an unsampled root resolve to it — and therefore
    no-op too — instead of starting fresh traces.
    """

    __slots__ = ("_obs",)

    #: no-op spans never carry identity
    trace_id = 0
    span_id = 0
    parent_id: typing.Optional[int] = None
    name = ""
    recording = False

    def __init__(self, obs: typing.Optional["Observability"] = None):
        self._obs = obs

    def set(self, **attrs: AttrValue) -> None:
        """Discard ``attrs``."""

    def __enter__(self) -> "NullSpan":
        if self._obs is not None:
            self._obs._push(self)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._obs is not None:
            self._obs._pop(self)


#: the shared stackless no-op span
NULL_SPAN = NullSpan()

#: Either a real recording span or a no-op stand-in: what
#: :meth:`Observability.span` hands to instrumentation sites.
SpanLike = typing.Union["Span", NullSpan]


class Span:
    """One timed, attributed step of a trace.

    Use as a context manager; the span opens at ``__enter__`` and
    closes (recording its end time and any in-flight exception) at
    ``__exit__``.  Times are simulated milliseconds from ``env.now``.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_ms",
        "end_ms",
        "attrs",
        "status",
        "error",
        "process",
        "_obs",
    )

    #: real spans record; the shared NullSpan does not
    recording = True

    def __init__(
        self,
        obs: "Observability",
        trace_id: int,
        span_id: int,
        parent_id: typing.Optional[int],
        name: str,
        start_ms: float,
        process: str,
        attrs: typing.Dict[str, AttrValue],
    ):
        self._obs = obs
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms: typing.Optional[float] = None
        self.process = process
        self.attrs = attrs
        self.status = "ok"
        self.error = ""

    # ------------------------------------------------------------------
    def set(self, **attrs: AttrValue) -> None:
        """Attach (or overwrite) typed attributes."""
        self.attrs.update(attrs)

    @property
    def duration_ms(self) -> float:
        """Span duration; 0.0 while still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._obs._push(self)
        return self

    def __exit__(
        self,
        exc_type: typing.Optional[type],
        exc: typing.Optional[BaseException],
        tb: object,
    ) -> None:
        self.end_ms = self._obs.env.now
        if exc is not None and self.status == "ok":
            self.status = "error"
            self.error = type(exc).__name__
        self._obs._pop(self)
        self._obs._record(self)

    def __repr__(self) -> str:
        end = f"{self.end_ms:.3f}" if self.end_ms is not None else "open"
        return (
            f"Span({self.name!r}, trace={self.trace_id:x}, "
            f"id={self.span_id}, parent={self.parent_id}, "
            f"[{self.start_ms:.3f}..{end}], {self.status})"
        )


class Observability:
    """Per-environment span collector: ``env.obs``.

    Off by default.  :meth:`enable` turns span collection on, with
    optional deterministic root sampling (``sample_every=n`` keeps every
    n-th root trace, counted in creation order) and an optional
    :class:`~repro.obs.metrics.SpanMetrics` pipeline that folds finished
    spans into the stats registry's histograms.
    """

    #: Test hook: when True, environments construct with tracing
    #: already enabled.  The determinism checker flips this to prove
    #: that a fully traced run replays the untraced digest exactly.
    default_enabled: typing.ClassVar[bool] = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.enabled = bool(type(self).default_enabled)
        #: keep every ``sample_every``-th root trace (1 = keep all)
        self.sample_every = 1
        #: hard cap on retained finished spans (drops count below)
        self.max_spans = 100_000
        #: spans dropped once :attr:`max_spans` was reached
        self.dropped = 0
        #: finished spans, in completion order
        self.spans: typing.List[Span] = []
        #: optional metrics pipeline fed on every finished span
        self.metrics: typing.Optional["SpanMetrics"] = None
        #: per-process open-span stacks; keyed by the Process object,
        #: accessed only by identity (never iterated) so insertion
        #: order cannot leak into the run
        self._stacks: typing.Dict["Process", typing.List[SpanLike]] = {}
        self._global_stack: typing.List[SpanLike] = []
        self._next_span_id = 1
        self._roots_seen = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def enable(
        self,
        sample_every: int = 1,
        metrics: typing.Optional["SpanMetrics"] = None,
    ) -> None:
        """Turn span collection on (idempotent)."""
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = True
        self.sample_every = sample_every
        if metrics is not None:
            self.metrics = metrics

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        self.spans = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        /,
        parent: typing.Union[SpanLike, None, object] = _INHERIT,
        **attrs: AttrValue,
    ) -> SpanLike:
        """Open a span (use as a context manager).

        ``name`` is positional-only so instrumentation can attach a
        ``name=...`` *attribute* (e.g. the HNS name being resolved).

        With no explicit ``parent``, the span nests under the current
        span of the active process; with none open it starts a new
        trace (a *root*), subject to sampling.  Pass ``parent=`` when
        the causal parent lives in another process — e.g. a hedged
        replica leg's parent is the exchange that launched it.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is _INHERIT:
            parent = self.current()
        if isinstance(parent, NullSpan):
            # Descendant of a sampled-out root: stay silent, and do not
            # hold a stack slot (the root's own NullSpan already does).
            return NULL_SPAN
        parent_span = typing.cast(typing.Optional[Span], parent)
        if parent_span is None:
            self._roots_seen += 1
            if (self._roots_seen - 1) % self.sample_every != 0:
                return NullSpan(self)
            trace_id = self.env.rng.stream("obs.ids").getrandbits(48)
            parent_id = None
        else:
            trace_id = parent_span.trace_id
            parent_id = parent_span.span_id
        span_id = self._next_span_id
        self._next_span_id += 1
        return Span(
            obs=self,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_ms=self.env.now,
            process=self._process_name(),
            attrs=dict(attrs),
        )

    def current(self) -> typing.Optional[SpanLike]:
        """The innermost open span of the active process, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def traces(self) -> typing.Dict[int, typing.List[Span]]:
        """trace id -> finished spans, in completion order."""
        grouped: typing.Dict[int, typing.List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace_spans(self, trace_id: int) -> typing.List[Span]:
        """The finished spans of one trace, in completion order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self) -> typing.List[Span]:
        """Finished root spans (no parent), in completion order."""
        return [s for s in self.spans if s.parent_id is None]

    def spans_named(self, name: str) -> typing.List[Span]:
        """Finished spans called ``name``, in completion order."""
        return [s for s in self.spans if s.name == name]

    # ------------------------------------------------------------------
    # Stack plumbing (Span/NullSpan only)
    # ------------------------------------------------------------------
    def _stack(self) -> typing.List[SpanLike]:
        process = self.env.active_process
        if process is None:
            return self._global_stack
        stack = self._stacks.get(process)
        if stack is None:
            stack = []
            self._stacks[process] = stack
        return stack

    def _push(self, span: SpanLike) -> None:
        self._stack().append(span)

    def _pop(self, span: SpanLike) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unwound out of order: drop through it
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        process = self.env.active_process
        if process is not None and not stack:
            self._stacks.pop(process, None)

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.observe(span)

    def _process_name(self) -> str:
        process = self.env.active_process
        if process is None:
            return "main"
        return getattr(process, "name", None) or "process"
