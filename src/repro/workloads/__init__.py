"""Workloads: the simulated HCS testbed and query-stream generators."""

from repro.workloads.scenarios import HcsTestbed, build_stack, build_testbed
from repro.workloads.generator import QueryEvent, QueryWorkload
from repro.workloads.zipf import ZipfDistribution

__all__ = [
    "HcsTestbed",
    "QueryEvent",
    "QueryWorkload",
    "ZipfDistribution",
    "build_stack",
    "build_testbed",
]
