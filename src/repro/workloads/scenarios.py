"""The canned HCS testbed and colocation-stack builder.

``build_testbed`` stands up the whole environment of Section 3:

- MicroVAX-class hosts on one lightly loaded Ethernet;
- the modified meta-BIND (dynamic update + UNSPEC data);
- a public BIND serving ``cs.washington.edu`` (hosts, mail TXT, file
  TXT records);
- a Clearinghouse serving the ``hcs:uw`` domain for the Xerox side;
- a Sun host (``fiji``) running the portmapper and a target Sun RPC
  service, and an XDE host (``dlion``) running the Courier binder and a
  Courier service;
- meta-zone registrations for both name services, their contexts, and
  all their NSMs, written through the dynamic-update path.

``build_stack`` then wires the client side for any of the five
colocation arrangements of Table 3.1.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bind import BindServer, ResourceRecord, Zone
from repro.clearinghouse import (
    CHName,
    ClearinghouseServer,
    Credentials,
)
from repro.core.admin import HnsAdministrator
from repro.core.colocation import Arrangement, ColocationStack
from repro.core.hns import HNS, serve_hns
from repro.core.import_call import (
    HrpcImporter,
    LocalFinder,
    RemoteFinder,
    serve_agent,
)
from repro.core.metastore import MetaStore
from repro.core.nsm import NamingSemanticsManager, NsmStub, serve_nsm
from repro.core.nsms import (
    BindBindingNSM,
    BindHostAddressNSM,
    BindMailboxNSM,
    BindFileServiceNSM,
    ClearinghouseBindingNSM,
    ClearinghouseHostAddressNSM,
    ClearinghouseMailboxNSM,
    ClearinghouseFileServiceNSM,
)
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc import (
    CourierBinder,
    HRPCBinding,
    HrpcRuntime,
    HrpcServer,
    Portmapper,
)
from repro.net import DatagramTransport, Internetwork, StreamTransport
from repro.net.addresses import WELL_KNOWN_PORTS, Endpoint
from repro.net.host import Host
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    FastPathPolicy,
    PolicySet,
    ReplicaPolicy,
    ResolutionPolicy,
    UpdatePolicy,
)
from repro.sim import ConstantLatency, Environment, Interrupt

# Fixed well-known deployment constants for the testbed.
BIND_NS = "BIND-cs"
CH_NS = "CH-hcs"
BIND_CONTEXT = "BIND-cs"
CH_CONTEXT = "CH-hcs"
SRV_CONTEXT = "BIND-srv"
NSM_PORT = WELL_KNOWN_PORTS["nsm-base"]
HNS_PORT = WELL_KNOWN_PORTS["hns"]
AGENT_PORT = WELL_KNOWN_PORTS["hns"] + 1
TARGET_SERVICE = "DesiredService"
TARGET_PORT = 9999
COURIER_SERVICE = "PrintService"
COURIER_PORT = 6001
CREDENTIALS = Credentials("hcs", "hcs-secret")


@dataclasses.dataclass
class HcsTestbed:
    """Everything standing after :func:`build_testbed`."""

    env: Environment
    internet: Internetwork
    calibration: Calibration
    udp: DatagramTransport
    tcp: StreamTransport
    # hosts
    client: Host
    meta_host: Host
    public_host: Host
    fiji: Host
    june: Host
    dlion: Host
    ch_host: Host
    nsm_host: Host
    hns_host: Host
    agent_host: Host
    # services
    meta_server: BindServer
    meta_endpoint: Endpoint
    public_server: BindServer
    public_endpoint: Endpoint
    ch_server: ClearinghouseServer
    ch_endpoint: Endpoint

    # ------------------------------------------------------------------
    # NSM factories: one per (query class, name service), placed anywhere
    # ------------------------------------------------------------------
    def make_bind_binding_nsm(self, host: Host, cached: bool = True) -> BindBindingNSM:
        return BindBindingNSM(
            host,
            BIND_NS,
            self.udp,
            self.public_endpoint,
            calibration=self.calibration,
            cached=cached,
        )

    def make_bind_hostaddr_nsm(
        self, host: Host, cached: bool = True
    ) -> BindHostAddressNSM:
        return BindHostAddressNSM(
            host,
            BIND_NS,
            self.udp,
            self.public_endpoint,
            calibration=self.calibration,
            cached=cached,
        )

    def make_ch_binding_nsm(
        self, host: Host, cached: bool = True
    ) -> ClearinghouseBindingNSM:
        return ClearinghouseBindingNSM(
            host,
            CH_NS,
            self.tcp,
            self.ch_endpoint,
            CREDENTIALS,
            calibration=self.calibration,
            cached=cached,
        )

    def make_ch_hostaddr_nsm(
        self, host: Host, cached: bool = True
    ) -> ClearinghouseHostAddressNSM:
        return ClearinghouseHostAddressNSM(
            host,
            CH_NS,
            self.tcp,
            self.ch_endpoint,
            CREDENTIALS,
            calibration=self.calibration,
            cached=cached,
        )

    def make_bind_mail_nsm(self, host: Host, cached: bool = True) -> BindMailboxNSM:
        return BindMailboxNSM(
            host,
            BIND_NS,
            self.udp,
            self.public_endpoint,
            calibration=self.calibration,
            cached=cached,
        )

    def make_ch_mail_nsm(
        self, host: Host, cached: bool = True
    ) -> ClearinghouseMailboxNSM:
        return ClearinghouseMailboxNSM(
            host,
            CH_NS,
            self.tcp,
            self.ch_endpoint,
            CREDENTIALS,
            calibration=self.calibration,
            cached=cached,
        )

    def make_bind_file_nsm(self, host: Host, cached: bool = True) -> BindFileServiceNSM:
        return BindFileServiceNSM(
            host,
            BIND_NS,
            self.udp,
            self.public_endpoint,
            calibration=self.calibration,
            cached=cached,
        )

    def make_ch_file_nsm(
        self, host: Host, cached: bool = True
    ) -> ClearinghouseFileServiceNSM:
        return ClearinghouseFileServiceNSM(
            host,
            CH_NS,
            self.tcp,
            self.ch_endpoint,
            CREDENTIALS,
            calibration=self.calibration,
            cached=cached,
        )

    def make_metastore(
        self,
        host: Host,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
        fast_path: typing.Optional[FastPathPolicy] = None,
        replica_policy: typing.Optional[ReplicaPolicy] = None,
        secondaries: typing.Sequence[Endpoint] = (),
        update_policy: typing.Optional[UpdatePolicy] = None,
        policies: typing.Optional[PolicySet] = None,
    ) -> MetaStore:
        if policies is None:
            policies = PolicySet(
                resolution=policy,
                fast_path=fast_path,
                replica=replica_policy,
                update=update_policy,
            )
        return MetaStore(
            host,
            self.udp,
            self.meta_endpoint,
            calibration=self.calibration,
            secondaries=secondaries,
            policies=policies,
        )

    def make_hns(
        self,
        host: Host,
        policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
        fast_path: typing.Optional[FastPathPolicy] = None,
        replica_policy: typing.Optional[ReplicaPolicy] = None,
        secondaries: typing.Sequence[Endpoint] = (),
        update_policy: typing.Optional[UpdatePolicy] = None,
        policies: typing.Optional[PolicySet] = None,
    ) -> HNS:
        """An HNS library instance with its statically linked NSMs."""
        if policies is None:
            policies = PolicySet(
                resolution=policy,
                fast_path=fast_path,
                replica=replica_policy,
                update=update_policy,
            )
        hns = HNS(
            self.make_metastore(
                host, secondaries=secondaries, policies=policies
            ),
            calibration=self.calibration,
        )
        bind_addr_nsm = self.make_bind_hostaddr_nsm(host)
        ch_addr_nsm = self.make_ch_hostaddr_nsm(host)
        bind_addr_nsm.fast_path = policies.fast_path
        ch_addr_nsm.fast_path = policies.fast_path
        hns.link_host_address_nsm(BIND_NS, bind_addr_nsm)
        hns.link_host_address_nsm(CH_NS, ch_addr_nsm)
        return hns


def _run(env: Environment, gen) -> object:
    return env.run(until=env.process(gen))


def build_testbed(
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    update_policy: typing.Optional[UpdatePolicy] = None,
) -> HcsTestbed:
    """Stand up the full HCS environment and register the meta data.

    ``update_policy`` configures the meta server's write pipeline
    (batched updates, leases, NOTIFY fan-out); ``None`` keeps the
    prototype's one-record-per-round-trip dynamic update.  The initial
    registration always runs the legacy path, so testbed setup is
    identical across modes.
    """
    env = Environment(seed=seed)
    internet = Internetwork(env)
    segment = internet.add_segment(
        latency=ConstantLatency(
            calibration.wire_base_ms, calibration.wire_per_byte_ms
        )
    )
    udp = DatagramTransport(internet)
    tcp = StreamTransport(internet)

    client = internet.add_host("client", segment)
    meta_host = internet.add_host("metans", segment)
    public_host = internet.add_host("ns0", segment)
    fiji = internet.add_host("fiji", segment, system_type="sun")
    june = internet.add_host("june", segment)
    dlion = internet.add_host("dlion", segment, system_type="xde")
    ch_host = internet.add_host("chserver", segment, system_type="xde")
    nsm_host = internet.add_host("nsmhost", segment)
    hns_host = internet.add_host("hnshost", segment)
    agent_host = internet.add_host("agenthost", segment)

    # --- the modified meta-BIND ------------------------------------------
    meta_server = BindServer(
        meta_host,
        zones=[Zone("hns")],
        lookup_cost_ms=calibration.meta_bind_lookup_ms,
        allow_dynamic_update=True,
        calibration=calibration,
        name="meta-bind",
        update_policy=update_policy,
        transport=udp,
    )
    meta_endpoint = meta_server.listen()

    # --- the public BIND ---------------------------------------------------
    zone = Zone("cs.washington.edu")
    for host in (
        fiji, june, public_host, nsm_host, hns_host, agent_host, client, dlion,
    ):
        zone.add(
            ResourceRecord.a_record(
                f"{host.name}.cs.washington.edu", str(host.address)
            )
        )
    zone.add(
        ResourceRecord.text_record(
            "schwartz.cs.washington.edu",
            "mailhost=june.cs.washington.edu;mailbox=schwartz",
        )
    )
    zone.add(
        ResourceRecord.text_record(
            "src.projects.cs.washington.edu",
            "server=fiji.cs.washington.edu;volume=/projects/src",
        )
    )
    public_server = BindServer(
        public_host, zones=[zone], calibration=calibration, name="public-bind"
    )
    public_endpoint = public_server.listen()

    # --- the Clearinghouse ---------------------------------------------------
    ch_server = ClearinghouseServer(ch_host, calibration=calibration)
    ch_server.credentials.enroll(CREDENTIALS.user, CREDENTIALS.secret)
    ch_server.database.register(
        CHName.parse("dlion:hcs:uw"),
        {"address": bytes(dlion.address.octets)},
    )
    ch_server.database.register(
        CHName.parse("levy:hcs:uw"),
        {"mailboxes": b"dlion:hcs:uw|levy"},
    )
    ch_server.database.register(
        CHName.parse("docs:hcs:uw"),
        {"fileservice": b"dlion:hcs:uw|/docs"},
    )
    ch_endpoint = ch_server.listen()

    # --- native binding protocols and target services -----------------------
    portmapper = Portmapper(fiji, calibration=calibration)
    portmapper.listen()
    portmapper.register_local(TARGET_SERVICE, TARGET_PORT)
    portmapper.register_local("hcsfile", TARGET_PORT)
    target_server = HrpcServer(fiji, name="target")

    def ping(ctx, *args):
        yield from ctx.host.cpu.compute(0.5)
        return ("pong",) + args

    target_server.program(TARGET_SERVICE).procedure("ping", ping)
    target_server.program("hcsfile").procedure("ping", ping)
    target_server.listen(TARGET_PORT)

    binder = CourierBinder(dlion, calibration=calibration)
    binder.listen()
    binder.advertise_local(COURIER_SERVICE, COURIER_PORT)
    binder.advertise_local("hcsfile", COURIER_PORT)
    courier_server = HrpcServer(dlion, name="courier-target")
    courier_server.program(COURIER_SERVICE).procedure("ping", ping)
    courier_server.program("hcsfile").procedure("ping", ping)
    courier_server.listen(COURIER_PORT)

    testbed = HcsTestbed(
        env=env,
        internet=internet,
        calibration=calibration,
        udp=udp,
        tcp=tcp,
        client=client,
        meta_host=meta_host,
        public_host=public_host,
        fiji=fiji,
        june=june,
        dlion=dlion,
        ch_host=ch_host,
        nsm_host=nsm_host,
        hns_host=hns_host,
        agent_host=agent_host,
        meta_server=meta_server,
        meta_endpoint=meta_endpoint,
        public_server=public_server,
        public_endpoint=public_endpoint,
        ch_server=ch_server,
        ch_endpoint=ch_endpoint,
    )

    # --- meta-zone registration via the dynamic-update path ------------------
    admin = HnsAdministrator(testbed.make_metastore(meta_host))

    def register_everything():
        yield from admin.register_name_service(
            BIND_NS, "bind", f"{public_host.name}.cs.washington.edu", 53
        )
        yield from admin.register_name_service(
            CH_NS, "clearinghouse", "chserver:hcs:uw", ch_endpoint.port
        )
        yield from admin.register_context(BIND_CONTEXT, BIND_NS)
        yield from admin.register_context(CH_CONTEXT, CH_NS)
        # The infrastructure hosts (NSM servers etc.) live in their own
        # context on the same BIND service — "more than one context ...
        # stored on the same name service" — so a cold FindNSM really
        # does miss on all six mappings, as in the paper's measurements.
        yield from admin.register_context(SRV_CONTEXT, BIND_NS)
        nsm_fqdn = f"{nsm_host.name}.cs.washington.edu"
        specs = [
            ("HRPCBinding", BIND_NS, 0),
            ("HostAddress", BIND_NS, 1),
            ("MailboxLocation", BIND_NS, 2),
            ("FileService", BIND_NS, 3),
            ("HRPCBinding", CH_NS, 4),
            ("HostAddress", CH_NS, 5),
            ("MailboxLocation", CH_NS, 6),
            ("FileService", CH_NS, 7),
        ]
        for query_class, ns, offset in specs:
            nsm_name = f"{query_class}-{ns}"
            yield from admin.register_nsm(
                nsm_name=nsm_name,
                query_class=query_class,
                name_service=ns,
                host_name=nsm_fqdn,
                host_context=SRV_CONTEXT,
                program=f"nsm.{nsm_name}",
                suite="sunrpc",
                port=NSM_PORT + offset,
                host_address=str(nsm_host.address),
            )

    _run(env, register_everything())
    return testbed


# ----------------------------------------------------------------------
# Colocation stacks
# ----------------------------------------------------------------------
def build_stack(
    testbed: HcsTestbed,
    arrangement: Arrangement,
    name_service: str = BIND_NS,
    policy: typing.Optional[ResolutionPolicy] = DEFAULT_RESOLUTION_POLICY,
    fast_path: typing.Optional[FastPathPolicy] = None,
    replica_policy: typing.Optional[ReplicaPolicy] = None,
    update_policy: typing.Optional[UpdatePolicy] = None,
    policies: typing.Optional[PolicySet] = None,
) -> ColocationStack:
    """Wire the client side for one Table 3.1 arrangement.

    ``policies`` bundles the whole policy surface as one
    :class:`~repro.resolution.PolicySet`
    (``PolicySet.paper_prototype()`` reproduces the prototype
    everywhere).  The individual kwargs remain for convenience and are
    folded into a PolicySet when ``policies`` is not given:
    ``policy`` configures the fault-tolerance layer of every stage
    (meta resolver, HNS, importer); pass
    ``ResolutionPolicy.disabled()`` for the prototype's die-on-error
    behaviour (the benchmarks' ablation baseline).  ``fast_path``
    likewise configures the performance layer (coalescing,
    refresh-ahead, batched meta lookups) of the HNS in the stack; the
    default ``None`` keeps the paper-faithful sequential behaviour.
    ``replica_policy`` configures replica-aware meta reads (adaptive
    selection, hedging, incremental transfer); ``None`` keeps the
    static primary-then-secondaries failover.  ``update_policy``
    configures the write pipeline (batched registration, leases,
    NOTIFY-driven invalidation); ``None`` keeps prototype writes.
    """
    if policies is None:
        policies = PolicySet(
            resolution=policy,
            fast_path=fast_path,
            replica=replica_policy,
            update=update_policy,
        )
    policy = policies.resolution
    env = testbed.env
    client = testbed.client
    runtime = HrpcRuntime(client, testbed.internet)
    cal = testbed.calibration

    def binding_nsm_for(host: Host) -> NamingSemanticsManager:
        if name_service == BIND_NS:
            return testbed.make_bind_binding_nsm(host)
        return testbed.make_ch_binding_nsm(host)

    if arrangement is Arrangement.ALL_LOCAL:
        hns = testbed.make_hns(client, policies=policies)
        nsm = binding_nsm_for(client)
        hns.link_local_nsm(nsm)
        stub = NsmStub(client, runtime, calibration=cal)
        stub.link_local(nsm)
        importer = HrpcImporter.direct(
            client, LocalFinder(hns), stub, calibration=cal, policy=policy
        )
        return ColocationStack(arrangement, client, importer, hns, nsm)

    if arrangement is Arrangement.AGENT:
        agent_host = testbed.agent_host
        hns = testbed.make_hns(agent_host, policies=policies)
        nsm = binding_nsm_for(agent_host)
        hns.link_local_nsm(nsm)
        agent_stub = NsmStub(agent_host, calibration=cal)
        agent_stub.link_local(nsm)
        server = HrpcServer(agent_host, name="agent")
        serve_agent(hns, server, agent_stub)
        server.listen(AGENT_PORT)
        agent_binding = HRPCBinding(
            Endpoint(agent_host.address, AGENT_PORT), "hnsagent", suite="sunrpc"
        )
        importer = HrpcImporter.via_agent(
            client, agent_binding, runtime, calibration=cal, policy=policy
        )
        return ColocationStack(
            arrangement, client, importer, hns, nsm, (agent_host,)
        )

    if arrangement is Arrangement.REMOTE_HNS:
        hns = testbed.make_hns(testbed.hns_host, policies=policies)
        server = HrpcServer(testbed.hns_host, name="hns-service")
        serve_hns(hns, server)
        server.listen(HNS_PORT)
        hns_binding = HRPCBinding(
            Endpoint(testbed.hns_host.address, HNS_PORT), "hns", suite="sunrpc"
        )
        nsm = binding_nsm_for(client)
        stub = NsmStub(client, runtime, calibration=cal)
        stub.link_local(nsm)
        importer = HrpcImporter.direct(
            client,
            RemoteFinder(runtime, hns_binding, policy=policy),
            stub,
            calibration=cal,
            policy=policy,
        )
        return ColocationStack(
            arrangement, client, importer, hns, nsm, (testbed.hns_host,)
        )

    if arrangement is Arrangement.REMOTE_NSMS:
        hns = testbed.make_hns(client, policies=policies)
        nsm = binding_nsm_for(testbed.nsm_host)
        server = HrpcServer(testbed.nsm_host, name="nsm-service")
        serve_nsm(server, nsm)
        server.listen(_nsm_port_for(nsm.name))
        stub = NsmStub(client, runtime, calibration=cal)
        importer = HrpcImporter.direct(
            client, LocalFinder(hns), stub, calibration=cal, policy=policy
        )
        return ColocationStack(
            arrangement, client, importer, hns, nsm, (testbed.nsm_host,)
        )

    if arrangement is Arrangement.ALL_REMOTE:
        hns = testbed.make_hns(testbed.hns_host, policies=policies)
        hns_server = HrpcServer(testbed.hns_host, name="hns-service")
        serve_hns(hns, hns_server)
        hns_server.listen(HNS_PORT)
        hns_binding = HRPCBinding(
            Endpoint(testbed.hns_host.address, HNS_PORT), "hns", suite="sunrpc"
        )
        nsm = binding_nsm_for(testbed.nsm_host)
        nsm_server = HrpcServer(testbed.nsm_host, name="nsm-service")
        serve_nsm(nsm_server, nsm)
        nsm_server.listen(_nsm_port_for(nsm.name))
        stub = NsmStub(client, runtime, calibration=cal)
        importer = HrpcImporter.direct(
            client,
            RemoteFinder(runtime, hns_binding, policy=policy),
            stub,
            calibration=cal,
            policy=policy,
        )
        return ColocationStack(
            arrangement,
            client,
            importer,
            hns,
            nsm,
            (testbed.hns_host, testbed.nsm_host),
        )

    raise ValueError(f"unknown arrangement {arrangement!r}")


# ----------------------------------------------------------------------
# The scenario registry (determinism checking, smoke runs)
# ----------------------------------------------------------------------
#: name -> builder(seed) -> Environment.  Each builder stands up the
#: testbed, enables tracing, drives a small representative workload to
#: completion, and returns the environment so callers can digest the
#: trace (``env.trace.digest()``) and stats.  The determinism gate
#: (``python -m repro.analysis --determinism``) runs every entry twice
#: per seed and fails on any digest mismatch.
SCENARIOS: "typing.Dict[str, typing.Callable[[int], Environment]]" = {}


def scenario(name: str) -> typing.Callable:
    """Register a scenario builder under ``name``."""

    def decorate(builder: typing.Callable[[int], Environment]):
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = builder
        return builder

    return decorate


def _import_scenario(arrangement: Arrangement) -> typing.Callable[[int], Environment]:
    """A cold-then-warm Import through one colocation arrangement."""

    def build(seed: int) -> Environment:
        from repro.core.names import HNSName

        testbed = build_testbed(seed=seed)
        stack = build_stack(testbed, arrangement)
        env = testbed.env
        env.trace.enabled = True
        name = HNSName(BIND_CONTEXT, "fiji.cs.washington.edu")

        def do():
            yield from stack.importer.import_binding(TARGET_SERVICE, name)

        env.run(until=env.process(do()))
        env.run(until=env.process(do()))
        return env

    return build


for _arrangement in Arrangement:
    SCENARIOS[f"import_{_arrangement.name.lower()}"] = _import_scenario(
        _arrangement
    )


@scenario("fast_path_coalescing")
def _fast_path_scenario(seed: int) -> Environment:
    """Concurrent same-name imports under the fast path (coalescing)."""
    from repro.core.names import HNSName

    testbed = build_testbed(seed=seed)
    stack = build_stack(
        testbed, Arrangement.ALL_LOCAL, fast_path=FastPathPolicy()
    )
    env = testbed.env
    env.trace.enabled = True
    name = HNSName(BIND_CONTEXT, "fiji.cs.washington.edu")

    def one_import():
        yield from stack.importer.import_binding(TARGET_SERVICE, name)

    def drive():
        waiters = [env.process(one_import()) for _ in range(4)]
        yield env.all_of(waiters)

    env.run(until=env.process(drive()))
    return env


@scenario("replica_scheduling")
def _replica_scenario(seed: int) -> Environment:
    """Meta reads through the adaptive replica scheduler (hedging on)."""
    from repro.core.names import HNSName

    testbed = build_testbed(seed=seed)
    stack = build_stack(
        testbed, Arrangement.ALL_LOCAL, replica_policy=ReplicaPolicy()
    )
    env = testbed.env
    env.trace.enabled = True
    name = HNSName(BIND_CONTEXT, "june.cs.washington.edu")

    def do():
        yield from stack.hns.find_nsm(name, "HostAddress")

    env.run(until=env.process(do()))
    env.run(until=env.process(do()))
    return env


@scenario("zipf_workload")
def _workload_scenario(seed: int) -> Environment:
    """A Zipf query stream over the HNS — exercises the named RNG paths."""
    from repro.core.names import HNSName
    from repro.workloads.generator import QueryWorkload

    testbed = build_testbed(seed=seed)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    env = testbed.env
    env.trace.enabled = True
    population = [
        (HNSName(BIND_CONTEXT, f"{host}.cs.washington.edu"), "HostAddress", {})
        for host in ("fiji", "june", "ns0", "client")
    ]
    workload = QueryWorkload(
        env, population, mean_interarrival_ms=40.0, zipf_s=1.1
    )

    def drive():
        for query in workload.generate(12):
            if query.at_ms > env.now:
                yield env.timeout(query.at_ms - env.now)
            yield from stack.hns.find_nsm(query.hns_name, query.query_class)

    env.run(until=env.process(drive()))
    return env


@scenario("traced_cold_import")
def _traced_scenario(seed: int) -> Environment:
    """A cold-then-warm Import with span tracing and metrics enabled.

    The returned environment carries the spans (``env.obs.spans``) and
    the ``obs.span.*`` histograms, so exporters and the critical-path
    analyzer have something real to chew on.  Registered like any other
    scenario, it also proves tracing survives the determinism gate.
    """
    from repro.core.names import HNSName
    from repro.obs import SpanMetrics

    testbed = build_testbed(seed=seed)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    env = testbed.env
    env.trace.enabled = True
    env.obs.enable(metrics=SpanMetrics(env))
    name = HNSName(BIND_CONTEXT, "fiji.cs.washington.edu")

    def do():
        yield from stack.importer.import_binding(TARGET_SERVICE, name)

    env.run(until=env.process(do()))
    env.run(until=env.process(do()))
    return env


@scenario("registration_storm")
def _registration_storm_scenario(seed: int) -> Environment:
    """A system merge: a whole name service's NSM fleet registers at
    once, with the batched write pipeline coalescing the storm."""
    testbed = build_testbed(seed=seed, update_policy=UpdatePolicy())
    env = testbed.env
    env.trace.enabled = True
    admin = HnsAdministrator(
        testbed.make_metastore(
            testbed.agent_host,
            policies=PolicySet(
                resolution=DEFAULT_RESOLUTION_POLICY, update=UpdatePolicy()
            ),
        )
    )
    nsm_fqdn = f"{testbed.nsm_host.name}.cs.washington.edu"

    def register_one(query_class: str, offset: int):
        nsm_name = f"{query_class}-BIND-eng"
        yield from admin.register_nsm(
            nsm_name=nsm_name,
            query_class=query_class,
            name_service="BIND-eng",
            host_name=nsm_fqdn,
            host_context=SRV_CONTEXT,
            program=f"nsm.{nsm_name}",
            suite="sunrpc",
            port=NSM_PORT + 8 + offset,
            host_address=str(testbed.nsm_host.address),
        )

    def drive():
        yield from admin.register_name_service(
            "BIND-eng",
            "bind",
            f"{testbed.public_host.name}.cs.washington.edu",
            53,
        )
        yield from admin.register_context("BIND-eng", "BIND-eng")
        wave = [
            env.process(register_one(query_class, offset))
            for offset, query_class in enumerate(
                ("HRPCBinding", "HostAddress", "MailboxLocation", "FileService")
            )
        ]
        yield env.all_of(wave)

    env.run(until=env.process(drive()))
    return env


@scenario("nsm_rebinding_wave")
def _rebinding_wave_scenario(seed: int) -> Environment:
    """A fleet of NSMs rebinds to a new host while a warm reader holds
    their old records; NOTIFY-driven invalidation pulls the IXFR deltas
    into the reader's cache long before TTL expiry would."""
    update = UpdatePolicy(invalidation="notify")
    testbed = build_testbed(seed=seed, update_policy=update)
    env = testbed.env
    env.trace.enabled = True
    writer = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    reader = testbed.make_metastore(testbed.client)
    admin = HnsAdministrator(writer)
    rebinding = ("HRPCBinding", "HostAddress", "MailboxLocation", "FileService")

    def rebind_one(query_class: str, offset: int):
        nsm_name = f"{query_class}-{BIND_NS}"
        yield from admin.register_nsm(
            nsm_name=nsm_name,
            query_class=query_class,
            name_service=BIND_NS,
            host_name="june.cs.washington.edu",
            host_context=SRV_CONTEXT,
            program=f"nsm.{nsm_name}",
            suite="sunrpc",
            port=NSM_PORT + offset,
            host_address=str(testbed.june.address),
        )

    def drive():
        # Warm the reader, then subscribe its cache to NOTIFY pushes.
        for query_class in rebinding[:2]:
            yield from reader.nsm_record(f"{query_class}-{BIND_NS}")
        yield from reader.subscribe_invalidation()
        wave = [
            env.process(rebind_one(query_class, offset))
            for offset, query_class in enumerate(rebinding)
        ]
        yield env.all_of(wave)
        yield env.timeout(200.0)
        record = yield from reader.nsm_record(f"HRPCBinding-{BIND_NS}")
        assert record.host_name == "june.cs.washington.edu", record

    env.run(until=env.process(drive()))
    return env


@scenario("mass_renumbering")
def _mass_renumbering_scenario(seed: int) -> Environment:
    """Mass host renumbering under leases: the registrar rewrites every
    NSM-host address, keeps the leases alive a while, then dies — and
    the primary retracts the whole batch when the leases lapse."""
    update = UpdatePolicy(invalidation="lease", lease_ms=2_000.0)
    testbed = build_testbed(seed=seed, update_policy=update)
    env = testbed.env
    env.trace.enabled = True
    store = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    movers = (testbed.fiji, testbed.june, testbed.nsm_host, testbed.hns_host)

    def drive():
        wave = [
            env.process(
                store.register_nsm_host_address(
                    f"{host.name}.cs.washington.edu", f"10.9.0.{10 + index}"
                )
            )
            for index, host in enumerate(movers)
        ]
        yield env.all_of(wave)
        # The renewal loop keeps the new addresses alive...
        yield env.timeout(5_000.0)
        store.stop_lease_renewal()
        # ...until the registrar goes away and the leases lapse.
        yield env.timeout(4_000.0)

    env.run(until=env.process(drive()))
    assert env.stats.counters().get("bind.update.lease_expirations", 0) >= 1
    return env


def build_million_client_zipf(
    seed: int = 0,
    clients: int = 1_000_000,
    contexts: int = 10_000,
    mean_interarrival_ms: float = 0.05,
    lookup_min_ms: float = 5.0,
    lookup_max_ms: float = 40.0,
    ttl_ms: float = 30_000.0,
    sweep_interval_ms: float = 60_000.0,
    zipf_s: float = 1.1,
) -> Environment:
    """The million-client regime: Zipf-distributed context lookups.

    A closed-form model of the load the ROADMAP's north star implies —
    a very large client population resolving names Zipf-distributed
    over contexts, against a shared TTL cache.  It deliberately skips
    the full testbed (no sockets, no servers): the point is the
    *kernel*, and the event mix is exactly the one the timer wheel is
    shaped for — ``delay == 0`` cache hits (immediate deque),
    millisecond-scale lookups (fine wheel), and multi-second TTL sweeps
    (coarse epochs).  ``benchmarks/bench_kernel.py`` runs it at full
    size on both queue back ends; the registered scenario below runs a
    sampled size so determinism quad-runs stay fast.

    Clients arrive at exponential interarrivals and live only as long
    as their one request, so the live-process count stays bounded by
    (arrival rate x lookup time) — a million clients never means a
    million suspended generators.
    """
    from bisect import bisect_left as _bisect_left

    env = Environment(seed=seed)
    stats = env.stats
    requests = stats.counter("sim.mclient.requests")
    hits = stats.counter("sim.mclient.cache_hits")
    misses = stats.counter("sim.mclient.cache_misses")
    evictions = stats.counter("sim.mclient.ttl_evictions")
    # Streaming: a million samples per timer is exactly the memory bloat
    # the streaming mode exists to avoid.
    latency = stats.timer("sim.mclient.latency", streaming=True)
    arrivals = env.rng.stream("mclient.arrivals")
    picks = env.rng.stream("mclient.zipf")
    lookups = env.rng.stream("mclient.lookup")

    # Zipf over context ranks: cumulative weights + bisect per draw.
    cums: typing.List[float] = []
    total = 0.0
    for rank in range(1, contexts + 1):
        total += rank ** -zipf_s
        cums.append(total)

    cache: typing.Dict[int, float] = {}
    state = {"completed": 0}
    done = env.event()

    def client(context_id: int):
        requests.increment()
        expiry = cache.get(context_id)
        if expiry is not None and expiry > env.now:
            hits.increment()
            # Cache hit: zero-delay turnaround (the immediate fast path).
            yield env.timeout(0.0)
            latency.record(0.0)
        else:
            misses.increment()
            start = env.now
            yield env.timeout(lookups.uniform(lookup_min_ms, lookup_max_ms))
            cache[context_id] = env.now + ttl_ms
            latency.record(env.now - start)
        state["completed"] += 1
        if state["completed"] == clients:
            done.succeed(None)

    def sweeper():
        # Periodic TTL sweep: the far-future timeouts land in the
        # wheel's coarse epochs.
        try:
            while True:
                yield env.timeout(sweep_interval_ms)
                now = env.now
                expired = [ctx for ctx, exp in cache.items() if exp <= now]
                for ctx in expired:
                    del cache[ctx]
                evictions.increment(len(expired))
        except Interrupt:
            pass

    def drive():
        sweep_proc = env.process(sweeper(), name="ttl-sweeper")
        expo = arrivals.expovariate
        rate = 1.0 / mean_interarrival_ms
        draw = picks.random
        for _ in range(clients):
            yield env.timeout(expo(rate))
            env.process(client(_bisect_left(cums, draw() * total)))
        yield done
        sweep_proc.interrupt()

    env.run(until=env.process(drive(), name="mclient-driver"))
    return env


@scenario("million_client_zipf")
def _million_client_scenario(seed: int) -> Environment:
    """Sampled million-client run for the determinism gate.

    Same builder, scaled down (~2k clients over 256 contexts) so the
    checker's repeated runs stay fast; the full-size version lives in
    ``benchmarks/bench_kernel.py``.  The summary trace record folds the
    hit/miss split into the digest alongside the counters.
    """
    env = build_million_client_zipf(
        seed=seed,
        clients=2_000,
        contexts=256,
        mean_interarrival_ms=0.5,
        ttl_ms=300.0,
        sweep_interval_ms=400.0,
    )
    env.trace.enabled = True
    env.trace.emit(
        "mclient",
        "run complete",
        requests=env.stats.counters()["sim.mclient.requests"],
        hits=env.stats.counters()["sim.mclient.cache_hits"],
        misses=env.stats.counters()["sim.mclient.cache_misses"],
    )
    return env


def iter_scenarios() -> typing.Iterator[typing.Tuple[str, typing.Callable]]:
    """Registered scenarios in a stable order."""
    for name in sorted(SCENARIOS):
        yield name, SCENARIOS[name]


# Ad-hoc discovery scenarios live in their own module; importing it
# registers them.  Bottom import: adhoc.py needs @scenario from here.
from repro.workloads import adhoc as _adhoc  # noqa: E402,F401


def _nsm_port_for(nsm_name: str) -> int:
    """Port the registration assigned to this NSM (see build_testbed)."""
    offsets = {
        f"HRPCBinding-{BIND_NS}": 0,
        f"HostAddress-{BIND_NS}": 1,
        f"MailboxLocation-{BIND_NS}": 2,
        f"FileService-{BIND_NS}": 3,
        f"HRPCBinding-{CH_NS}": 4,
        f"HostAddress-{CH_NS}": 5,
        f"MailboxLocation-{CH_NS}": 6,
        f"FileService-{CH_NS}": 7,
    }
    if nsm_name not in offsets:
        raise KeyError(f"no registered port for NSM {nsm_name!r}")
    return NSM_PORT + offsets[nsm_name]
