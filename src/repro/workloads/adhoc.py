"""Ad-hoc discovery scenarios: churn, partition/heal, and a flash crowd.

A lightweight ad-hoc world — one segment, a handful of beacon-running
hosts, no administered servers at all — drives the first two scenarios;
the flash crowd runs on the full HCS testbed to prove the ad-hoc tier
joins the confederation end to end (registered in the meta zone,
located by ``HNS.find_nsm``, called through ``NsmStub``).

``drive_churn`` is the shared workload body: the registered
``adhoc_churn`` scenario runs it small for the determinism gate, and
``repro.harness.grids.run_discovery`` runs it across the churn-rate ×
beacon-period × watchdog grid for the benchmark.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.names import HNSName
from repro.discovery import BeaconService, DiscoveryNsm
from repro.discovery.nsm import ADHOC_NS
from repro.net import DatagramTransport, Internetwork
from repro.net.host import Host
from repro.resolution import DEFAULT_DISCOVERY_POLICY, DiscoveryPolicy
from repro.sim import ConstantLatency, Environment
from repro.workloads.scenarios import SRV_CONTEXT, scenario, build_testbed

#: the context ad-hoc names resolve under (maps to the ``adhoc`` service)
ADHOC_CONTEXT = "adhoc"


@dataclasses.dataclass
class AdhocWorld:
    """One segment of beacon-running hosts and nothing else."""

    env: Environment
    internet: Internetwork
    udp: DatagramTransport
    hosts: typing.List[Host]
    beacons: typing.List[BeaconService]

    @property
    def segment(self):
        return self.internet.segments[0]


def build_adhoc_world(
    seed: int,
    policy: DiscoveryPolicy = DEFAULT_DISCOVERY_POLICY,
    host_count: int = 6,
) -> AdhocWorld:
    """A segment where every host runs a :class:`BeaconService`."""
    env = Environment(seed=seed)
    internet = Internetwork(env)
    segment = internet.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [internet.add_host(f"adhoc{i}", segment) for i in range(host_count)]
    udp = DatagramTransport(internet)
    beacons = [BeaconService(host, udp, policy) for host in hosts]
    return AdhocWorld(
        env=env, internet=internet, udp=udp, hosts=hosts, beacons=beacons
    )


# ----------------------------------------------------------------------
# The shared churn workload
# ----------------------------------------------------------------------
def drive_churn(
    world: AdhocWorld,
    owners: int = 3,
    duration_ms: float = 20_000.0,
    churn_interval_ms: float = 6_000.0,
    down_ms: float = 4_000.0,
    query_interval_ms: float = 400.0,
) -> typing.Dict[str, float]:
    """Hosts vanish silently and return; a client keeps resolving.

    Hosts 1..``owners`` each announce one name; a churn process crashes
    them round-robin (silently — no retraction) and restarts them with
    a bumped incarnation after ``down_ms``.  Host 0 resolves every name
    every ``query_interval_ms`` through a :class:`DiscoveryNsm` and the
    query log is scored post-hoc:

    - ``staleness_after_vanish_ms``: per vanish event, how long queries
      kept serving the dead binding (the metric liveness eviction buys).
    - ``stale_serves``: total queries answered with a dead owner.
    - ``p99_ms`` / ``availability``: resolution tail and the fraction
      of queries with a correct outcome (a served live binding, or a
      miss while the owner really was down).
    """
    env = world.env
    assert owners <= len(world.hosts) - 1, "need a non-owner client host"
    names = [f"svc-{i}" for i in range(owners)]
    for i, name in enumerate(names):
        world.beacons[1 + i].announce(name, 9_000 + i)
    nsm = DiscoveryNsm(world.beacons[0])
    rng = env.rng.stream("adhoc.churn")
    # (time, name, served_owner or None, latency_ms) per query
    log: typing.List[typing.Tuple[float, str, typing.Optional[str], float]] = []
    # name -> list of (vanish_at, recover_at)
    outages: typing.Dict[str, typing.List[typing.List[float]]] = {
        name: [] for name in names
    }

    # Warm every view: a few beacon periods is plenty.
    warm_ms = 3.0 * world.beacons[0].policy.beacon_period_ms + 100.0

    def churner() -> typing.Generator:
        index = 0
        while env.now < warm_ms + duration_ms - down_ms:
            yield env.timeout(churn_interval_ms * (0.75 + 0.5 * rng.random()))
            victim = 1 + (index % owners)
            index += 1
            host, beacon = world.hosts[victim], world.beacons[victim]
            name = names[victim - 1]
            outages[name].append([env.now, float("inf")])
            host.crash()  # silent: no retraction reaches the segment
            yield env.timeout(down_ms)
            host.restart()
            beacon.restart()  # incarnation bump reconciles the views
            outages[name][-1][1] = env.now

    def querier() -> typing.Generator:
        while env.now < warm_ms + duration_ms:
            for name in names:
                t0 = env.now
                try:
                    result = yield from nsm.query(
                        HNSName(ADHOC_CONTEXT, name)
                    )
                except LookupError:
                    log.append((t0, name, None, env.now - t0))
                else:
                    log.append(
                        (t0, name, str(result.value["owner"]), env.now - t0)
                    )
            yield env.timeout(query_interval_ms)

    def drive() -> typing.Generator:
        yield env.timeout(warm_ms)
        churn = env.process(churner(), name="adhoc.churner")
        query = env.process(querier(), name="adhoc.querier")
        yield env.all_of([churn, query])

    env.run(until=env.process(drive(), name="adhoc.driver"))

    # ---- post-hoc scoring -------------------------------------------------
    def down_during(name: str, at: float) -> bool:
        return any(start <= at < end for start, end in outages[name])

    owner_of = {name: world.hosts[1 + i].name for i, name in enumerate(names)}
    stale = good = 0
    for at, name, served, _latency in log:
        is_down = down_during(name, at)
        if served is None:
            good += 0 if not is_down else 1
        elif is_down and served == owner_of[name]:
            stale += 1
        else:
            good += 1
    staleness: typing.List[float] = []
    for name, spans in outages.items():
        for start, end in spans:
            window = [q for q in log if q[1] == name and start <= q[0] < end]
            fresh = [q for q in window if q[2] != owner_of[name]]
            if fresh:
                staleness.append(fresh[0][0] - start)
            elif window:
                # Served stale for the whole outage.
                staleness.append(end - start)
    latencies = [q[3] for q in log]
    from repro.harness.grids import percentile

    env.stats.counter("discovery.churn_queries").increment(len(log))
    return {
        "queries": float(len(log)),
        "vanish_events": float(sum(len(s) for s in outages.values())),
        "stale_serves": float(stale),
        "staleness_after_vanish_ms": (
            sum(staleness) / len(staleness) if staleness else 0.0
        ),
        "p99_ms": percentile(latencies, 99),
        "availability": good / max(1, len(log)),
    }


# ----------------------------------------------------------------------
# Registered scenarios
# ----------------------------------------------------------------------
@scenario("adhoc_churn")
def _adhoc_churn_scenario(seed: int) -> Environment:
    """Silent host churn under liveness watchdogs, sized for the gate."""
    world = build_adhoc_world(
        seed,
        policy=DiscoveryPolicy(
            beacon_period_ms=500.0,
            entry_ttl_ms=10_000.0,
            watchdog_multiplier=3.0,
        ),
        host_count=5,
    )
    env = world.env
    env.trace.enabled = True
    metrics = drive_churn(
        world,
        owners=2,
        duration_ms=12_000.0,
        churn_interval_ms=4_000.0,
        down_ms=3_000.0,
        query_interval_ms=500.0,
    )
    assert metrics["vanish_events"] >= 1
    assert env.stats.counters().get("discovery.evictions", 0) >= 1
    env.trace.emit(
        "adhoc",
        "churn complete",
        queries=int(metrics["queries"]),
        stale_serves=int(metrics["stale_serves"]),
        evictions=env.stats.counters().get("discovery.evictions", 0),
    )
    return env


@scenario("adhoc_partition_heal")
def _adhoc_partition_heal_scenario(seed: int) -> Environment:
    """Split the segment, let the views diverge, heal, reconcile.

    The assertion of record: after heal, *every* host's membership
    digest is identical — the incarnation-numbered beacons reconcile
    both sides without any administered authority.  The digest goes
    into the trace, so determinism quad-runs pin it too.
    """
    world = build_adhoc_world(
        seed,
        policy=DiscoveryPolicy(
            beacon_period_ms=500.0,
            entry_ttl_ms=30_000.0,
            watchdog_multiplier=3.0,
        ),
        host_count=6,
    )
    env = world.env
    env.trace.enabled = True
    left, right = world.hosts[:3], world.hosts[3:]
    world.beacons[1].announce("editor", 9_001)
    world.beacons[4].announce("printer", 9_004)

    def digests(hosts: typing.Sequence[Host]) -> typing.Set[str]:
        index = {h.name: i for i, h in enumerate(world.hosts)}
        return {
            world.beacons[index[h.name]].cache.membership_digest()
            for h in hosts
        }

    def drive() -> typing.Generator:
        yield env.timeout(3_000.0)  # converge whole
        assert len(digests(world.hosts)) == 1, "views never converged"
        world.segment.partition(left, right)
        # Both names keep beaconing; each side evicts the other's.
        yield env.timeout(6_000.0)
        split_left, split_right = digests(left), digests(right)
        assert len(split_left) == 1 and len(split_right) == 1
        assert split_left != split_right, "partition did not diverge views"
        world.segment.heal()
        yield env.timeout(6_000.0)

    env.run(until=env.process(drive(), name="adhoc.partition_driver"))
    healed = digests(world.hosts)
    assert len(healed) == 1, f"views did not reconcile after heal: {healed}"
    env.trace.emit(
        "adhoc",
        "partition healed",
        membership_digest=next(iter(healed)),
        partition_drops=env.stats.counters().get("net.partition.drops", 0),
    )
    return env


@scenario("adhoc_flash_crowd")
def _adhoc_flash_crowd_scenario(seed: int) -> Environment:
    """The ad-hoc tier joins the confederation, then takes a stampede.

    The full testbed registers the ``adhoc`` name service (a new kind)
    and a linked-in-only ``AdHocService`` NSM (port 0) in the meta
    zone; ``HNS.find_nsm`` hands back a local binding and ``NsmStub``
    dispatches unchanged.  Eight concurrent clients then resolve the
    same freshly announced name — the single-flight coalescer keeps the
    stampede to one native resolution.
    """
    from repro.core.admin import HnsAdministrator
    from repro.core.nsm import NsmStub
    from repro.resolution import FastPathPolicy

    testbed = build_testbed(seed=seed)
    env = testbed.env
    env.trace.enabled = True
    policy = DiscoveryPolicy(beacon_period_ms=500.0, watchdog_multiplier=3.0)
    client_beacon = BeaconService(testbed.client, testbed.udp, policy)
    june_beacon = BeaconService(testbed.june, testbed.udp, policy)
    june_beacon.announce("buildcache", 9_100)

    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))
    nsm = DiscoveryNsm(client_beacon, fast_path=FastPathPolicy())

    def register() -> typing.Generator:
        yield from admin.register_name_service(
            ADHOC_NS, "adhoc", testbed.client.name, 0
        )
        yield from admin.register_context(ADHOC_CONTEXT, ADHOC_NS)
        yield from admin.register_nsm(
            nsm_name=nsm.name,
            query_class="AdHocService",
            name_service=ADHOC_NS,
            host_name=f"{testbed.client.name}.cs.washington.edu",
            host_context=SRV_CONTEXT,
            program=f"nsm.{nsm.name}",
            suite="sunrpc",
            port=0,  # linked-in only: FindNSM returns a local binding
        )

    env.run(until=env.process(register()))
    hns = testbed.make_hns(testbed.client)
    hns.link_local_nsm(nsm)
    stub = NsmStub(testbed.client)
    stub.link_local(nsm)
    name = HNSName(ADHOC_CONTEXT, "buildcache")
    results: typing.List[object] = []

    def one_client() -> typing.Generator:
        binding = yield from hns.find_nsm(name, "AdHocService")
        result = yield from stub.call(binding, name)
        results.append(result)

    def drive() -> typing.Generator:
        yield env.timeout(2_000.0)  # let the beacons seed the view
        crowd = [env.process(one_client()) for _ in range(8)]
        yield env.all_of(crowd)

    env.run(until=env.process(drive(), name="adhoc.flash_driver"))
    assert len(results) == 8
    assert all(r.value["owner"] == testbed.june.name for r in results)  # type: ignore[attr-defined]
    natives = env.stats.counters().get(f"nsm.{nsm.name}.native_queries", 0)
    env.trace.emit(
        "adhoc",
        "flash crowd resolved",
        crowd=len(results),
        native_queries=natives,
    )
    return env
