"""Query-stream generation with locality of reference."""

from __future__ import annotations

import dataclasses
import typing

from repro.core.names import HNSName
from repro.sim.kernel import Environment
from repro.workloads.zipf import ZipfDistribution


@dataclasses.dataclass(frozen=True)
class QueryEvent:
    """One generated query."""

    at_ms: float
    hns_name: HNSName
    query_class: str
    params: typing.Mapping[str, object]


class QueryWorkload:
    """Generates query streams over a population of names.

    ``population`` is a list of (HNSName, query_class, params) tuples;
    queries are drawn Zipf-distributed over it (rank = list position),
    with exponential inter-arrival times.
    """

    def __init__(
        self,
        env: Environment,
        population: typing.Sequence[
            typing.Tuple[HNSName, str, typing.Mapping[str, object]]
        ],
        mean_interarrival_ms: float = 1000.0,
        zipf_s: float = 1.0,
        stream: str = "workload",
    ):
        if not population:
            raise ValueError("workload needs a non-empty population")
        if mean_interarrival_ms <= 0:
            raise ValueError("mean inter-arrival must be positive")
        self.env = env
        self.population = list(population)
        self.mean_interarrival_ms = mean_interarrival_ms
        self.zipf = ZipfDistribution(len(population), zipf_s)
        self.rng = env.rng.stream(stream)

    def generate(self, count: int) -> typing.List[QueryEvent]:
        """A deterministic list of ``count`` queries starting at now."""
        if count < 0:
            raise ValueError("count must be non-negative")
        at = self.env.now
        events = []
        for _ in range(count):
            at += self.rng.expovariate(1.0 / self.mean_interarrival_ms)
            name, query_class, params = self.population[self.zipf.sample(self.rng)]
            events.append(QueryEvent(at, name, query_class, dict(params)))
        return events

    def unique_fraction(self, events: typing.Sequence[QueryEvent]) -> float:
        """Fraction of distinct (name, query class) pairs: cold misses."""
        if not events:
            return 0.0
        distinct = {(str(e.hns_name), e.query_class) for e in events}
        return len(distinct) / len(events)
