"""Zipf-distributed choice, for locality-of-reference workloads.

The paper's caching scheme is "based on locality of reference to query
class and name system type"; the workload generator uses a Zipf
distribution over names/contexts to model that locality.
"""

from __future__ import annotations

import bisect
import random
import typing


class ZipfDistribution:
    """Ranks 1..n with probability proportional to 1/rank^s."""

    def __init__(self, n: int, s: float = 1.0):
        if n < 1:
            raise ValueError("need at least one rank")
        if s < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.s = s
        weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        self._cumulative: typing.List[float] = []
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> int:
        """A rank in [0, n), 0 being the most popular."""
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        return min(index, self.n - 1)

    def probability(self, rank: int) -> float:
        """P(rank), rank in [0, n)."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank out of range: {rank}")
        prev = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - prev

    def choose(self, rng: random.Random, items: typing.Sequence) -> object:
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        return items[self.sample(rng)]
