"""Calibrated component costs (all in simulated milliseconds).

Every constant here is fit to a measurement the paper itself reports;
the comments give the provenance.  The *structure* of the simulation
(how many lookups, remote calls, marshalling passes each design incurs)
is what reproduces the paper's tradeoffs; these constants only anchor
the axes to 1987 MicroVAX-II/Ethernet magnitudes.

Provenance summary
------------------
- Table 3.2 row "1 RR"/"6 RR": demarshalled cache hit 0.83/1.22 ms,
  marshalled hit 11.11/26.17 ms, miss 20.23/32.34 ms.  Fit exactly by
  ``CACHE_PROBE_MS`` + ``CACHE_COPY_*`` + the generated-marshaller op
  costs (see :mod:`repro.serial.generated`), and within ±8 % for the
  miss row (the paper's own miss deltas are non-monotone in size, which
  no cost model with non-negative components can fit exactly).
- "a BIND name to address lookup takes 27 msec": conventional resolver
  against ``PUBLIC_BIND_LOOKUP_MS`` with hand-coded marshalling.
- "a Clearinghouse name to address lookup takes 156 msec": per-access
  authentication (disk-resident credentials) plus disk-resident data.
- Table 3.1 row 1 (460/180/104 ms): emerges from 5 meta lookups + 1
  native lookup on a miss, ``HRPC_META_CALL_MS`` per meta lookup, the
  NSM's native work on an NSM miss, and ``IMPORT_FIXED_MS``.
- Table 3.1 rows 2-5: each non-colocated boundary adds one
  ``HRPC_INTERPROC_CALL_MS`` remote call (the table's own single-call
  deltas are 43-57 ms; we use their midpoint).
- "The actual preload cost was measured to be about 390 msec" for ~2 KB
  of meta information, via the BIND zone transfer mechanism.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Calibration:
    """One coherent set of cost constants; override fields for ablations."""

    # ------------------------------------------------------------------
    # Network (one Ethernet segment, light load)
    # ------------------------------------------------------------------
    #: propagation + protocol-stack cost per message
    wire_base_ms: float = 1.0
    #: 10 Mbit/s-ish transfer cost
    wire_per_byte_ms: float = 0.0008

    # ------------------------------------------------------------------
    # BIND servers
    # ------------------------------------------------------------------
    #: the modified meta-BIND: small in-memory zone, dedicated server
    meta_bind_lookup_ms: float = 4.8
    #: the public BIND serving real naming data (fit: 27 ms end-to-end
    #: conventional lookup = request marshal 0.46 + wire ~2.1 + this +
    #: server response marshal 0.65 + client demarshal 0.65)
    public_bind_lookup_ms: float = 23.12
    #: server-side cost per record streamed during a zone transfer
    xfer_per_record_ms: float = 6.0
    #: fixed server cost to start a zone transfer
    xfer_setup_ms: float = 20.0
    #: client-side cost to install one transferred record in the cache
    #: (demarshal through the generated path + insert)
    xfer_install_per_record_ms: float = 9.7

    # ------------------------------------------------------------------
    # Clearinghouse (fit: 156 ms end-to-end lookup; "each access is
    # authenticated, and virtually all data is retrieved from disk")
    # ------------------------------------------------------------------
    #: CPU cost of verifying credentials
    ch_auth_cpu_ms: float = 38.0
    #: disk access for the credential database
    ch_auth_disk_ms: float = 30.0
    #: disk access for the property data itself
    ch_data_disk_ms: float = 30.0
    #: server-side request processing
    ch_process_ms: float = 52.0

    # ------------------------------------------------------------------
    # Resolver cache (Table 3.2, fit exactly)
    # ------------------------------------------------------------------
    #: hash probe to find/miss an entry
    cache_probe_ms: float = 0.2
    #: copying a cached (demarshalled) result into caller structures
    cache_copy_base_ms: float = 0.552
    cache_copy_per_record_ms: float = 0.078
    #: inserting a new entry after a miss
    cache_insert_ms: float = 0.5
    #: hand-coded request marshalling (fixed-shape query)
    request_marshal_ms: float = 0.3

    # ------------------------------------------------------------------
    # HRPC call overheads (beyond marshalling and wire time)
    # ------------------------------------------------------------------
    #: the HNS library's Raw-HRPC call to the meta-BIND server: control
    #: protocol + dispatch, per call (the paper estimates C(remote call)
    #: at 33 ms; each meta mapping "involves a remote call").  Equals
    #: the "raw" protocol suite's client+server control CPU.
    hrpc_meta_call_ms: float = 32.16
    #: a full inter-process HRPC call (client->HNS, client->NSM,
    #: client->agent); fit to Table 3.1's colocation deltas
    hrpc_interproc_call_ms: float = 43.0
    #: cost of a local (linked-in) call: "effectively zero"
    local_call_ms: float = 0.0

    # ------------------------------------------------------------------
    # HNS internals
    # ------------------------------------------------------------------
    #: FindNSM bookkeeping outside the six mappings
    hns_fixed_ms: float = 2.0
    #: per-mapping demarshalled cache hit (Table 3.2, 1-record entries)
    #: = cache_probe + cache_copy_base + cache_copy_per_record
    # (derived; kept for documentation)

    # ------------------------------------------------------------------
    # NSM work (HRPC-binding query class)
    # ------------------------------------------------------------------
    #: translating the individual name to the local name
    nsm_translate_ms: float = 1.2
    #: Sun portmapper exchange: wire + server + marshalling, per exchange
    portmapper_server_ms: float = 8.0
    #: number of binding-protocol exchanges (getport + liveness check)
    portmapper_exchanges: int = 2
    #: Courier binding agent exchange cost (slower; Courier runs on the
    #: Xerox D-machines)
    courier_binder_server_ms: float = 14.0
    #: assembling/standardising the returned Binding structure
    nsm_standardize_ms: float = 30.1
    #: NSM-side cached-binding revalidation (NSM cache hit)
    nsm_cache_hit_extra_ms: float = 2.17

    # ------------------------------------------------------------------
    # HRPC import machinery (fit: Table 3.1 row 1 column C = 104 ms)
    # ------------------------------------------------------------------
    #: fixed cost of Import: component selection, stub setup, final
    #: marshalling of the Binding back to the caller
    import_fixed_ms: float = 94.0

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    #: interim scheme: reading the replicated local binding file
    #: ("Binding using this scheme took 200 msec." = import machinery
    #: 94 + disk ~32 + this parse/validate cost + glue 10)
    localfile_read_disk_ms: float = 30.0
    localfile_parse_ms: float = 63.9
    #: reregistration-into-Clearinghouse scheme glue
    #: ("we found that binding took 166 msec")
    rereg_glue_ms: float = 10.0

    # ------------------------------------------------------------------
    # Meta-record sizes (drive marshalling costs and preload volume)
    # ------------------------------------------------------------------
    #: TTL applied to meta records (ms); "data changes slowly over time"
    meta_ttl_ms: float = 3_600_000.0

    def derived_cache_hit_ms(self, records: int = 1) -> float:
        """Demarshalled cache hit cost for an entry of ``records`` RRs."""
        return (
            self.cache_probe_ms
            + self.cache_copy_base_ms
            + self.cache_copy_per_record_ms * records
        )


#: The calibration used by all benchmarks unless overridden.
DEFAULT_CALIBRATION = Calibration()
