"""Paper-vs-measured table formatting for the benchmark harness."""

from __future__ import annotations

import dataclasses
import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclasses.dataclass
class ComparisonRow:
    """One paper-vs-measured row."""
    label: str
    paper: float
    measured: float

    @property
    def deviation_pct(self) -> float:
        if self.paper == 0:
            return 0.0
        return 100.0 * (self.measured - self.paper) / self.paper


class ComparisonTable:
    """Collects (label, paper value, measured value) rows and renders them.

    Used by every benchmark to print the same rows the paper reports
    next to what this reproduction measures, with percentage deviation.
    """

    def __init__(self, title: str, unit: str = "msec"):
        self.title = title
        self.unit = unit
        self.rows: typing.List[ComparisonRow] = []

    def add(self, label: str, paper: float, measured: float) -> ComparisonRow:
        row = ComparisonRow(label, paper, measured)
        self.rows.append(row)
        return row

    def max_abs_deviation_pct(self) -> float:
        if not self.rows:
            return 0.0
        return max(abs(r.deviation_pct) for r in self.rows)

    def render(self) -> str:
        return format_table(
            ["quantity", f"paper ({self.unit})", f"measured ({self.unit})", "dev %"],
            [
                (
                    r.label,
                    f"{r.paper:.2f}",
                    f"{r.measured:.2f}",
                    f"{r.deviation_pct:+.1f}",
                )
                for r in self.rows
            ],
            title=f"== {self.title} ==",
        )

    def check(self, tolerance_pct: float) -> None:
        """Raise AssertionError if any row deviates more than tolerance."""
        for row in self.rows:
            if abs(row.deviation_pct) > tolerance_pct:
                raise AssertionError(
                    f"{self.title}: {row.label} deviates {row.deviation_pct:+.1f}% "
                    f"(paper {row.paper}, measured {row.measured:.2f}, "
                    f"tolerance {tolerance_pct}%)"
                )
