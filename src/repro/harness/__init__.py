"""Benchmark harness: calibration constants, experiment runner, tables."""

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.harness.tables import ComparisonTable, format_table
from repro.harness.experiment import ExperimentResult, run_simulation

__all__ = [
    "Calibration",
    "ComparisonTable",
    "DEFAULT_CALIBRATION",
    "ExperimentResult",
    "format_table",
    "run_simulation",
]
