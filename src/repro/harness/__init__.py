"""Benchmark harness: calibration, tables, and the parallel ablation engine."""

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.harness.tables import ComparisonTable, format_table
from repro.harness.experiment import ExperimentResult, run_simulation
from repro.harness.ablation import (
    AblationStudy,
    GridDef,
    Knob,
    RunResult,
    RunSpec,
    SCHEMA_VERSION,
    strip_wall_clock,
    study_payload,
)

__all__ = [
    "AblationStudy",
    "Calibration",
    "ComparisonTable",
    "DEFAULT_CALIBRATION",
    "ExperimentResult",
    "GridDef",
    "Knob",
    "RunResult",
    "RunSpec",
    "SCHEMA_VERSION",
    "format_table",
    "run_simulation",
    "strip_wall_clock",
    "study_payload",
]
