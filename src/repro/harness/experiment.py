"""Small helpers for running one simulated experiment."""

from __future__ import annotations

import dataclasses
import typing

from repro.sim import Environment


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of one simulated run."""

    value: object
    elapsed_ms: float
    env: Environment

    @property
    def counters(self) -> typing.Dict[str, int]:
        return self.env.stats.counters()


def run_simulation(
    builder: typing.Callable[[Environment], typing.Generator],
    seed: int = 0,
    env: typing.Optional[Environment] = None,
) -> ExperimentResult:
    """Run ``builder(env)`` as a process to completion.

    ``builder`` receives the environment and returns the generator to
    drive; the result records the process return value and the elapsed
    simulated time.
    """
    env = env or Environment(seed=seed)
    start = env.now
    process = env.process(builder(env))
    value = env.run(until=process)
    return ExperimentResult(value=value, elapsed_ms=env.now - start, env=env)
