"""The registered ablation grids: knobs, runners, and the grid registry.

Each grid pairs a knob registry (the frozen
:class:`~repro.resolution.PolicySet` axes plus scenario parameters like
meta TTL, wire drop, and primary health) with a module-level runner
function a worker process can resolve by dotted path.  The runners are
the workload bodies the hand-rolled benchmarks used to inline —
``benchmarks/bench_fast_path.py``, ``bench_replica_scheduling.py``, and
``bench_update_path.py`` are now thin grid definitions over this
module.

Every runner is deterministic given ``(knobs, seed, smoke)``: it
builds a fresh :class:`~repro.sim.Environment`, drives the scenario in
simulated time, and reports metrics plus the run digest the CI gate
pins.  No runner reads the host clock — wall time is measured by the
engine around the runner, not inside it.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.determinism import run_digest
from repro.bind import BindServer as _BindServer
from repro.core import HNSName
from repro.core.admin import HnsAdministrator
from repro.harness.ablation import GridDef, Knob, RunOutput
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    DiscoveryPolicy,
    FastPathPolicy,
    PolicySet,
    ReplicaPolicy,
    UpdatePolicy,
)
from repro.sim import Environment

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import ProcessGenerator

#: The name every fast-path workload resolves (the paper's testbed host).
FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def percentile(samples: typing.Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of a sample list (NaN if empty)."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    k = (len(ordered) - 1) * (p / 100.0)
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)


def _run(env: Environment, gen: "ProcessGenerator") -> object:
    return env.run(until=env.process(gen))


def _idle(env: Environment, ms: float) -> None:
    """Advance simulated time by ``ms`` alongside whatever is scheduled."""

    def sleeper() -> "ProcessGenerator":
        yield env.timeout(ms)

    _run(env, sleeper())


# ----------------------------------------------------------------------
# Variant tables: knob variant name -> concrete object
# ----------------------------------------------------------------------

#: fast_path knob: every FindNSM mechanism off by itself, plus endpoints.
FAST_PATH_VARIANTS: typing.Dict[str, FastPathPolicy] = {
    "full": FastPathPolicy(),
    "no_coalescing": FastPathPolicy(coalesce=False),
    "no_refresh": FastPathPolicy(refresh_ahead_fraction=0.0),
    "no_batching": FastPathPolicy(batch_meta_lookups=False),
    "disabled": FastPathPolicy.disabled(),
}

#: meta_ttl knob: the ablation TTL vs a TTL long enough that every
#: post-warm lookup is a cache hit (u32 wire field caps "forever").
META_TTL_VARIANTS: typing.Dict[str, typing.Callable[[bool], float]] = {
    "short": lambda smoke: 7_000.0 if smoke else 30_000.0,
    "all_hit": lambda smoke: 3_000_000_000.0,
}

#: drop knob: wire loss on the testbed segment.
DROP_VARIANTS: typing.Dict[str, float] = {"none": 0.0, "p10": 0.10}

#: replica knob: adaptive hedged scheduling vs the prototype's ordered
#: failover.
REPLICA_VARIANTS: typing.Dict[str, typing.Optional[ReplicaPolicy]] = {
    "hedged": ReplicaPolicy(),
    "ordered": ReplicaPolicy.disabled(),
}

#: primary knob: whether the (always-first) replica intermittently
#: stalls past the transport timeout.
PRIMARY_VARIANTS: typing.Dict[str, float] = {"degraded": 0.15, "healthy": 0.0}

#: invalidation knob: how caches learn about a rebinding.
INVALIDATION_VARIANTS: typing.Dict[str, UpdatePolicy] = {
    "notify": UpdatePolicy(invalidation="notify"),
    "lease": UpdatePolicy(invalidation="lease", lease_ms=5_000.0),
    "ttl": UpdatePolicy(invalidation="ttl"),
}

#: churn knob: (mean crash interval ms, outage length ms) per event.
CHURN_VARIANTS: typing.Dict[str, typing.Tuple[float, float]] = {
    "low": (6_000.0, 4_000.0),
    "high": (2_500.0, 1_500.0),
}

#: beacon_period knob: how often each host announces its presence.
BEACON_PERIOD_VARIANTS: typing.Dict[str, float] = {
    "fast": 500.0,
    "slow": 2_000.0,
}

#: watchdog knob: liveness deadline as a multiple of the beacon period;
#: ``ttl_only`` turns the watchdog off so eviction waits for entry TTL.
WATCHDOG_VARIANTS: typing.Dict[str, float] = {"x3": 3.0, "ttl_only": 0.0}


# ----------------------------------------------------------------------
# fast_path grid
# ----------------------------------------------------------------------
def run_fast_path(
    knobs: typing.Mapping[str, str], seed: int, smoke: bool
) -> RunOutput:
    """Zipf closed-loop FindNSM workload under one knob assignment.

    Ported from ``bench_fast_path.test_zipf_latency_distribution``:
    concurrent clients resolve Zipf-distributed contexts against a
    short meta TTL; refresh-ahead keeps the tail at cache-hit cost,
    batching cuts meta queries per find, and the drop knob degrades
    the wire so availability becomes a real metric.
    """
    from repro.workloads import build_testbed
    from repro.workloads.scenarios import BIND_NS

    clients = 8 if smoke else 16
    contexts = 16 if smoke else 32
    duration_ms = 20_000.0 if smoke else 90_000.0
    think_mean_ms = 150.0
    zipf_s = 0.9
    fast_path = FAST_PATH_VARIANTS[knobs["fast_path"]]
    ttl_ms = META_TTL_VARIANTS[knobs["meta_ttl"]](smoke)
    drop = DROP_VARIANTS[knobs["drop"]]

    calibration = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=ttl_ms)
    testbed = build_testbed(seed=seed, calibration=calibration)
    env = testbed.env
    hns = testbed.make_hns(testbed.client, fast_path=fast_path)
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def register_contexts() -> "ProcessGenerator":
        for i in range(contexts):
            yield from admin.register_context(f"zipf-ctx-{i}", BIND_NS)

    _run(env, register_contexts())
    names = [
        HNSName(f"zipf-ctx-{i}", "fiji.cs.washington.edu")
        for i in range(contexts)
    ]
    weights = [1.0 / (i + 1) ** zipf_s for i in range(contexts)]

    def warm() -> "ProcessGenerator":
        for name in names:
            yield from hns.find_nsm(name, "HRPCBinding")

    _run(env, warm())
    # Degrade the wire only after warm-up so every knob assignment
    # measures the same steady state.
    testbed.internet.segments[0].drop_probability = drop
    start_queries = env.stats.counter("bind.meta-bind.queries").value
    rng = env.rng.stream("harness.zipf")
    latencies: typing.List[float] = []
    failures = [0]
    deadline = env.now + duration_ms

    def client_loop() -> "ProcessGenerator":
        while env.now < deadline:
            name = rng.choices(names, weights)[0]
            t0 = env.now
            try:
                yield from hns.find_nsm(name, "HRPCBinding")
            except Exception:
                # Exhausted retries on a degraded wire: an availability
                # miss, not a harness error.
                failures[0] += 1
            else:
                latencies.append(env.now - t0)
            yield env.timeout(rng.expovariate(1.0 / think_mean_ms))

    for _ in range(clients):
        env.process(client_loop())
    _idle(env, duration_ms + 30_000.0)
    queries = env.stats.counter("bind.meta-bind.queries").value - start_queries
    attempts = len(latencies) + failures[0]
    env.stats.counter("harness.fast_path.finds").increment(len(latencies))
    metrics = {
        "finds": float(len(latencies)),
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "meta_queries_per_find": queries / max(1, len(latencies)),
        "availability": len(latencies) / max(1, attempts),
    }
    return RunOutput(metrics=metrics, digest=run_digest(env), sim_ms=env.now)


FAST_PATH_GRID = GridDef(
    name="fast_path",
    knobs=(
        Knob(
            "fast_path",
            baseline="full",
            variants=("no_coalescing", "no_refresh", "no_batching", "disabled"),
        ),
        Knob("meta_ttl", baseline="short", variants=("all_hit",)),
        Knob("drop", baseline="none", variants=("p10",)),
    ),
    runner="repro.harness.grids:run_fast_path",
    seed=33,
    extras=(
        # The steady-state reference the bench compares tails against:
        # prototype resolution against a never-expiring cache.
        (
            "reference",
            (("fast_path", "disabled"), ("meta_ttl", "all_hit")),
        ),
    ),
)


# ----------------------------------------------------------------------
# replica_scheduling grid
# ----------------------------------------------------------------------
def run_replica_scheduling(
    knobs: typing.Mapping[str, str], seed: int, smoke: bool
) -> RunOutput:
    """Closed-loop lookups against a three-replica set.

    Ported from ``bench_replica_scheduling.test_tail_latency_one_
    degraded_replica``: the primary intermittently stalls past the
    transport timeout (the ``primary`` knob), and the ``replica`` knob
    swaps hedged adaptive scheduling against the prototype's ordered
    failover.
    """
    from repro.bind import BindResolver, BindServer, ResourceRecord, RRType, Zone
    from repro.net import DatagramTransport, Internetwork
    from repro.sim import ConstantLatency

    lookups = 120 if smoke else 500
    stall_ms = 400.0
    stall_probability = PRIMARY_VARIANTS[knobs["primary"]]
    replica_policy = REPLICA_VARIANTS[knobs["replica"]]
    cal = DEFAULT_CALIBRATION

    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(
        latency=ConstantLatency(cal.wire_base_ms, cal.wire_per_byte_ms)
    )
    client = net.add_host("client", seg)
    hosts = [net.add_host(f"ns{i}", seg) for i in range(3)]

    def make_zone() -> "Zone":
        zone = Zone("hns")
        zone.add(
            ResourceRecord.text_record(
                "a.ctx.hns", "ns=one", rtype=RRType.UNSPEC, ttl=3_600_000
            )
        )
        return zone

    primary = _FlakyBindServer(
        hosts[0],
        zones=[make_zone()],
        lookup_cost_ms=cal.meta_bind_lookup_ms,
        stall_ms=stall_ms,
        stall_probability=stall_probability,
    )
    replicas = [
        BindServer(
            host, zones=[make_zone()], lookup_cost_ms=cal.meta_bind_lookup_ms
        )
        for host in hosts[1:]
    ]
    primary_ep = primary.listen()
    secondary_eps = [replica.listen() for replica in replicas]
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
    resolver = BindResolver(
        client,
        udp,
        primary_ep,
        secondaries=secondary_eps,
        policies=PolicySet(replica=replica_policy),
        name="harness",
    )
    latencies: typing.List[float] = []

    def client_loop() -> "ProcessGenerator":
        for _ in range(lookups):
            start = env.now
            yield from resolver.lookup("a.ctx.hns", RRType.UNSPEC)
            latencies.append(env.now - start)
            yield env.timeout(5.0)

    _run(env, client_loop())
    _idle(env, 2_000.0)  # drain hedge-loser legs
    counters = env.stats.counters()
    metrics = {
        "lookups": float(len(latencies)),
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "max_ms": max(latencies),
        "hedges": float(counters.get("bind.harness.hedges", 0)),
        "failovers": float(counters.get("bind.harness.failovers", 0)),
        "availability": 1.0,
    }
    return RunOutput(metrics=metrics, digest=run_digest(env), sim_ms=env.now)


REPLICA_GRID = GridDef(
    name="replica_scheduling",
    knobs=(
        Knob("replica", baseline="hedged", variants=("ordered",)),
        Knob("primary", baseline="degraded", variants=("healthy",)),
    ),
    runner="repro.harness.grids:run_replica_scheduling",
    seed=61,
)


# ----------------------------------------------------------------------
# update_path grid
# ----------------------------------------------------------------------
def run_update_path(
    knobs: typing.Mapping[str, str], seed: int, smoke: bool
) -> RunOutput:
    """Staleness window after a rebinding, plus a registration storm.

    Ported from ``bench_update_path``: a writer re-registers a context
    under a fleet of warm readers (the ``invalidation`` knob decides
    how fast they notice), then a separate storm phase measures meta
    round trips for an N-writer registration burst with and without
    the batched pipeline (the ``batch`` knob).
    """
    from repro.workloads.scenarios import build_testbed

    readers = 4 if smoke else 8
    poll_ms = 250.0
    storm_size = 16 if smoke else 32
    base_update = INVALIDATION_VARIANTS[knobs["invalidation"]]
    update = dataclasses.replace(base_update, batch=(knobs["batch"] == "on"))
    cal_fast_ttl = dataclasses.replace(
        DEFAULT_CALIBRATION, meta_ttl_ms=60_000.0
    )

    # Phase 1: the staleness window.
    testbed = build_testbed(
        seed=seed, calibration=cal_fast_ttl, update_policy=update
    )
    env = testbed.env
    writer = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    reader_stores = [
        testbed.make_metastore(testbed.client) for _ in range(readers)
    ]
    observed: typing.List[typing.Optional[float]] = [None] * readers
    change_at: typing.Dict[str, float] = {}

    def poller(index: int) -> "ProcessGenerator":
        reader = reader_stores[index]
        while True:
            ns = yield from reader.context_to_name_service("storm")
            if ns == "ns-v2":
                observed[index] = env.now - change_at["t"]
                return
            yield env.timeout(poll_ms)

    def refresh(reader: object) -> "ProcessGenerator":
        ns = yield from reader.context_to_name_service("storm")  # type: ignore[attr-defined]
        assert ns == "ns-v1"

    def drive() -> "ProcessGenerator":
        yield from writer.register_context("storm", "ns-v1")
        for reader in reader_stores:
            yield from refresh(reader)
            if update.notify:
                yield from reader.subscribe_invalidation()
        yield env.timeout(max(0.0, 9_500.0 - env.now))
        # Refresh just before the rebinding so lease-capped TTLs are
        # live when the write lands; pure-TTL refreshes are cache hits.
        yield env.all_of([env.process(refresh(r)) for r in reader_stores])
        yield env.timeout(250.0)
        change_at["t"] = env.now
        yield from writer.register_context("storm", "ns-v2")
        pollers = [env.process(poller(i)) for i in range(readers)]
        yield env.all_of(pollers)

    _run(env, drive())
    staleness = [s for s in observed if s is not None]
    assert len(staleness) == readers

    # Phase 2: the registration storm, in a fresh testbed so phase-1
    # cache state cannot leak into the round-trip count.
    storm_testbed = build_testbed(seed=seed + 1, update_policy=update)
    storm_env = storm_testbed.env
    # The prototype's single-op updates queue long enough at the server
    # to blow the default 1 s call timeout; both arms get the same
    # patient policy so round trips stay the metric, not timeouts.
    patient = dataclasses.replace(
        DEFAULT_RESOLUTION_POLICY,
        call_timeout_ms=30_000.0,
        breaker_threshold=10_000,
    )
    storm_testbed.udp.retry_timeout_ms = 60_000.0
    store = storm_testbed.make_metastore(
        storm_testbed.agent_host,
        policies=PolicySet(resolution=patient, update=update),
    )
    before = storm_env.stats.counters().get("net.udp.delivered", 0)
    storm_started = storm_env.now

    def storm() -> "ProcessGenerator":
        writers = [
            storm_env.process(store.register_context(f"ctx{i}", "BIND-cs"))
            for i in range(storm_size)
        ]
        yield storm_env.all_of(writers)

    _run(storm_env, storm())
    storm_counters = storm_env.stats.counters()
    metrics = {
        "staleness_ms_max": max(staleness),
        "staleness_ms_mean": sum(staleness) / len(staleness),
        "storm_ops": float(storm_size),
        "storm_round_trips": float(
            storm_counters.get("net.udp.delivered", 0) - before
        ),
        "storm_ms": storm_env.now - storm_started,
    }
    digest = f"{run_digest(env)}+{run_digest(storm_env)}"
    return RunOutput(metrics=metrics, digest=digest, sim_ms=env.now)


UPDATE_GRID = GridDef(
    name="update_path",
    knobs=(
        Knob("invalidation", baseline="notify", variants=("lease", "ttl")),
        Knob("batch", baseline="on", variants=("off",)),
    ),
    runner="repro.harness.grids:run_update_path",
    seed=29,
)


# ----------------------------------------------------------------------
# discovery grid
# ----------------------------------------------------------------------
def run_discovery(
    knobs: typing.Mapping[str, str], seed: int, smoke: bool
) -> RunOutput:
    """Ad-hoc names under silent host churn, one run per knob assignment.

    The workload body is :func:`repro.workloads.adhoc.drive_churn`:
    hosts vanish without retracting their names and return with bumped
    incarnations while a client keeps resolving through a
    :class:`~repro.discovery.DiscoveryNsm`.  The ``watchdog`` knob is
    the headline ablation — liveness-driven eviction against waiting
    out the entry TTL — scored by how long dead bindings keep being
    served (``staleness_after_vanish_ms``, ``stale_serves``).
    """
    from repro.workloads.adhoc import build_adhoc_world, drive_churn

    churn_interval_ms, down_ms = CHURN_VARIANTS[knobs["churn"]]
    policy = DiscoveryPolicy(
        beacon_period_ms=BEACON_PERIOD_VARIANTS[knobs["beacon_period"]],
        entry_ttl_ms=10_000.0,
        watchdog_multiplier=WATCHDOG_VARIANTS[knobs["watchdog"]],
    )
    world = build_adhoc_world(seed=seed, policy=policy, host_count=6)
    env = world.env
    metrics = drive_churn(
        world,
        owners=3,
        duration_ms=20_000.0 if smoke else 60_000.0,
        churn_interval_ms=churn_interval_ms,
        down_ms=down_ms,
        query_interval_ms=400.0,
    )
    counters = env.stats.counters()
    metrics["evictions"] = float(counters.get("discovery.evictions", 0))
    metrics["requeries"] = float(counters.get("discovery.requeries", 0))
    return RunOutput(metrics=metrics, digest=run_digest(env), sim_ms=env.now)


DISCOVERY_GRID = GridDef(
    name="discovery",
    knobs=(
        Knob("churn", baseline="low", variants=("high",)),
        Knob("beacon_period", baseline="fast", variants=("slow",)),
        Knob("watchdog", baseline="x3", variants=("ttl_only",)),
    ),
    runner="repro.harness.grids:run_discovery",
    seed=83,
    extras=(
        # The worst case the watchdog exists for: rapid churn with
        # TTL-only eviction, every outage served stale for seconds.
        (
            "high_churn_ttl_only",
            (("churn", "high"), ("watchdog", "ttl_only")),
        ),
    ),
)


# ----------------------------------------------------------------------
# toy grid: the schema exemplar, and the harness's own test subject
# ----------------------------------------------------------------------
def run_toy(
    knobs: typing.Mapping[str, str], seed: int, smoke: bool
) -> RunOutput:
    """A seconds-free miniature scenario for tests, docs, and demos.

    ``ticks`` picks the event count, ``mode`` the delay shape; the
    ``boom`` variant raises on purpose so worker-crash surfacing stays
    covered by a fast tier-1 test.
    """
    ticks = {"few": 5, "many": 50}[knobs["ticks"]]
    mode = knobs["mode"]
    if mode == "boom":
        raise ValueError("injected toy-grid failure (mode=boom)")
    env = Environment(seed=seed)
    rng = env.rng.stream("harness.toy")
    latencies: typing.List[float] = []

    def ticker() -> "ProcessGenerator":
        for _ in range(ticks):
            delay = 10.0 if mode == "steady" else rng.random() * 20.0
            t0 = env.now
            yield env.timeout(delay)
            latencies.append(env.now - t0)
            env.stats.counter("harness.toy.ticks").increment()

    _run(env, ticker())
    metrics = {
        "ticks": float(ticks),
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "sim_ms_total": env.now,
    }
    return RunOutput(metrics=metrics, digest=run_digest(env), sim_ms=env.now)


TOY_GRID = GridDef(
    name="toy",
    knobs=(
        Knob("ticks", baseline="few", variants=("many",)),
        Knob("mode", baseline="steady", variants=("jittered", "boom")),
    ),
    runner="repro.harness.grids:run_toy",
    seed=7,
)


#: Every registered grid, by name.  ``python -m repro.cli bench all``
#: runs the non-toy entries.
GRIDS: typing.Dict[str, GridDef] = {
    grid.name: grid
    for grid in (
        FAST_PATH_GRID,
        REPLICA_GRID,
        UPDATE_GRID,
        DISCOVERY_GRID,
        TOY_GRID,
    )
}

#: The grids the CI perf gate runs and compares against committed
#: baselines (toy is a test subject, not a benchmark).
GATED_GRIDS: typing.Tuple[str, ...] = (
    "fast_path",
    "replica_scheduling",
    "update_path",
    "discovery",
)


class _FlakyBindServer(_BindServer):
    """A BindServer that intermittently stalls past the client timeout."""

    def __init__(
        self,
        *args: typing.Any,
        stall_ms: float = 0.0,
        stall_probability: float = 0.0,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.stall_ms = stall_ms
        self.stall_probability = stall_probability
        self._rng = self.env.rng.stream(f"harness.stall:{self.name}")

    def handle(
        self, datagram: typing.Any, responder: typing.Any
    ) -> typing.Any:
        """Serve one datagram, sometimes after the injected stall."""
        if self.stall_ms and self._rng.random() < self.stall_probability:
            yield self.env.timeout(self.stall_ms)
        yield from super().handle(datagram, responder)
