"""The parallel ablation engine: knob grids, fanned execution, importance.

Every benchmark in this repository asks the same shaped question: with
one mechanism turned off, how much do p50/p99/availability/meta-queries
move against the everything-on baseline?  Tables 3.1 and 3.2 of the
paper are exactly that shape too.  This module makes the shape a
first-class object, following the AblationStudy pattern from
AE-Scientist's ``stage4_ablation`` and the aumai-ablation API:

- a **knob registry** (:class:`Knob`): named axes with a baseline
  variant and ablation variants — the frozen
  :class:`~repro.resolution.PolicySet` axes, ``kernel_impl``, and
  scenario parameters (TTLs, churn, stall probability) all fit;
- **grid expansion** (:meth:`AblationStudy.expand`): one baseline run,
  one run per non-baseline variant of each knob (the one-offs), any
  named extra combinations, and optionally the full cartesian grid;
- **parallel execution** (:meth:`AblationStudy.execute`): runs fan out
  over a ``ProcessPoolExecutor`` — the simulator is deterministic, so
  the runs are embarrassingly parallel — and merge back in expansion
  order, never completion order, so ``--jobs 1`` and ``--jobs N``
  produce byte-identical artifacts (wall-clock fields aside);
- **importance scores** (:meth:`AblationStudy.importance`): per-knob,
  per-metric deltas and ratios against the baseline run.

Results serialize to the ``BENCH_*.json`` schema v2 (see
:data:`SCHEMA_VERSION` and docs/harness.md); the CI perf-regression
gate (:mod:`repro.harness.gate`) consumes that schema.

Specs and results are plain picklable dataclasses; runners are
referenced by dotted path (``"repro.harness.grids:run_fast_path"``)
so a worker process can resolve them by import, never by closure.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import importlib
import itertools
import json
import time
import traceback
import typing
import zlib

#: Version of the BENCH_*.json envelope this module emits.
SCHEMA_VERSION = 2

#: Wall-clock (and execution-environment) fields, excluded from
#: cross-run equality and the regression gate: they measure the host
#: and the job fan-out, not the simulation.
WALL_CLOCK_FIELDS = frozenset(
    {"wall_s", "wall_clock_s", "events_per_sec", "generated_at", "jobs", "cpus"}
)

#: The spec key of the all-baseline run.
BASELINE_KEY = "baseline"


def now_wall() -> float:
    """Host wall-clock seconds.

    The harness is the one place in ``src/repro`` allowed to read the
    host clock: wall time *is* the measured quantity (how long a grid
    takes to execute), never an input to any simulation.  Every other
    module takes time from ``env.now``.  Keeping the read behind this
    helper keeps the hnslint SIM001 suppression to a single line.
    """
    return time.perf_counter()


@dataclasses.dataclass(frozen=True)
class Knob:
    """One ablation axis: a name, its baseline variant, and ablations.

    Variants are plain strings; the grid's runner maps them to concrete
    objects (a :class:`~repro.resolution.FastPathPolicy`, a TTL, a
    ``kernel_impl`` name).  Keeping the registry stringly keeps every
    spec picklable and every artifact JSON-stable.
    """

    name: str
    baseline: str
    variants: typing.Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.baseline in self.variants:
            raise ValueError(
                f"knob {self.name!r}: baseline {self.baseline!r} must not "
                "repeat in variants"
            )
        if len(set(self.variants)) != len(self.variants):
            raise ValueError(f"knob {self.name!r}: duplicate variants")

    @property
    def all_variants(self) -> typing.Tuple[str, ...]:
        """Baseline first, then the ablation variants, in order."""
        return (self.baseline,) + self.variants


@dataclasses.dataclass(frozen=True)
class GridDef:
    """A named ablation grid: knobs, a runner, and base parameters.

    ``runner`` is a dotted path ``"package.module:function"``; the
    function signature is ``(knobs, seed, smoke) -> RunOutput`` where
    ``knobs`` maps every knob name to its variant string for this run.
    ``extras`` are named full assignments beyond the one-off pattern
    (e.g. an all-hit reference config that flips two knobs at once).
    """

    name: str
    knobs: typing.Tuple[Knob, ...]
    runner: str
    seed: int = 0
    extras: typing.Tuple[
        typing.Tuple[str, typing.Tuple[typing.Tuple[str, str], ...]], ...
    ] = ()

    def __post_init__(self) -> None:
        names = [knob.name for knob in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"grid {self.name!r}: duplicate knob names")

    def knob(self, name: str) -> Knob:
        """Look up one knob by name."""
        for knob in self.knobs:
            if knob.name == name:
                return knob
        raise KeyError(name)


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One fully-specified run: grid, knob assignment, seed.

    ``key`` is the stable identity used for ordering, seeding, and
    baseline comparison — never the pool's completion order.
    """

    grid: str
    key: str
    knobs: typing.Tuple[typing.Tuple[str, str], ...]
    runner: str
    seed: int
    smoke: bool

    def knob_dict(self) -> typing.Dict[str, str]:
        """The knob assignment as a plain dict."""
        return dict(self.knobs)


@dataclasses.dataclass
class RunOutput:
    """What a grid runner returns: metrics plus determinism evidence."""

    metrics: typing.Dict[str, float]
    digest: typing.Optional[str] = None
    sim_ms: float = 0.0


@dataclasses.dataclass
class RunResult:
    """Outcome of executing one :class:`RunSpec`.

    ``status`` is ``"ok"`` or ``"error"``; a raising scenario becomes a
    structured error result (with the worker's traceback in ``error``)
    instead of poisoning the pool.
    """

    spec: RunSpec
    status: str
    metrics: typing.Dict[str, float]
    digest: typing.Optional[str]
    sim_ms: float
    wall_s: float
    error: typing.Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run completed without raising."""
        return self.status == "ok"


def derive_seed(base_seed: int, grid: str, key: str) -> int:
    """A per-run seed, stable across job counts and sessions.

    Derived from the spec identity with crc32 (never ``hash()``, which
    is salted per process) so ``--jobs 1`` and ``--jobs N`` hand every
    run the identical seed.
    """
    tag = zlib.crc32(f"{grid}:{key}".encode("utf-8"))
    return (base_seed * 1_000_003 + tag) % 2_147_483_647


def resolve_runner(path: str) -> typing.Callable[..., RunOutput]:
    """Import ``"module:function"`` and return the function."""
    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise ValueError(f"runner path {path!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    return typing.cast(
        typing.Callable[..., RunOutput], getattr(module, func_name)
    )


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion; never raises.

    This is the function worker processes execute: module-level so it
    pickles by reference, and exception-proof so a crashing scenario
    reports a structured failure instead of hanging the pool.
    """
    start = now_wall()
    try:
        runner = resolve_runner(spec.runner)
        output = runner(spec.knob_dict(), spec.seed, spec.smoke)
        return RunResult(
            spec=spec,
            status="ok",
            metrics=dict(output.metrics),
            digest=output.digest,
            sim_ms=output.sim_ms,
            wall_s=now_wall() - start,
        )
    except BaseException:
        return RunResult(
            spec=spec,
            status="error",
            metrics={},
            digest=None,
            sim_ms=0.0,
            wall_s=now_wall() - start,
            error=traceback.format_exc(),
        )


class AblationStudy:
    """Expand a :class:`GridDef` into runs, execute them, score knobs."""

    def __init__(self, grid: GridDef, smoke: bool = False, seed: typing.Optional[int] = None):
        self.grid = grid
        self.smoke = smoke
        self.base_seed = grid.seed if seed is None else seed

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _spec(
        self, key: str, assignment: typing.Mapping[str, str]
    ) -> RunSpec:
        knobs = tuple(
            (knob.name, assignment[knob.name]) for knob in self.grid.knobs
        )
        return RunSpec(
            grid=self.grid.name,
            key=key,
            knobs=knobs,
            runner=self.grid.runner,
            seed=derive_seed(self.base_seed, self.grid.name, key),
            smoke=self.smoke,
        )

    def expand(self, full_grid: bool = False) -> typing.List[RunSpec]:
        """Baseline + one-offs (+ extras, + optionally the full grid).

        Order is deterministic: baseline first, then each knob's
        ablation variants in registry order, then the named extras,
        then (if asked) the cartesian product in lexicographic variant
        order.  Keys never repeat: a cartesian cell that duplicates an
        earlier spec's assignment is skipped.
        """
        baseline = {knob.name: knob.baseline for knob in self.grid.knobs}
        specs = [self._spec(BASELINE_KEY, baseline)]
        seen = {tuple(sorted(baseline.items()))}

        def add(key: str, assignment: typing.Mapping[str, str]) -> None:
            fingerprint = tuple(sorted(assignment.items()))
            if fingerprint in seen:
                return
            seen.add(fingerprint)
            specs.append(self._spec(key, assignment))

        for knob in self.grid.knobs:
            for variant in knob.variants:
                assignment = dict(baseline)
                assignment[knob.name] = variant
                add(f"{knob.name}={variant}", assignment)
        for extra_key, pairs in self.grid.extras:
            assignment = dict(baseline)
            assignment.update(dict(pairs))
            add(extra_key, assignment)
        if full_grid:
            axes = [knob.all_variants for knob in self.grid.knobs]
            for combo in itertools.product(*axes):
                assignment = {
                    knob.name: variant
                    for knob, variant in zip(self.grid.knobs, combo)
                }
                key = ",".join(
                    f"{knob.name}={variant}"
                    for knob, variant in zip(self.grid.knobs, combo)
                )
                add(key, assignment)
        return specs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        specs: typing.Optional[typing.Sequence[RunSpec]] = None,
        jobs: int = 1,
    ) -> typing.List[RunResult]:
        """Run every spec; return results in spec order, not completion.

        ``jobs <= 1`` runs inline (no pool, no pickling).  With a pool,
        a worker that dies outright (not merely raises — that is caught
        in :func:`execute_spec`) surfaces as an error result carrying
        the executor's exception, and the remaining futures still
        drain.
        """
        if specs is None:
            specs = self.expand()
        if jobs <= 1:
            return [execute_spec(spec) for spec in specs]
        by_key: typing.Dict[str, RunResult] = {}
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(execute_spec, spec): spec for spec in specs}
            for future in concurrent.futures.as_completed(futures):
                spec = futures[future]
                try:
                    by_key[spec.key] = future.result()
                except BaseException as exc:
                    by_key[spec.key] = RunResult(
                        spec=spec,
                        status="error",
                        metrics={},
                        digest=None,
                        sim_ms=0.0,
                        wall_s=0.0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
        return [by_key[spec.key] for spec in specs]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def importance(
        self, results: typing.Sequence[RunResult]
    ) -> typing.Dict[str, typing.Dict[str, typing.Dict[str, float]]]:
        """Per-knob importance: metric deltas of each one-off vs baseline.

        Returns ``{one_off_key: {metric: {baseline, value, delta,
        ratio}}}``; ``ratio`` is ``value / baseline`` (0 treated as
        absent).  Only one-off runs (keys of the form ``knob=variant``
        produced by :meth:`expand`) participate; extras and cartesian
        cells are comparison rows, not component scores.
        """
        by_key = {result.spec.key: result for result in results}
        base = by_key.get(BASELINE_KEY)
        if base is None or not base.ok:
            return {}
        one_off_keys = {
            f"{knob.name}={variant}"
            for knob in self.grid.knobs
            for variant in knob.variants
        }
        scores: typing.Dict[str, typing.Dict[str, typing.Dict[str, float]]] = {}
        for key, result in by_key.items():
            if key not in one_off_keys or not result.ok:
                continue
            per_metric: typing.Dict[str, typing.Dict[str, float]] = {}
            for metric, value in sorted(result.metrics.items()):
                if metric not in base.metrics:
                    continue
                baseline_value = float(base.metrics[metric])
                delta = float(value) - baseline_value
                entry = {
                    "baseline": baseline_value,
                    "value": float(value),
                    "delta": delta,
                }
                if baseline_value:
                    entry["ratio"] = float(value) / baseline_value
                per_metric[metric] = entry
            scores[key] = per_metric
        return scores


# ----------------------------------------------------------------------
# Serialization: BENCH_*.json schema v2
# ----------------------------------------------------------------------
def study_payload(
    study: AblationStudy,
    results: typing.Sequence[RunResult],
    jobs: int,
    wall_s: float,
    cpus: typing.Optional[int] = None,
) -> typing.Dict[str, object]:
    """The schema-v2 envelope for one executed study.

    Everything except the :data:`WALL_CLOCK_FIELDS` is a deterministic
    function of (grid, seed, smoke): the jobs-equality test and the CI
    gate both rely on that.
    """
    runs: typing.List[typing.Dict[str, object]] = []
    for result in results:
        row: typing.Dict[str, object] = {
            "key": result.spec.key,
            "knobs": dict(result.spec.knobs),
            "seed": result.spec.seed,
            "status": result.status,
            "digest": result.digest,
            "sim_ms": result.sim_ms,
            "wall_s": result.wall_s,
            "metrics": dict(sorted(result.metrics.items())),
        }
        if result.error is not None:
            row["error"] = result.error.splitlines()[-1]
        runs.append(row)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": f"ablation_{study.grid.name}",
        "grid": study.grid.name,
        "smoke": study.smoke,
        "jobs": jobs,
        "cpus": cpus,
        "wall_s": wall_s,
        "vs_baseline": None,
        "runs": runs,
        "importance": study.importance(results),
    }


def strip_wall_clock(value: object) -> object:
    """A deep copy with every wall-clock field removed.

    This is the equality (and gate-comparison) view of an artifact:
    identical across ``--jobs`` settings and host speeds.
    """
    if isinstance(value, dict):
        return {
            key: strip_wall_clock(item)
            for key, item in value.items()
            if key not in WALL_CLOCK_FIELDS
        }
    if isinstance(value, list):
        return [strip_wall_clock(item) for item in value]
    return value


def dump_payload(payload: typing.Mapping[str, object]) -> str:
    """Canonical JSON serialization for BENCH artifacts."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_payload(path: str, payload: typing.Mapping[str, object]) -> None:
    """Write one artifact to ``path`` in canonical form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_payload(payload))
