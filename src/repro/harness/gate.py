"""The CI perf-regression gate: fresh BENCH artifacts vs committed ones.

``python -m repro.harness.gate --fresh <dir> --baseline <dir>`` loads
every schema-v2 ``BENCH_*.json`` present in *both* directories and
fails (exit 1) when the fresh run regressed:

- any **digest** differs — the simulation took a different trajectory,
  which in a deterministic simulator means behaviour changed;
- any **p99 metric** regressed beyond the tolerance (default 10%,
  ``--p99-tolerance``) — slower tails are the one number every PR in
  this repository exists to push down;
- any **availability** metric dropped beyond the same tolerance;
- a run present in the baseline is **missing** (or now errors) in the
  fresh artifact, or the smoke flags disagree (full-size numbers are
  never compared against smoke numbers).

Wall-clock fields (:data:`~repro.harness.ablation.WALL_CLOCK_FIELDS`)
never participate: they measure the runner host, not the system.
Improvements (faster p99, higher availability) always pass — the gate
is one-sided by design, and refreshing the committed baselines is how
an intentional improvement lands.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import typing

from repro.harness.ablation import SCHEMA_VERSION, WALL_CLOCK_FIELDS


@dataclasses.dataclass(frozen=True)
class Violation:
    """One gate failure: where, what, and the two values."""

    artifact: str
    path: str
    kind: str  # "digest" | "p99" | "availability" | "schema" | "missing"
    message: str

    def render(self) -> str:
        """One human-readable report line."""
        return f"{self.artifact}: [{self.kind}] {self.path}: {self.message}"


def load_artifact(path: pathlib.Path) -> typing.Dict[str, object]:
    """Read one BENCH JSON file; raises ValueError on schema mismatch."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: artifact is not a JSON object")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != {SCHEMA_VERSION} "
            "(re-emit with the current harness)"
        )
    return data


def _numeric_leaves(
    value: object, prefix: str = ""
) -> typing.Iterator[typing.Tuple[str, float]]:
    """Yield (dotted path, number) for every numeric leaf, wall aside."""
    if isinstance(value, dict):
        for key in sorted(value):
            if key in WALL_CLOCK_FIELDS:
                continue
            yield from _numeric_leaves(value[key], f"{prefix}{key}.")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _numeric_leaves(item, f"{prefix}{index}.")
    elif isinstance(value, bool):
        return
    elif isinstance(value, (int, float)):
        yield prefix.rstrip("."), float(value)


def _digest_leaves(
    value: object, prefix: str = ""
) -> typing.Iterator[typing.Tuple[str, str]]:
    """Yield (dotted path, digest string) for every ``digest`` key."""
    if isinstance(value, dict):
        for key in sorted(value):
            child_prefix = f"{prefix}{key}."
            if key == "digest" and isinstance(value[key], str):
                yield child_prefix.rstrip("."), value[key]
            else:
                yield from _digest_leaves(value[key], child_prefix)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _digest_leaves(item, f"{prefix}{index}.")


def _last_segment(path: str) -> str:
    return path.rsplit(".", 1)[-1]


def compare_artifacts(
    name: str,
    fresh: typing.Mapping[str, object],
    baseline: typing.Mapping[str, object],
    p99_tolerance_pct: float = 10.0,
) -> typing.List[Violation]:
    """All gate violations of ``fresh`` against ``baseline``."""
    violations: typing.List[Violation] = []
    if bool(fresh.get("smoke")) != bool(baseline.get("smoke")):
        violations.append(
            Violation(
                name,
                "smoke",
                "schema",
                f"smoke flag mismatch: fresh={fresh.get('smoke')!r} vs "
                f"baseline={baseline.get('smoke')!r} — full-size and smoke "
                "numbers are not comparable",
            )
        )
        return violations

    fresh_digests = dict(_digest_leaves(dict(fresh)))
    for path, expected in _digest_leaves(dict(baseline)):
        actual = fresh_digests.get(path)
        if actual is None:
            violations.append(
                Violation(name, path, "missing", "digest absent in fresh run")
            )
        elif actual != expected:
            violations.append(
                Violation(
                    name,
                    path,
                    "digest",
                    f"trajectory changed: {expected[:12]}… -> {actual[:12]}…",
                )
            )

    fresh_numbers = dict(_numeric_leaves(dict(fresh)))
    tolerance = p99_tolerance_pct / 100.0
    for path, base_value in _numeric_leaves(dict(baseline)):
        segment = _last_segment(path)
        is_p99 = segment.startswith("p99")
        is_availability = segment == "availability"
        if not (is_p99 or is_availability):
            continue
        value = fresh_numbers.get(path)
        if value is None:
            violations.append(
                Violation(
                    name, path, "missing", "metric absent in fresh run"
                )
            )
            continue
        if value != value or base_value != base_value:  # NaN: no samples
            continue
        if is_p99 and value > base_value * (1.0 + tolerance):
            pct = 100.0 * (value - base_value) / base_value if base_value else float("inf")
            violations.append(
                Violation(
                    name,
                    path,
                    "p99",
                    f"regressed {base_value:.3f} -> {value:.3f} "
                    f"(+{pct:.1f}%, tolerance {p99_tolerance_pct:.0f}%)",
                )
            )
        elif is_availability and value < base_value * (1.0 - tolerance):
            violations.append(
                Violation(
                    name,
                    path,
                    "availability",
                    f"dropped {base_value:.4f} -> {value:.4f} "
                    f"(tolerance {p99_tolerance_pct:.0f}%)",
                )
            )
    return violations


def run_gate(
    fresh_dir: pathlib.Path,
    baseline_dir: pathlib.Path,
    p99_tolerance_pct: float = 10.0,
    pattern: str = "BENCH_*.json",
) -> typing.Tuple[typing.List[Violation], typing.List[str]]:
    """Gate every artifact present in both directories.

    Returns ``(violations, compared_names)``.  Artifacts only on one
    side are skipped (the fresh dir holds just what this CI run
    produced); an empty intersection is itself a violation, because a
    gate that compares nothing would silently pass forever.
    """
    violations: typing.List[Violation] = []
    compared: typing.List[str] = []
    fresh_files = {p.name: p for p in sorted(fresh_dir.glob(pattern))}
    baseline_files = {p.name: p for p in sorted(baseline_dir.glob(pattern))}
    for file_name in sorted(fresh_files.keys() & baseline_files.keys()):
        try:
            fresh = load_artifact(fresh_files[file_name])
            baseline = load_artifact(baseline_files[file_name])
        except ValueError as exc:
            violations.append(
                Violation(file_name, "-", "schema", str(exc))
            )
            continue
        compared.append(file_name)
        violations.extend(
            compare_artifacts(file_name, fresh, baseline, p99_tolerance_pct)
        )
    if not compared and not violations:
        violations.append(
            Violation(
                "(gate)",
                "-",
                "schema",
                f"no {pattern} artifacts present in both {fresh_dir} and "
                f"{baseline_dir}; the gate compared nothing",
            )
        )
    return violations, compared


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """CLI entry point; exit 0 iff every compared artifact passes."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.gate",
        description="Compare fresh BENCH_*.json artifacts against committed baselines.",
    )
    parser.add_argument("--fresh", required=True, help="directory with fresh artifacts")
    parser.add_argument(
        "--baseline", required=True, help="directory with committed baselines"
    )
    parser.add_argument(
        "--p99-tolerance",
        type=float,
        default=10.0,
        help="max p99 regression (and availability drop) in percent",
    )
    parser.add_argument(
        "--pattern", default="BENCH_ablation_*.json", help="artifact glob"
    )
    args = parser.parse_args(argv)
    violations, compared = run_gate(
        pathlib.Path(args.fresh),
        pathlib.Path(args.baseline),
        p99_tolerance_pct=args.p99_tolerance,
        pattern=args.pattern,
    )
    for file_name in compared:
        print(f"compared {file_name}")
    if violations:
        print(f"\nperf gate FAILED ({len(violations)} violation(s)):")
        for violation in violations:
            print(f"  {violation.render()}")
        return 1
    print(f"perf gate passed ({len(compared)} artifact(s), no regressions)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
