"""One-command reproduction report.

``python -m repro.harness.report [output.md]`` re-runs the headline
experiments (Tables 3.1 and 3.2, the basic-overhead figures, baselines,
preloading, equation (1)), folds in the committed ablation-grid
artifacts (``BENCH_ablation_*.json``, emitted by ``python -m repro.cli
bench``), and writes a consolidated paper-vs-measured report.  The
pytest benchmarks remain the authoritative, asserted versions; this
module is the convenience front door.
"""

from __future__ import annotations

import json
import pathlib
import sys
import typing

from repro.core import Arrangement, ColocationModel, HNSName
from repro.harness.ablation import SCHEMA_VERSION
from repro.harness.tables import ComparisonTable
from repro.workloads import build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")

PAPER_TABLE_3_1 = {
    Arrangement.ALL_LOCAL: (460.0, 180.0, 104.0),
    Arrangement.AGENT: (517.0, 235.0, 137.0),
    Arrangement.REMOTE_HNS: (515.0, 232.0, 140.0),
    Arrangement.REMOTE_NSMS: (509.0, 225.0, 147.0),
    Arrangement.ALL_REMOTE: (547.0, 261.0, 181.0),
}


def _run(env, gen):
    return env.run(until=env.process(gen))


def _timed(env, gen) -> float:
    start = env.now
    _run(env, gen)
    return env.now - start


def table_3_1(seed: int = 3) -> ComparisonTable:
    """Re-measure all fifteen Table 3.1 cells."""
    table = ComparisonTable("Table 3.1 — HRPC binding by colocation arrangement")
    cells: typing.Dict[Arrangement, typing.Tuple[float, float, float]] = {}
    for arrangement in Arrangement:
        testbed = build_testbed(seed=seed)
        stack = build_stack(testbed, arrangement)
        env = testbed.env

        def one():
            return stack.importer.import_binding("DesiredService", FIJI)

        stack.flush_all_caches()
        a = _timed(env, one())
        stack.flush_nsm_caches()
        b = _timed(env, one())
        c = _timed(env, one())
        cells[arrangement] = (a, b, c)
        for label, paper, measured in zip(
            ("miss", "HNS hit", "both hit"), PAPER_TABLE_3_1[arrangement], (a, b, c)
        ):
            table.add(f"{arrangement.label} / {label}", paper, measured)
    table.cells = cells  # type: ignore[attr-defined]
    return table


def table_3_2(seed: int = 31) -> ComparisonTable:
    """Re-measure the Table 3.2 cache-format grid."""
    from repro.bind import (
        BindResolver,
        CacheFormat,
        ResolverCache,
        ResourceRecord,
        Zone,
    )

    table = ComparisonTable("Table 3.2 — marshalling costs vs cache access speed")
    paper = {1: (20.23, 11.11, 0.83), 6: (32.34, 26.17, 1.22)}
    for records in (1, 6):
        measured = []
        for fmt in (None, CacheFormat.MARSHALLED, CacheFormat.DEMARSHALLED):
            testbed = build_testbed(seed=seed)
            zone = Zone("gw.net")
            for i in range(6):
                zone.add(ResourceRecord.a_record("gateway.gw.net", f"10.0.0.{i + 1}"))
            testbed.public_server.add_zone(zone)
            testbed.public_server.lookup_cost_ms = (
                testbed.calibration.meta_bind_lookup_ms
            )
            env = testbed.env
            cache = ResolverCache(
                env,
                fmt=fmt or CacheFormat.DEMARSHALLED,
                calibration=testbed.calibration,
            )
            resolver = BindResolver(
                testbed.client,
                testbed.udp,
                testbed.public_endpoint,
                marshalling="generated",
                cache=cache,
                calibration=testbed.calibration,
            )
            name = "fiji.cs.washington.edu" if records == 1 else "gateway.gw.net"
            first = _timed(env, resolver.lookup(name))
            second = _timed(env, resolver.lookup(name))
            measured.append(first if fmt is None else second)
        for label, p, m in zip(
            ("miss", "marshalled hit", "demarshalled hit"), paper[records], measured
        ):
            table.add(f"{records} RR / {label}", p, m)
    return table


def headline_figures(seed: int = 41) -> ComparisonTable:
    """Re-measure the prose component costs of Section 3."""
    from repro.bind import BindResolver
    from repro.clearinghouse import ClearinghouseClient
    from repro.workloads.scenarios import CREDENTIALS

    table = ComparisonTable("Headline component costs")
    testbed = build_testbed(seed=seed)
    env = testbed.env
    resolver = BindResolver(
        testbed.client, testbed.udp, testbed.public_endpoint,
        calibration=testbed.calibration,
    )
    table.add(
        "native BIND lookup",
        27.0,
        _timed(env, resolver.lookup_address("fiji.cs.washington.edu")),
    )
    ch = ClearinghouseClient(
        testbed.client, testbed.tcp, testbed.ch_endpoint, CREDENTIALS
    )
    table.add(
        "native Clearinghouse lookup",
        156.0,
        _timed(env, ch.lookup_address("dlion:hcs:uw")),
    )
    hns = testbed.make_hns(testbed.client)
    table.add(
        "FindNSM cold (six mappings)",
        287.7,
        _timed(env, hns.find_nsm(FIJI, "HRPCBinding")),
    )
    table.add(
        "FindNSM cached", 7.0, _timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
    )
    hns2 = testbed.make_hns(testbed.client)
    table.add("cache preload (zone transfer)", 390.0, _timed(env, hns2.preload()))
    return table


def equation_1() -> str:
    """The equation (1) thresholds, rendered."""
    hns = ColocationModel(33, 547, 261)
    nsm = ColocationModel(33, 225, 147)
    return (
        f"equation (1): remote HNS needs q > {100 * hns.q_threshold():.1f}% "
        f"(paper ~11%); remote NSMs need q > {100 * nsm.q_threshold():.1f}% "
        "(paper ~42%)"
    )


#: Metric display order for the ablation tables; anything else a grid
#: reports follows alphabetically.
_ABLATION_METRIC_ORDER = (
    "p50_ms",
    "p99_ms",
    "availability",
    "meta_queries_per_find",
    "staleness_ms_max",
    "storm_round_trips",
)


def _ablation_columns(runs: typing.Sequence[typing.Mapping[str, object]]) -> typing.List[str]:
    present: typing.Set[str] = set()
    for run in runs:
        metrics = run.get("metrics")
        if isinstance(metrics, dict):
            present.update(metrics)
    ordered = [m for m in _ABLATION_METRIC_ORDER if m in present]
    ordered += sorted(present - set(ordered))
    return ordered[:6]


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ablation_tables(directory: typing.Optional[str] = None) -> str:
    """Render every committed ``BENCH_ablation_*.json`` as a table.

    One table per grid artifact: a row per run (baseline first, in the
    engine's expansion order) and, below it, the per-knob importance
    summary (p99 ratio vs baseline).  Artifacts with an unexpected
    schema version are skipped with a note rather than failing the
    report.
    """
    base = pathlib.Path(directory) if directory else pathlib.Path(".")
    sections: typing.List[str] = []
    for path in sorted(base.glob("BENCH_ablation_*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            sections.append(f"({path.name}: unreadable, skipped)")
            continue
        if not isinstance(data, dict) or data.get("schema_version") != SCHEMA_VERSION:
            sections.append(
                f"({path.name}: schema_version != {SCHEMA_VERSION}, skipped)"
            )
            continue
        runs = [r for r in data.get("runs", []) if isinstance(r, dict)]
        shape = "smoke" if data.get("smoke") else "full"
        columns = _ablation_columns(runs)
        lines = [f"== Ablation grid: {data.get('grid', '?')} ({shape}) =="]
        header = ["run"] + columns + ["digest"]
        lines.append(" | ".join(header))
        lines.append("-+-".join("-" * len(h) for h in header))
        for run in runs:
            metrics = run.get("metrics") or {}
            digest = run.get("digest") or ""
            cells = [str(run.get("key", "?"))]
            if run.get("status") == "ok":
                cells += [
                    _fmt_cell(metrics.get(column, "")) for column in columns
                ]
                cells.append(str(digest)[:12])
            else:
                cells += ["ERROR"] * len(columns) + ["-"]
            lines.append(" | ".join(cells))
        importance = data.get("importance")
        importance_lines: typing.List[str] = []
        if isinstance(importance, dict):
            for key in sorted(importance):
                entry = importance[key]
                if not isinstance(entry, dict):
                    continue
                # Lead with the tail metric when the grid reports one,
                # else the grid's dominant headline metric.
                for metric in ("p99_ms", "staleness_ms_max", "storm_round_trips"):
                    score = entry.get(metric)
                    if isinstance(score, dict):
                        break
                else:
                    continue
                ratio = score.get("ratio")
                delta = score.get("delta")
                ratio_text = (
                    f"{ratio:.2f}x" if isinstance(ratio, (int, float)) else "n/a"
                )
                importance_lines.append(
                    f"  {key:<24} {metric} {ratio_text} "
                    f"({delta:+.2f} vs baseline)"
                )
        if importance_lines:
            lines.append("")
            lines.append("knob importance vs baseline:")
            lines.extend(importance_lines)
        sections.append("\n".join(lines))
    if not sections:
        sections.append(
            "(no BENCH_ablation_*.json artifacts found; run "
            "`python -m repro.cli bench all` to generate them)"
        )
    return "\n\n".join(sections)


def generate_report(ablation_dir: typing.Optional[str] = None) -> str:
    """The full report as markdown text."""
    sections = [
        "# HNS reproduction report",
        "",
        "All values in simulated milliseconds; see EXPERIMENTS.md for the "
        "asserted tolerances and the discussion of the paper's own "
        "internal inconsistencies.",
        "",
        "This file is a generated artifact: regenerate it with "
        "`PYTHONPATH=src python -m repro.harness.report RESULTS.md`.  The "
        "ablation tables below read the committed "
        "`BENCH_ablation_*.json` artifacts (emitted by `python -m "
        "repro.cli bench`), which double as the CI perf gate's "
        "baselines (`python -m repro.harness.gate`).",
        "",
        table_3_1().render(),
        "",
        table_3_2().render(),
        "",
        headline_figures().render(),
        "",
        equation_1(),
        "",
        ablation_tables(ablation_dir),
        "",
    ]
    return "\n".join(sections)


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Print the report, or write it to the given path."""
    argv = list(sys.argv[1:] if argv is None else argv)
    report = generate_report()
    if argv:
        with open(argv[0], "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {argv[0]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
