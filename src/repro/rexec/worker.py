"""Remote-computation workers."""

from __future__ import annotations

import hashlib
import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.server import HrpcServer, RpcReply
from repro.net.host import Host

REXEC_PROGRAM = "hcsrexec"
REXEC_PORT = 9650


class RexecError(Exception):
    """Unknown job or malformed payload."""


def _wordcount(payload: bytes) -> object:
    return {"words": len(payload.split()), "bytes": len(payload)}


def _checksum(payload: bytes) -> object:
    return {"sha256": hashlib.sha256(payload).hexdigest()}


def _sort(payload: bytes) -> object:
    lines = payload.decode("utf-8").splitlines()
    return {"sorted": sorted(lines)}


#: job name -> (function, CPU ms per KB of input)
JOB_CATALOGUE: typing.Dict[
    str, typing.Tuple[typing.Callable[[bytes], object], float]
] = {
    "wordcount": (_wordcount, 2.0),
    "checksum": (_checksum, 5.0),
    "sort": (_sort, 8.0),
}


class RexecServer:
    """One compute host's job service (the ``hcsrexec`` HRPC program)."""

    def __init__(
        self,
        host: Host,
        calibration: Calibration = DEFAULT_CALIBRATION,
        port: int = REXEC_PORT,
        jobs: typing.Optional[typing.Mapping[str, typing.Tuple]] = None,
    ):
        self.host = host
        self.env = host.env
        self.calibration = calibration
        self.jobs = dict(jobs if jobs is not None else JOB_CATALOGUE)
        self.completed = 0
        self.server = HrpcServer(host, name=f"rexec@{host.name}")
        program = self.server.program(REXEC_PROGRAM)
        program.procedure("submit", self._submit)
        program.procedure("catalogue", self._catalogue)
        self.endpoint = self.server.listen(port)

    def _submit(self, ctx, job_name: str, payload: bytes):
        job = self.jobs.get(job_name)
        if job is None:
            raise RexecError(f"no job {job_name!r} on {self.host.name}")
        if not isinstance(payload, (bytes, bytearray)):
            raise RexecError("payload must be bytes")
        function, cost_per_kb = job
        # The computation itself, charged to this host's CPU (scaled by
        # its speed factor: heterogeneous hardware runs at its own pace).
        yield from self.host.cpu.compute(
            cost_per_kb * max(1.0, len(payload) / 1024.0)
        )
        result = function(bytes(payload))
        self.completed += 1
        self.env.stats.counter(f"rexec.{self.host.name}.jobs").increment()
        return RpcReply(
            {"host": self.host.name, "result": result},
            result_size_bytes=128,
        )

    def _catalogue(self, ctx):
        yield from self.host.cpu.compute(0.5)
        return RpcReply(sorted(self.jobs), result_size_bytes=64)
