"""Remote-execution client: locate compute hosts through the HNS."""

from __future__ import annotations

import typing

from repro.core.import_call import HrpcImporter
from repro.core.names import HNSName
from repro.hrpc.binding import HRPCBinding
from repro.hrpc.runtime import HrpcRuntime
from repro.net.errors import NetworkError
from repro.net.host import Host
from repro.rexec.worker import REXEC_PROGRAM


class RemoteExecutor:
    """Runs jobs on globally named compute hosts.

    Bindings come from the HNS (via Import), so a compute host may be
    named in any federated name service; the binding cache means the
    location work is paid once per host.
    """

    def __init__(self, host: Host, importer: HrpcImporter, runtime: HrpcRuntime):
        self.host = host
        self.env = host.env
        self.importer = importer
        self.runtime = runtime
        self._bindings: typing.Dict[str, HRPCBinding] = {}

    def _binding_for(self, compute_host: HNSName) -> typing.Generator:
        key = str(compute_host)
        binding = self._bindings.get(key)
        if binding is None:
            binding = yield from self.importer.import_binding(
                REXEC_PROGRAM, compute_host
            )
            self._bindings[key] = binding
        return binding

    def run_on(
        self, compute_host: HNSName, job_name: str, payload: bytes
    ) -> typing.Generator:
        """Run one job on one host; returns {'host', 'result'}."""
        binding = yield from self._binding_for(compute_host)
        self.env.stats.counter("rexec.client.submissions").increment()
        reply = yield from self.runtime.call(
            binding,
            "submit",
            job_name,
            payload,
            arg_size_bytes=64 + len(payload),
            timeout_ms=60_000,
        )
        return typing.cast(dict, reply)

    def run_anywhere(
        self,
        candidates: typing.Sequence[HNSName],
        job_name: str,
        payload: bytes,
    ) -> typing.Generator:
        """Try candidate hosts in order until one accepts the job."""
        if not candidates:
            raise ValueError("need at least one candidate host")
        last_error: typing.Optional[Exception] = None
        for compute_host in candidates:
            try:
                result = yield from self.run_on(compute_host, job_name, payload)
            except NetworkError as err:
                # Dead host: drop the stale binding and move on.
                self._bindings.pop(str(compute_host), None)
                self.env.stats.counter("rexec.client.failovers").increment()
                last_error = err
                continue
            return result
        assert last_error is not None
        raise last_error

    def catalogue(self, compute_host: HNSName) -> typing.Generator:
        binding = yield from self._binding_for(compute_host)
        names = yield from self.runtime.call(binding, "catalogue")
        return typing.cast(typing.List[str], names)
