"""The HCS remote computation service, built on the HNS.

Remote computation is the third of the HCS core network services
("filing, mail, and remote computation").  A :class:`RexecServer` on
each compute host exposes a small catalogue of jobs over HRPC; the
:class:`RemoteExecutor` client locates compute hosts through the HNS
(HRPCBinding query class), submits jobs, and fails over between
candidate hosts — so a job can run on a Sun or a Xerox machine through
the same client code.
"""

from repro.rexec.worker import JOB_CATALOGUE, REXEC_PROGRAM, RexecError, RexecServer
from repro.rexec.client import RemoteExecutor

__all__ = [
    "JOB_CATALOGUE",
    "REXEC_PROGRAM",
    "RemoteExecutor",
    "RexecError",
    "RexecServer",
]
