"""Low-level byte stream reader/writer used by both representations."""

from __future__ import annotations

import struct


class WireError(Exception):
    """Malformed wire data (truncation, bad lengths)."""


class WireWriter:
    """Accumulates bytes; representations decide sizes and alignment."""

    def __init__(self) -> None:
        self._chunks = bytearray()

    def u8(self, value: int) -> None:
        if not 0 <= value < 2**8:
            raise WireError(f"u8 out of range: {value}")
        self._chunks += struct.pack(">B", value)

    def u16(self, value: int) -> None:
        if not 0 <= value < 2**16:
            raise WireError(f"u16 out of range: {value}")
        self._chunks += struct.pack(">H", value)

    def u32(self, value: int) -> None:
        if not 0 <= value < 2**32:
            raise WireError(f"u32 out of range: {value}")
        self._chunks += struct.pack(">I", value)

    def raw(self, data: bytes) -> None:
        self._chunks += data

    def pad_to(self, alignment: int) -> None:
        remainder = len(self._chunks) % alignment
        if remainder:
            self._chunks += b"\x00" * (alignment - remainder)

    def getvalue(self) -> bytes:
        return bytes(self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)


class WireReader:
    """Sequential reader with truncation checks."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def _take(self, count: int) -> bytes:
        if count < 0:
            raise WireError(f"negative read of {count} bytes")
        if self._offset + count > len(self._data):
            raise WireError(
                f"truncated: need {count} bytes at offset {self._offset}, "
                f"only {self.remaining} remain"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def u8(self) -> int:
        return struct.unpack(">B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def skip_to(self, alignment: int) -> None:
        remainder = self._offset % alignment
        if remainder:
            self._take(alignment - remainder)

    def expect_exhausted(self) -> None:
        if self.remaining:
            raise WireError(f"{self.remaining} trailing bytes after decode")
