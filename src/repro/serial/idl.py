"""Interface description language types.

The HRPC prototype described its BIND message format "using our
interface description language, and used the marshalling code generated
by our stub compiler".  This module is that IDL: a small algebra of
types whose values are plain Python objects (ints, bools, str, bytes,
dicts, lists).
"""

from __future__ import annotations

import typing


class IdlError(Exception):
    """A value does not conform to its declared IDL type."""


class IdlType:
    """Base class; subclasses validate Python values against the type."""

    name = "type"

    def validate(self, value: object) -> None:
        """Raise :class:`IdlError` if ``value`` does not fit this type."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<idl {self.describe()}>"


class U32Type(IdlType):
    """Unsigned 32-bit integer."""

    name = "u32"

    def validate(self, value: object) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise IdlError(f"u32 requires int, got {type(value).__name__}")
        if not 0 <= value < 2**32:
            raise IdlError(f"u32 out of range: {value}")


class BoolType(IdlType):
    """Boolean, encoded as a 32-bit 0/1 on the wire."""

    name = "bool"

    def validate(self, value: object) -> None:
        if not isinstance(value, bool):
            raise IdlError(f"bool requires bool, got {type(value).__name__}")


class StringType(IdlType):
    """Length-prefixed character string."""

    name = "string"

    def __init__(self, max_length: int = 65535):
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        self.max_length = max_length

    def validate(self, value: object) -> None:
        if not isinstance(value, str):
            raise IdlError(f"string requires str, got {type(value).__name__}")
        if len(value) > self.max_length:
            raise IdlError(
                f"string of {len(value)} chars exceeds max {self.max_length}"
            )

    def describe(self) -> str:
        return f"string<{self.max_length}>"


class OpaqueType(IdlType):
    """Length-prefixed uninterpreted bytes (BIND resource record data)."""

    name = "opaque"

    def __init__(self, max_length: int = 65535):
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        self.max_length = max_length

    def validate(self, value: object) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise IdlError(f"opaque requires bytes, got {type(value).__name__}")
        if len(value) > self.max_length:
            raise IdlError(
                f"opaque of {len(value)} bytes exceeds max {self.max_length}"
            )

    def describe(self) -> str:
        return f"opaque<{self.max_length}>"


class ArrayType(IdlType):
    """Variable-length array of a single element type."""

    name = "array"

    def __init__(self, element: IdlType, max_length: int = 4096):
        if not isinstance(element, IdlType):
            raise TypeError("array element must be an IdlType")
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        self.element = element
        self.max_length = max_length

    def validate(self, value: object) -> None:
        if not isinstance(value, (list, tuple)):
            raise IdlError(f"array requires list, got {type(value).__name__}")
        if len(value) > self.max_length:
            raise IdlError(
                f"array of {len(value)} elements exceeds max {self.max_length}"
            )
        for i, item in enumerate(value):
            try:
                self.element.validate(item)
            except IdlError as err:
                raise IdlError(f"array[{i}]: {err}") from err

    def describe(self) -> str:
        return f"array<{self.element.describe()}>"


class StructType(IdlType):
    """Record with named, ordered fields; values are dicts."""

    name = "struct"

    def __init__(self, name: str, fields: typing.Sequence[typing.Tuple[str, IdlType]]):
        if not fields:
            raise ValueError("struct needs at least one field")
        seen = set()
        for field_name, field_type in fields:
            if field_name in seen:
                raise ValueError(f"duplicate field {field_name!r}")
            if not isinstance(field_type, IdlType):
                raise TypeError(f"field {field_name!r} is not an IdlType")
            seen.add(field_name)
        self.struct_name = name
        self.fields = list(fields)

    def validate(self, value: object) -> None:
        if not isinstance(value, dict):
            raise IdlError(
                f"struct {self.struct_name} requires dict, got {type(value).__name__}"
            )
        expected = {name for name, _ in self.fields}
        actual = set(value.keys())
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            raise IdlError(
                f"struct {self.struct_name}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        for field_name, field_type in self.fields:
            try:
                field_type.validate(value[field_name])
            except IdlError as err:
                raise IdlError(f"{self.struct_name}.{field_name}: {err}") from err

    def describe(self) -> str:
        inner = ", ".join(f"{n}: {t.describe()}" for n, t in self.fields)
        return f"struct {self.struct_name} {{{inner}}}"


class OptionalType(IdlType):
    """Value-or-absent, encoded as a presence flag (XDR 'pointer')."""

    name = "optional"

    def __init__(self, inner: IdlType):
        if not isinstance(inner, IdlType):
            raise TypeError("optional inner must be an IdlType")
        self.inner = inner

    def validate(self, value: object) -> None:
        if value is None:
            return
        self.inner.validate(value)

    def describe(self) -> str:
        return f"optional<{self.inner.describe()}>"
