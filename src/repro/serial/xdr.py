"""Sun XDR-style data representation.

Everything is encoded in multiples of four bytes, big-endian, with
length-prefixed strings/opaques padded to 4-byte boundaries — the data
representation of Sun RPC, one of the "black boxes" the HRPC runtime
mixes and matches.
"""

from __future__ import annotations

import typing

from repro.serial.idl import (
    ArrayType,
    BoolType,
    IdlError,
    IdlType,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
)
from repro.serial.wire import WireReader, WireWriter


class XdrRepresentation:
    """Encode/decode IDL values in XDR format."""

    name = "xdr"
    alignment = 4

    def encode(self, idl_type: IdlType, value: object) -> bytes:
        idl_type.validate(value)
        writer = WireWriter()
        self._encode(idl_type, value, writer)
        return writer.getvalue()

    def decode(self, idl_type: IdlType, data: bytes) -> object:
        reader = WireReader(data)
        value = self._decode(idl_type, reader)
        reader.expect_exhausted()
        return value

    # ------------------------------------------------------------------
    def _encode(self, idl_type: IdlType, value: object, writer: WireWriter) -> None:
        if isinstance(idl_type, U32Type):
            writer.u32(typing.cast(int, value))
        elif isinstance(idl_type, BoolType):
            writer.u32(1 if value else 0)
        elif isinstance(idl_type, StringType):
            raw = typing.cast(str, value).encode("utf-8")
            writer.u32(len(raw))
            writer.raw(raw)
            writer.pad_to(self.alignment)
        elif isinstance(idl_type, OpaqueType):
            raw = bytes(typing.cast(bytes, value))
            writer.u32(len(raw))
            writer.raw(raw)
            writer.pad_to(self.alignment)
        elif isinstance(idl_type, ArrayType):
            items = typing.cast(list, value)
            writer.u32(len(items))
            for item in items:
                self._encode(idl_type.element, item, writer)
        elif isinstance(idl_type, StructType):
            record = typing.cast(dict, value)
            for field_name, field_type in idl_type.fields:
                self._encode(field_type, record[field_name], writer)
        elif isinstance(idl_type, OptionalType):
            if value is None:
                writer.u32(0)
            else:
                writer.u32(1)
                self._encode(idl_type.inner, value, writer)
        else:
            raise IdlError(f"xdr cannot encode {idl_type!r}")

    def _decode(self, idl_type: IdlType, reader: WireReader) -> object:
        if isinstance(idl_type, U32Type):
            return reader.u32()
        if isinstance(idl_type, BoolType):
            return reader.u32() != 0
        if isinstance(idl_type, StringType):
            length = reader.u32()
            raw = reader.raw(length)
            reader.skip_to(self.alignment)
            return raw.decode("utf-8")
        if isinstance(idl_type, OpaqueType):
            length = reader.u32()
            raw = reader.raw(length)
            reader.skip_to(self.alignment)
            return raw
        if isinstance(idl_type, ArrayType):
            length = reader.u32()
            if length > idl_type.max_length:
                raise IdlError(f"array length {length} exceeds declared max")
            return [self._decode(idl_type.element, reader) for _ in range(length)]
        if isinstance(idl_type, StructType):
            return {
                field_name: self._decode(field_type, reader)
                for field_name, field_type in idl_type.fields
            }
        if isinstance(idl_type, OptionalType):
            present = reader.u32()
            if present == 0:
                return None
            return self._decode(idl_type.inner, reader)
        raise IdlError(f"xdr cannot decode {idl_type!r}")
