"""Data representation substrate: IDL, wire formats, marshallers.

The paper's Table 3.2 hinges on a distinction this package makes
concrete:

- **Hand-coded marshallers** (:mod:`repro.serial.handcoded`) do one pass
  over a buffer with no temporary allocation — the "standard BIND
  library routines" that cost 0.65/2.6 ms for 1/6 resource records.
- **Generated marshallers** (:mod:`repro.serial.compiler` +
  :mod:`repro.serial.generated`) are produced by a stub compiler from an
  IDL description.  They are *correct* but pay for "procedure calls,
  indirect calls to marshalling routines, unnecessary dynamic memory
  allocation, and unnecessary levels of marshalling" — the cost
  accounting counts exactly those operations.

Both produce identical wire bytes for a given representation
(:mod:`repro.serial.xdr` Sun-style or :mod:`repro.serial.courier`
Xerox-style); only the simulated CPU cost differs, which is the whole
point of the paper's cache-format experiment.
"""

from repro.serial.idl import (
    ArrayType,
    BoolType,
    IdlError,
    IdlType,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
)
from repro.serial.wire import WireReader, WireWriter
from repro.serial.xdr import XdrRepresentation
from repro.serial.courier import CourierRepresentation
from repro.serial.handcoded import HandcodedMarshaller
from repro.serial.compiler import StubCompiler
from repro.serial.generated import GeneratedMarshaller, MarshalCost

__all__ = [
    "ArrayType",
    "BoolType",
    "CourierRepresentation",
    "GeneratedMarshaller",
    "HandcodedMarshaller",
    "IdlError",
    "IdlType",
    "MarshalCost",
    "OpaqueType",
    "OptionalType",
    "StringType",
    "StructType",
    "StubCompiler",
    "U32Type",
    "WireReader",
    "WireWriter",
    "XdrRepresentation",
]
