"""Hand-coded marshallers: the cheap path.

These model the "standard BIND library routines (which include the code
to marshal, send/receive, and interpret BIND client-server messages)":
a single tight pass over the buffer with no temporary allocation.  The
simulated cost is a small constant plus a per-byte term, fit so a BIND
lookup response costs 0.65 ms with one resource record and 2.6 ms with
six (the figures the paper quotes for the standard routines).
"""

from __future__ import annotations

import typing

from repro.serial.idl import IdlType
from repro.serial.xdr import XdrRepresentation

#: Fixed cost of one hand-coded marshal/demarshal pass (ms).
HANDCODED_BASE_MS = 0.195
#: Per-byte cost of the single pass (ms/byte).
HANDCODED_PER_BYTE_MS = 0.008125


class HandcodedMarshaller:
    """Direct, single-pass marshalling for one IDL type."""

    style = "handcoded"

    def __init__(
        self,
        idl_type: IdlType,
        representation=None,
        base_ms: float = HANDCODED_BASE_MS,
        per_byte_ms: float = HANDCODED_PER_BYTE_MS,
    ):
        if base_ms < 0 or per_byte_ms < 0:
            raise ValueError("costs must be non-negative")
        self.idl_type = idl_type
        self.representation = representation or XdrRepresentation()
        self.base_ms = base_ms
        self.per_byte_ms = per_byte_ms

    def _cost(self, nbytes: int) -> float:
        return self.base_ms + self.per_byte_ms * nbytes

    def encode(self, value: object) -> typing.Tuple[bytes, float]:
        """Marshal ``value``; returns (wire bytes, simulated cost ms)."""
        data = self.representation.encode(self.idl_type, value)
        return data, self._cost(len(data))

    def decode(self, data: bytes) -> typing.Tuple[object, float]:
        """Demarshal ``data``; returns (value, simulated cost ms)."""
        value = self.representation.decode(self.idl_type, data)
        return value, self._cost(len(data))
