"""The stub compiler: IDL types to marshalling plans.

A :class:`MarshalPlan` is the analogue of the code a 1987 stub compiler
would emit: one small routine per type node, dispatching indirectly to
the routines for its children.  Executing the plan produces real wire
bytes (delegating the byte layout to a representation object) while
counting the operations the paper identified as the overhead of
generated code.

Counting rules (mirrored by the fitted constants in
:class:`~repro.serial.generated.OpCosts`):

- entering any node's routine: **1 procedure call**;
- a parent dispatching to a child routine: **1 indirect call**;
- materialising a container (struct dict, array list) or a fresh
  string/bytes object: **1 dynamic allocation**.
"""

from __future__ import annotations

import typing

from repro.serial.generated import GeneratedMarshaller, MarshalCost, OpCosts, DEFAULT_OP_COSTS
from repro.serial.idl import (
    ArrayType,
    BoolType,
    IdlError,
    IdlType,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
)
from repro.serial.wire import WireReader, WireWriter
from repro.serial.xdr import XdrRepresentation


class _PlanNode:
    """One generated routine: encode/decode a single type node."""

    def __init__(self, idl_type: IdlType, rep, children: typing.Sequence["_PlanNode"]):
        self.idl_type = idl_type
        self.rep = rep
        self.children = list(children)

    # Each node's encode/decode counts its own procedure call; parents
    # count the indirect dispatch to it.
    def encode(self, value: object, writer: WireWriter, counts: MarshalCost) -> None:
        counts.proc_calls += 1
        t = self.idl_type
        if isinstance(t, (U32Type, BoolType)):
            self.rep._encode(t, value, writer)
        elif isinstance(t, (StringType, OpaqueType)):
            # Generated code copies into a temporary buffer first.
            counts.allocations += 1
            self.rep._encode(t, value, writer)
        elif isinstance(t, ArrayType):
            counts.allocations += 1  # element descriptor vector
            items = typing.cast(list, value)
            if t is not None and len(items) > t.max_length:
                raise IdlError(f"array of {len(items)} exceeds max {t.max_length}")
            (
                writer.u32(len(items))
                if self.rep.alignment == 4
                else writer.u16(len(items))
            )
            element_node = self.children[0]
            for item in items:
                counts.indirect_calls += 1
                element_node.encode(item, writer, counts)
        elif isinstance(t, StructType):
            counts.allocations += 1  # field marshal state block
            record = typing.cast(dict, value)
            for (field_name, _), child in zip(t.fields, self.children):
                counts.indirect_calls += 1
                child.encode(record[field_name], writer, counts)
        elif isinstance(t, OptionalType):
            if value is None:
                (writer.u32(0) if self.rep.alignment == 4 else writer.u16(0))
            else:
                (writer.u32(1) if self.rep.alignment == 4 else writer.u16(1))
                counts.indirect_calls += 1
                self.children[0].encode(value, writer, counts)
        else:  # pragma: no cover - compiler validates types up front
            raise IdlError(f"unsupported type {t!r}")

    def decode(self, reader: WireReader, counts: MarshalCost) -> object:
        counts.proc_calls += 1
        t = self.idl_type
        if isinstance(t, (U32Type, BoolType)):
            return self.rep._decode(t, reader)
        if isinstance(t, (StringType, OpaqueType)):
            counts.allocations += 1
            return self.rep._decode(t, reader)
        if isinstance(t, ArrayType):
            counts.allocations += 1
            length = reader.u32() if self.rep.alignment == 4 else reader.u16()
            if length > t.max_length:
                raise IdlError(f"array length {length} exceeds max {t.max_length}")
            element_node = self.children[0]
            out = []
            for _ in range(length):
                counts.indirect_calls += 1
                out.append(element_node.decode(reader, counts))
            return out
        if isinstance(t, StructType):
            counts.allocations += 1
            record = {}
            for (field_name, _), child in zip(t.fields, self.children):
                counts.indirect_calls += 1
                record[field_name] = child.decode(reader, counts)
            return record
        if isinstance(t, OptionalType):
            present = reader.u32() if self.rep.alignment == 4 else reader.u16()
            if present == 0:
                return None
            counts.indirect_calls += 1
            return self.children[0].decode(reader, counts)
        raise IdlError(f"unsupported type {t!r}")  # pragma: no cover


class MarshalPlan:
    """Compiled plan for one IDL type under one representation."""

    def __init__(self, idl_type: IdlType, root: _PlanNode, rep):
        self.idl_type = idl_type
        self.root = root
        self.representation = rep

    def execute_encode(self, value: object) -> typing.Tuple[bytes, MarshalCost]:
        self.idl_type.validate(value)
        counts = MarshalCost()
        writer = WireWriter()
        self.root.encode(value, writer, counts)
        return writer.getvalue(), counts

    def execute_decode(self, data: bytes) -> typing.Tuple[object, MarshalCost]:
        counts = MarshalCost()
        reader = WireReader(data)
        value = self.root.decode(reader, counts)
        reader.expect_exhausted()
        return value, counts


class StubCompiler:
    """Compiles IDL types into :class:`MarshalPlan` objects.

    One compiler per representation (default Sun-XDR).  Plans are cached
    per type instance, as a real stub compiler emits each routine once.
    """

    def __init__(self, representation=None):
        self.representation = representation or XdrRepresentation()
        self._plans: typing.Dict[int, MarshalPlan] = {}

    def compile(self, idl_type: IdlType) -> MarshalPlan:
        key = id(idl_type)
        plan = self._plans.get(key)
        if plan is None:
            plan = MarshalPlan(idl_type, self._build(idl_type), self.representation)
            self._plans[key] = plan
        return plan

    def marshaller(
        self, idl_type: IdlType, op_costs: OpCosts = DEFAULT_OP_COSTS
    ) -> GeneratedMarshaller:
        """Convenience: compile and wrap in a GeneratedMarshaller."""
        return GeneratedMarshaller(self.compile(idl_type), op_costs)

    def _build(self, idl_type: IdlType) -> _PlanNode:
        if isinstance(idl_type, (U32Type, BoolType, StringType, OpaqueType)):
            return _PlanNode(idl_type, self.representation, [])
        if isinstance(idl_type, ArrayType):
            return _PlanNode(
                idl_type, self.representation, [self._build(idl_type.element)]
            )
        if isinstance(idl_type, StructType):
            return _PlanNode(
                idl_type,
                self.representation,
                [self._build(ft) for _, ft in idl_type.fields],
            )
        if isinstance(idl_type, OptionalType):
            return _PlanNode(
                idl_type, self.representation, [self._build(idl_type.inner)]
            )
        raise IdlError(f"cannot compile {idl_type!r}")
