"""Xerox Courier-style data representation.

Courier works in 16-bit units: integers are 16- or 32-bit, strings are
length-prefixed sequences padded to 2-byte boundaries.  It produces
different bytes than XDR for the same IDL value — which is exactly the
heterogeneity the HRPC data-representation component hides.
"""

from __future__ import annotations

import typing

from repro.serial.idl import (
    ArrayType,
    BoolType,
    IdlError,
    IdlType,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
)
from repro.serial.wire import WireReader, WireWriter


class CourierRepresentation:
    """Encode/decode IDL values in Courier format (2-byte alignment)."""

    name = "courier"
    alignment = 2

    def encode(self, idl_type: IdlType, value: object) -> bytes:
        idl_type.validate(value)
        writer = WireWriter()
        self._encode(idl_type, value, writer)
        return writer.getvalue()

    def decode(self, idl_type: IdlType, data: bytes) -> object:
        reader = WireReader(data)
        value = self._decode(idl_type, reader)
        reader.expect_exhausted()
        return value

    # ------------------------------------------------------------------
    def _encode(self, idl_type: IdlType, value: object, writer: WireWriter) -> None:
        if isinstance(idl_type, U32Type):
            writer.u32(typing.cast(int, value))
        elif isinstance(idl_type, BoolType):
            writer.u16(1 if value else 0)
        elif isinstance(idl_type, StringType):
            raw = typing.cast(str, value).encode("utf-8")
            writer.u16(len(raw))
            writer.raw(raw)
            writer.pad_to(self.alignment)
        elif isinstance(idl_type, OpaqueType):
            raw = bytes(typing.cast(bytes, value))
            writer.u16(len(raw))
            writer.raw(raw)
            writer.pad_to(self.alignment)
        elif isinstance(idl_type, ArrayType):
            items = typing.cast(list, value)
            writer.u16(len(items))
            for item in items:
                self._encode(idl_type.element, item, writer)
        elif isinstance(idl_type, StructType):
            record = typing.cast(dict, value)
            for field_name, field_type in idl_type.fields:
                self._encode(field_type, record[field_name], writer)
        elif isinstance(idl_type, OptionalType):
            if value is None:
                writer.u16(0)
            else:
                writer.u16(1)
                self._encode(idl_type.inner, value, writer)
        else:
            raise IdlError(f"courier cannot encode {idl_type!r}")

    def _decode(self, idl_type: IdlType, reader: WireReader) -> object:
        if isinstance(idl_type, U32Type):
            return reader.u32()
        if isinstance(idl_type, BoolType):
            return reader.u16() != 0
        if isinstance(idl_type, StringType):
            length = reader.u16()
            raw = reader.raw(length)
            reader.skip_to(self.alignment)
            return raw.decode("utf-8")
        if isinstance(idl_type, OpaqueType):
            length = reader.u16()
            raw = reader.raw(length)
            reader.skip_to(self.alignment)
            return raw
        if isinstance(idl_type, ArrayType):
            length = reader.u16()
            if length > idl_type.max_length:
                raise IdlError(f"array length {length} exceeds declared max")
            return [self._decode(idl_type.element, reader) for _ in range(length)]
        if isinstance(idl_type, StructType):
            return {
                field_name: self._decode(field_type, reader)
                for field_name, field_type in idl_type.fields
            }
        if isinstance(idl_type, OptionalType):
            present = reader.u16()
            if present == 0:
                return None
            return self._decode(idl_type.inner, reader)
        raise IdlError(f"courier cannot decode {idl_type!r}")
