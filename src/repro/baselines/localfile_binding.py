"""The interim binding mechanism: replicated local files.

Per-binding cost: the HRPC import machinery, a local disk read of the
whole flat file, and a parse/validate pass — about 200 ms.  The real
price is operational: every service registration must be pushed to
every replica, and any host that misses an update serves stale
bindings (both failure modes are modelled and tested).
"""

from __future__ import annotations

import typing

from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.localfiles.registry import BindingFileEntry, LocalBindingFile, Replicator
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host


class LocalFileBinder:
    """Client-side binding against this host's replica of the file."""

    def __init__(
        self,
        host: Host,
        binding_file: LocalBindingFile,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        if binding_file.host is not host:
            raise ValueError("binding file replica must live on the client host")
        self.host = host
        self.env = host.env
        self.file = binding_file
        self.calibration = calibration

    def import_binding(
        self, service_name: str, host_name: str
    ) -> typing.Generator:
        """Interim Import: returns an :class:`HRPCBinding` or KeyError."""
        cal = self.calibration
        self.env.stats.counter("baseline.localfile.imports").increment()
        start = self.env.now
        # Same HRPC import machinery as the HNS path...
        yield from self.host.cpu.compute(cal.import_fixed_ms)
        # ...but the data comes from the local replica.
        entry = yield from self.file.lookup(service_name, host_name)
        yield from self.host.cpu.compute(cal.rereg_glue_ms)
        self.env.stats.timer("baseline.localfile.import_ms").record(
            self.env.now - start
        )
        return HRPCBinding(
            endpoint=Endpoint(NetworkAddress(entry.address), entry.port),
            program=entry.service,
            suite=entry.suite,
        )


__all__ = ["BindingFileEntry", "LocalBindingFile", "LocalFileBinder", "Replicator"]
