"""Baseline binding schemes the paper compares against.

- :class:`LocalFileBinder` — the interim HRPC binding mechanism,
  "based on information reregistered in replicated local files"
  (200 ms per binding, plus an unending replication cost).
- :class:`ReregistrationBinder` — "a scheme in which a name service
  holds all of the (reregistered) data", implemented on the
  Clearinghouse (166 ms) and, hypothetically, on BIND.
"""

from repro.baselines.localfile_binding import LocalFileBinder
from repro.baselines.reregistration import ReregistrationBinder

__all__ = ["LocalFileBinder", "ReregistrationBinder"]
