"""Reregistration-based global binding.

"We should also compare our HNS-based binding timings with a scheme in
which a name service holds all of the (reregistered) data.  We
implemented such a scheme on top of the Clearinghouse, and found that
binding took 166 msec.  While it may be possible to improve the
performance of such a scheme (e.g., by using BIND instead of the
Clearinghouse to store the data) ..."

Binding data for every service is copied ("reregistered") into one
global name service; a binding is then a single lookup plus glue.  The
costs the paper rejects this design for are modelled too: every native
change must be re-pushed, and stale entries persist until then.
"""

from __future__ import annotations

import typing

from repro.bind import BindResolver, NameNotFound, ResourceRecord, RRType
from repro.clearinghouse import CHName, ClearinghouseClient, NoSuchObject
from repro.core.metastore import decode_fields, encode_fields
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hrpc.binding import HRPCBinding
from repro.net.addresses import Endpoint, NetworkAddress
from repro.net.host import Host


class ReregistrationBinder:
    """Global binding data reregistered into one name service.

    ``store`` selects the backing service: a
    :class:`ClearinghouseClient` (the paper's implementation, 166 ms)
    or a :class:`BindResolver` (the hypothetical faster variant).
    """

    def __init__(
        self,
        host: Host,
        store: typing.Union[ClearinghouseClient, BindResolver],
        domain: str,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.host = host
        self.env = host.env
        self.store = store
        self.domain = domain
        self.calibration = calibration
        self._is_ch = isinstance(store, ClearinghouseClient)

    # ------------------------------------------------------------------
    def _entry_key(self, service_name: str, host_name: str) -> str:
        flat_host = "".join(c if c.isalnum() else "-" for c in host_name.lower())
        return f"{service_name.lower()}-{flat_host}"

    def reregister(
        self,
        service_name: str,
        host_name: str,
        address: str,
        port: int,
        suite: str = "sunrpc",
    ) -> typing.Generator:
        """Push one service's binding data into the global store.

        This is the cost "that continues without end": it must re-run on
        every native change, for every service, forever.
        """
        data = encode_fields(addr=address, port=port, suite=suite)
        key = self._entry_key(service_name, host_name)
        self.env.stats.counter("baseline.rereg.registrations").increment()
        if self._is_ch:
            yield from typing.cast(ClearinghouseClient, self.store).register(
                CHName(key, self.domain, "uw"), "binding", data
            )
        else:
            record = ResourceRecord(
                f"{key}.{self.domain}",  # type: ignore[arg-type]
                RRType.UNSPEC,
                self.calibration.meta_ttl_ms,
                data,
            )
            yield from typing.cast(BindResolver, self.store).replace_records(
                f"{key}.{self.domain}", RRType.UNSPEC, [record]
            )

    def import_binding(
        self, service_name: str, host_name: str
    ) -> typing.Generator:
        """One lookup in the global store + glue; raises on unknown."""
        key = self._entry_key(service_name, host_name)
        self.env.stats.counter("baseline.rereg.imports").increment()
        start = self.env.now
        if self._is_ch:
            try:
                raw = yield from typing.cast(
                    ClearinghouseClient, self.store
                ).retrieve(CHName(key, self.domain, "uw"), "binding")
            except NoSuchObject as err:
                raise KeyError(f"{service_name}@{host_name}") from err
        else:
            try:
                records = yield from typing.cast(BindResolver, self.store).lookup(
                    f"{key}.{self.domain}", RRType.UNSPEC
                )
            except NameNotFound as err:
                raise KeyError(f"{service_name}@{host_name}") from err
            raw = records[0].data
        yield from self.host.cpu.compute(self.calibration.rereg_glue_ms)
        fields = decode_fields(raw)
        self.env.stats.timer("baseline.rereg.import_ms").record(
            self.env.now - start
        )
        return HRPCBinding(
            endpoint=Endpoint(
                NetworkAddress(fields["addr"]), int(fields["port"])
            ),
            program=service_name,
            suite=fields["suite"],
        )
