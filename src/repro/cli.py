"""Command-line interface: poke the simulated HNS from a shell.

Usage (after ``pip install -e .``)::

    python -m repro.cli import DesiredService "BIND-cs::fiji.cs.washington.edu"
    python -m repro.cli resolve "CH-hcs::levy:hcs:uw" MailboxLocation
    python -m repro.cli table31
    python -m repro.cli trace PrintService "CH-hcs::dlion:hcs:uw"

Every command stands up the canned HCS testbed, performs the requested
operation in simulated time, and prints what the paper's user would
have seen.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.core import Arrangement, HNSName, LocalNsmBinding
from repro.workloads import build_stack, build_testbed


def _stack_with_all_nsms(testbed):
    """An ALL_LOCAL stack plus every NSM type linked in."""
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    extra = [
        testbed.make_ch_binding_nsm(testbed.client),
        testbed.make_bind_hostaddr_nsm(testbed.client),
        testbed.make_ch_hostaddr_nsm(testbed.client),
        testbed.make_bind_mail_nsm(testbed.client),
        testbed.make_ch_mail_nsm(testbed.client),
        testbed.make_bind_file_nsm(testbed.client),
        testbed.make_ch_file_nsm(testbed.client),
    ]
    for nsm in extra:
        stack.hns.link_local_nsm(nsm)
        stack.importer.nsm_stub.link_local(nsm)
    return stack


def cmd_import(args: argparse.Namespace) -> int:
    """``import``: HRPC Import through the HNS."""
    testbed = build_testbed(seed=args.seed)
    stack = _stack_with_all_nsms(testbed)
    env = testbed.env
    name = HNSName.parse(args.hns_name)

    def do():
        start = env.now
        binding = yield from stack.importer.import_binding(args.service, name)
        return binding, env.now - start

    binding, elapsed = env.run(until=env.process(do()))
    print(binding.describe())
    print(f"resolved in {elapsed:.1f} simulated ms (cold caches)")
    return 0


def cmd_resolve(args: argparse.Namespace) -> int:
    """``resolve``: FindNSM plus the NSM query."""
    testbed = build_testbed(seed=args.seed)
    stack = _stack_with_all_nsms(testbed)
    env = testbed.env
    name = HNSName.parse(args.hns_name)
    params: typing.Dict[str, object] = {}
    if args.service:
        params["service"] = args.service

    def do():
        start = env.now
        nsm_binding = yield from stack.hns.find_nsm(name, args.query_class)
        which = (
            nsm_binding.nsm.name
            if isinstance(nsm_binding, LocalNsmBinding)
            else nsm_binding.program
        )
        result = yield from stack.importer.nsm_stub.call(
            nsm_binding, name, **params
        )
        return which, result, env.now - start

    which, result, elapsed = env.run(until=env.process(do()))
    print(f"NSM:    {which}")
    for field, value in sorted(result.value.items(), key=lambda kv: kv[0]):
        print(f"{field + ':':<8}{value}")
    print(f"[{elapsed:.1f} simulated ms, cold caches]")
    return 0


def cmd_table31(args: argparse.Namespace) -> int:
    """``table31``: regenerate Table 3.1 against the paper."""
    from repro.harness import ComparisonTable

    paper = {
        Arrangement.ALL_LOCAL: (460, 180, 104),
        Arrangement.AGENT: (517, 235, 137),
        Arrangement.REMOTE_HNS: (515, 232, 140),
        Arrangement.REMOTE_NSMS: (509, 225, 147),
        Arrangement.ALL_REMOTE: (547, 261, 181),
    }
    table = ComparisonTable("Table 3.1: HRPC binding by colocation (msec)")
    name = HNSName("BIND-cs", "fiji.cs.washington.edu")
    for arrangement in Arrangement:
        testbed = build_testbed(seed=args.seed)
        stack = build_stack(testbed, arrangement)
        env = testbed.env

        def timed():
            start = env.now
            yield from stack.importer.import_binding("DesiredService", name)
            return env.now - start

        stack.flush_all_caches()
        a = env.run(until=env.process(timed()))
        stack.flush_nsm_caches()
        b = env.run(until=env.process(timed()))
        c = env.run(until=env.process(timed()))
        for label, p, m in zip(("miss", "HNS hit", "both hit"), paper[arrangement], (a, b, c)):
            table.add(f"{arrangement.label} / {label}", p, m)
    print(table.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: a traced Import (Figure 2.1 style).

    Beyond the event log, span tracing (:mod:`repro.obs`) renders the
    causal tree and the critical path of the import, and ``--json`` /
    ``--perfetto`` export the spans for offline analysis (the Perfetto
    file loads in ``ui.perfetto.dev`` or ``chrome://tracing``).
    """
    from repro.obs import (
        CriticalPath,
        render_trace,
        write_chrome_trace,
        write_json,
    )

    testbed = build_testbed(seed=args.seed)
    stack = _stack_with_all_nsms(testbed)
    env = testbed.env
    env.trace.enabled = True
    # Enable after build: registration traffic stays out of the trace.
    env.obs.enable()
    name = HNSName.parse(args.hns_name)

    def do():
        binding = yield from stack.importer.import_binding(args.service, name)
        return binding

    binding = env.run(until=env.process(do()))
    for record in env.trace.records:
        print(record)
    roots = env.obs.roots()
    if roots:
        spans = env.obs.trace_spans(roots[0].trace_id)
        path = CriticalPath.from_trace(spans)
        print()
        print(render_trace(spans, critical_path=path))
        print()
        print(path.render())
    if args.json_path:
        count = write_json(env.obs, args.json_path)
        print(f"wrote {count} spans to {args.json_path}")
    if args.perfetto_path:
        count = write_chrome_trace(env.obs, args.perfetto_path)
        print(f"wrote {count} trace events to {args.perfetto_path}")
    print(f"=> {binding.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Drive the simulated HCS Name Service (SOSP 1987 reproduction).",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_import = sub.add_parser("import", help="HRPC Import through the HNS")
    p_import.add_argument("service", help="service name, e.g. DesiredService")
    p_import.add_argument("hns_name", help="HNS name, e.g. 'BIND-cs::fiji.cs.washington.edu'")
    p_import.set_defaults(func=cmd_import)

    p_resolve = sub.add_parser("resolve", help="FindNSM + NSM query")
    p_resolve.add_argument("hns_name")
    p_resolve.add_argument(
        "query_class",
        choices=["HRPCBinding", "HostAddress", "MailboxLocation", "FileService"],
    )
    p_resolve.add_argument("--service", default="", help="for HRPCBinding queries")
    p_resolve.set_defaults(func=cmd_resolve)

    p_table = sub.add_parser("table31", help="regenerate Table 3.1")
    p_table.set_defaults(func=cmd_table31)

    p_trace = sub.add_parser("trace", help="traced Import (Figure 2.1 style)")
    p_trace.add_argument("service")
    p_trace.add_argument("hns_name")
    p_trace.add_argument(
        "--json", dest="json_path", default="", help="write spans as JSON"
    )
    p_trace.add_argument(
        "--perfetto",
        dest="perfetto_path",
        default="",
        help="write a Chrome trace_event file (ui.perfetto.dev)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_list = sub.add_parser("list", help="browse the registered federation")
    p_list.set_defaults(func=cmd_list)

    p_bench = sub.add_parser(
        "bench", help="run an ablation grid over a process pool"
    )
    p_bench.add_argument(
        "grid",
        help="grid name (fast_path, replica_scheduling, update_path, toy) or 'all'",
    )
    p_bench.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (default: all cores; 1 = run inline)",
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration (also via REPRO_BENCH_SMOKE=1)",
    )
    p_bench.add_argument(
        "--full-grid",
        action="store_true",
        help="run the full cartesian knob product, not just one-offs",
    )
    p_bench.add_argument(
        "--out-dir", default=".", help="where BENCH_ablation_*.json lands"
    )
    p_bench.add_argument(
        "--grid-seed",
        type=int,
        default=None,
        help="override the grid's base seed",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint",
        help="run hnslint (same as python -m repro.analysis)",
        add_help=False,
    )
    p_lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    p_lint.set_defaults(func=cmd_lint)

    p_racer = sub.add_parser(
        "racer",
        help="hnsracer: interprocedural race lint + schedule-perturbed "
        "scenario re-runs under the interleaving sanitizer",
    )
    p_racer.add_argument(
        "paths",
        nargs="*",
        help="files or directories for the static stage "
        "(default: src/repro)",
    )
    p_racer.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the dynamic stage to NAME (repeatable; "
        "default: every registered scenario)",
    )
    p_racer.add_argument(
        "--seed", type=int, default=0, help="base seed for scenario runs"
    )
    p_racer.add_argument(
        "--perturb-runs",
        type=int,
        default=2,
        help="perturbation seeds derived per scenario (default 2)",
    )
    p_racer.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format on stdout",
    )
    p_racer.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    p_racer.add_argument(
        "--baseline",
        default=None,
        help="baseline file for the static stage "
        "(default: ./hnslint-baseline.toml if present)",
    )
    p_racer.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    p_racer.set_defaults(func=cmd_racer)
    return parser


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench``: run one (or every) ablation grid, fanned over processes.

    Expands the grid (baseline + one-off ablations, ``--full-grid`` for
    the cartesian product), executes the runs over a process pool, and
    writes the schema-v2 ``BENCH_ablation_<grid>.json`` artifact the CI
    perf gate (:mod:`repro.harness.gate`) consumes.  Identical
    artifacts at every ``--jobs`` setting, wall-clock fields aside.
    """
    import os
    import pathlib

    from repro.harness.ablation import (
        AblationStudy,
        now_wall,
        study_payload,
        write_payload,
    )
    from repro.harness.grids import GATED_GRIDS, GRIDS

    smoke = args.smoke or bool(os.environ.get("REPRO_BENCH_SMOKE"))
    names = GATED_GRIDS if args.grid == "all" else (args.grid,)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    failed = 0
    for name in names:
        grid = GRIDS[name]
        study = AblationStudy(grid, smoke=smoke, seed=args.grid_seed)
        specs = study.expand(full_grid=args.full_grid)
        started = now_wall()
        results = study.execute(specs, jobs=jobs)
        wall_s = now_wall() - started
        payload = study_payload(
            study, results, jobs=jobs, wall_s=wall_s, cpus=os.cpu_count()
        )
        path = out_dir / f"BENCH_ablation_{name}.json"
        write_payload(str(path), payload)
        mode = "smoke" if smoke else "full"
        print(
            f"grid {name} ({mode}): {len(results)} runs, jobs={jobs}, "
            f"{wall_s:.1f} s -> {path}"
        )
        for result in results:
            if not result.ok:
                failed += 1
                tail = (result.error or "").splitlines()
                print(f"  {result.spec.key:<28} ERROR: {tail[-1] if tail else '?'}")
                continue
            shown = ", ".join(
                f"{metric}={value:.4g}"
                for metric, value in sorted(result.metrics.items())
            )
            print(f"  {result.spec.key:<28} {shown}")
        importance = study.importance(results)
        for key in sorted(importance):
            deltas = ", ".join(
                f"{metric} {entry['delta']:+.4g}"
                for metric, entry in sorted(importance[key].items())
                if metric in ("p50_ms", "p99_ms", "availability", "meta_queries_per_find")
            )
            if deltas:
                print(f"  Δ {key:<26} {deltas}")
    return 1 if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``lint``: pass everything through to :mod:`repro.analysis`."""
    from repro.analysis import main as analysis_main

    return analysis_main(args.lint_args)


def cmd_racer(args: argparse.Namespace) -> int:
    """``racer``: static race lint + perturbed dynamic confirmation."""
    import pathlib

    from repro.analysis.baseline import Baseline
    from repro.analysis.racer import (
        render_racer_json,
        render_racer_text,
        run_racer,
    )

    baseline = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline = Baseline.load(args.baseline)
        else:
            baseline = Baseline.discover()
    report = run_racer(
        args.paths or ["src/repro"],
        scenario_names=args.scenario,
        seed=args.seed,
        perturb_runs=args.perturb_runs,
        baseline=baseline,
    )
    if args.format == "json":
        print(render_racer_json(report))
    else:
        print(render_racer_text(report))
    if args.out:
        pathlib.Path(args.out).write_text(
            render_racer_json(report) + "\n", encoding="utf-8"
        )
    return 0 if report.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    """``list``: browse the registered federation."""
    testbed = build_testbed(seed=args.seed)
    metastore = testbed.make_metastore(testbed.client)
    env = testbed.env
    listing = env.run(until=env.process(metastore.directory()))
    print(listing.render())
    return 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Delegate before argparse: REMAINDER would swallow a leading
        # flag like --list-rules as if it were our own.
        from repro.analysis import main as analysis_main

        return analysis_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
