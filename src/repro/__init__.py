"""Reproduction of "A Name Service for Evolving, Heterogeneous Systems"
(Schwartz, Zahorjan & Notkin, SOSP 1987) — the HCS Name Service.

Subpackages
-----------
- :mod:`repro.core` — the HNS itself (the paper's contribution).
- :mod:`repro.hrpc` — heterogeneous RPC (five mix-and-match components).
- :mod:`repro.bind`, :mod:`repro.clearinghouse`,
  :mod:`repro.localfiles` — the underlying name services.
- :mod:`repro.serial` — IDL, wire formats, generated vs hand-coded
  marshallers (Table 3.2's subject).
- :mod:`repro.sim`, :mod:`repro.net` — the deterministic simulation
  substrate.
- :mod:`repro.resolution` — the :class:`~repro.resolution.
  ResolutionPolicy` fault-tolerance layer (retry/backoff, negative
  caching, serve-stale, circuit breakers) shared by the whole
  resolution path.
- :mod:`repro.baselines` — the reregistration-based comparison schemes.
- :mod:`repro.workloads` — the canned HCS testbed and workload
  generators.
- :mod:`repro.harness` — calibration and benchmark support.

The most common entry points:

>>> from repro.core import Arrangement, HNSName
>>> from repro.workloads import build_stack, build_testbed
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "bind",
    "clearinghouse",
    "core",
    "harness",
    "hrpc",
    "localfiles",
    "net",
    "resolution",
    "serial",
    "sim",
    "workloads",
]
