"""The ad-hoc NSM: beacon-discovered names behind the standard query face.

The confederation argument cuts both ways: if "all NSMs for a
particular query class have identical client interfaces", then a name
service that is *nothing but overheard beacons* can join it.
:class:`DiscoveryNsm` answers the ``AdHocService`` query class from the
host's passive :class:`~repro.discovery.beacon.DiscoveryCache`, falling
back to a one-shot broadcast :class:`~repro.broadcast.BroadcastLocator`
re-query on a miss — and ``HNS.find_nsm`` / ``NsmStub`` dispatch to it
unchanged.

Liveness discipline: a result's TTL never exceeds the backing entry's
remaining watchdog deadline, and liveness evictions invalidate any
derived resolver-cache entries immediately — the framework's result
cache can therefore never outlive what the beacons justify.
"""

from __future__ import annotations

import typing

from repro.broadcast.locator import BroadcastLocator
from repro.core.names import HNSName
from repro.core.nsm import NamingSemanticsManager
from repro.discovery.beacon import BeaconService, DiscoveryEntry
from repro.harness.calibration import Calibration, DEFAULT_CALIBRATION
from repro.resolution import FastPathPolicy

#: the name-service name the ad-hoc tier registers under in the meta zone
ADHOC_NS = "adhoc"


class DiscoveryNsm(NamingSemanticsManager):
    """NSM for the AdHocService query class, backed by presence beacons."""

    query_class = "AdHocService"

    def __init__(
        self,
        beacon_service: BeaconService,
        name: str = "",
        calibration: Calibration = DEFAULT_CALIBRATION,
        cached: bool = True,
        fast_path: typing.Optional[FastPathPolicy] = None,
    ):
        super().__init__(
            beacon_service.host,
            ADHOC_NS,
            name=name,
            calibration=calibration,
            cached=cached,
            fast_path=fast_path,
        )
        self.beacon = beacon_service
        self.policy = beacon_service.policy
        self.locator = BroadcastLocator(
            beacon_service.host,
            beacon_service.transport,
            wait_ms=self.policy.broadcast_wait_ms,
        )
        # Ad-hoc names are cheap to look up locally: no protocol
        # translation, no result reformatting.
        self.translate_cost_ms = 0.0
        self.standardize_cost_ms = 0.0
        # local name (lowered) -> resolver-cache keys derived from it,
        # so liveness evictions can invalidate the framework cache too.
        # A dict-as-ordered-set: iteration must not depend on string
        # hashing, which varies across processes (determinism gate).
        self._keys_for: typing.Dict[str, typing.Dict[object, None]] = {}
        beacon_service.cache.on_evict(self._view_evicted)

    # ------------------------------------------------------------------
    def _cache_key(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> object:
        key = super()._cache_key(hns_name, params)
        local = self.translate_name(hns_name).lower()
        self._keys_for.setdefault(local, {})[key] = None
        return key

    def _view_evicted(self, entry: DiscoveryEntry, reason: str) -> None:
        """The passive view dropped a name: drop derived results too."""
        if self.cache is None:
            return
        for key in self._keys_for.pop(entry.name.lower(), {}):
            if self.cache.invalidate(key):
                self.env.stats.counter("discovery.nsm_invalidations").increment()

    # ------------------------------------------------------------------
    def resolve(
        self, hns_name: HNSName, params: typing.Mapping[str, object]
    ) -> typing.Generator:
        local = self.translate_name(hns_name)
        with self.env.obs.span(
            "nsm.adhoc_query", nsm=self.name, name=local
        ) as span:
            entry = self.beacon.cache.lookup(local)
            if entry is not None:
                span.set(outcome="view")
                self.env.stats.counter("discovery.view_hits").increment()
                # Never promise longer than liveness justifies.
                ttl_ms = max(1.0, self.beacon.cache.remaining_ms(entry))
                return self._standardize(entry.address, entry.owner,
                                         entry.incarnation, entry.value), ttl_ms
            if not self.policy.requery_on_miss:
                span.set(outcome="miss")
                self.env.stats.counter("discovery.view_misses").increment()
                raise LookupError(f"no live ad-hoc entry for {local!r}")
            span.set(outcome="requery")
            self.env.stats.counter("discovery.requeries").increment()
            # One-shot broadcast fallback (LookupError on silence).
            answer = yield from self.locator.locate(local)
            ttl_ms = (
                max(1.0, self.policy.watchdog_deadline_ms())
                if self.policy.liveness
                else self.policy.entry_ttl_ms
            )
            return self._standardize(
                answer.address, answer.owner, 0, answer.data.get("port", "")
            ), ttl_ms

    @staticmethod
    def _standardize(
        address: str, owner: str, incarnation: int, port: str
    ) -> typing.Dict[str, object]:
        return {
            "address": address,
            "owner": owner,
            "incarnation": incarnation,
            "port": port,
        }
