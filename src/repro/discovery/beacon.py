"""Beacon-based presence: the ad-hoc tier's active and passive halves.

The HNS assumes administered name services; this subsystem covers the
hosts that have none — laptops and lab machines that appear on a
segment, advertise what they serve, and vanish without deregistering.

- :class:`BeaconService` is the *active* half: a per-host service that
  periodically broadcasts a signed :class:`PresenceBeacon` (name set +
  address + incarnation number) with a jittered period, answers
  liveness probes, and runs the watchdog sweep over its own cache.
- :class:`DiscoveryCache` is the *passive* half: every listener builds
  a view of the segment purely from overheard beacons.  Each entry
  carries two deadlines — a TTL and a liveness watchdog (a small
  multiple of the advertised beacon period) — and the earlier one wins,
  so a vanished host stops being served long before its TTL would have
  let it go.  Conflicts resolve last-writer-wins on incarnation number.

Eviction is *suspect-before-evict* when the policy asks for it: a
watchdog-lapsed entry is probed once (unicast) before removal, so one
lost beacon does not flap the membership view.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.broadcast.locator import LOCATOR_PORT, NameOwnerService
from repro.discovery.messages import (
    BEACON_PORT,
    SEGMENT_SECRET,
    PresenceBeacon,
    ProbeRequest,
    ProbeResponse,
)
from repro.net.addresses import Endpoint
from repro.net.errors import HostDown, NoRouteToHost, TransportTimeout
from repro.net.host import Host, Service
from repro.net.transport import DatagramTransport, RemoteCallError
from repro.resolution import DEFAULT_DISCOVERY_POLICY, DiscoveryPolicy

#: CPU cost for a listener to verify + absorb one overheard beacon
OBSERVE_COST_MS = 0.4
#: CPU cost to answer a liveness probe
PROBE_COST_MS = 0.5


@dataclasses.dataclass
class DiscoveryEntry:
    """One name in a listener's passive membership view."""

    name: str
    owner: str           # host name
    address: str         # dotted quad
    value: str           # advertised data (a port, stringified)
    incarnation: int
    heard_at: float      # env.now of the last accepted beacon
    ttl_deadline: float
    watchdog_deadline: float
    suspect: bool = False

    def deadline(self, liveness: bool) -> float:
        """The effective expiry: watchdog races TTL when liveness is on."""
        if liveness:
            return min(self.ttl_deadline, self.watchdog_deadline)
        return self.ttl_deadline


class DiscoveryCache:
    """Passive per-listener membership view built from overheard beacons.

    Pure state plus deadlines: the owning :class:`BeaconService` runs the
    sweep process and the probes.  ``on_evict`` callbacks let consumers
    (notably :class:`~repro.discovery.nsm.DiscoveryNsm`) drop their own
    derived state the moment liveness eviction fires.
    """

    def __init__(self, env, policy: DiscoveryPolicy = DEFAULT_DISCOVERY_POLICY):
        self.env = env
        self.policy = policy
        self._entries: typing.Dict[str, DiscoveryEntry] = {}
        # highest incarnation ever heard per owner: stale-beacon filter
        self._owner_incarnation: typing.Dict[str, int] = {}
        self._on_evict: typing.List[
            typing.Callable[[DiscoveryEntry, str], None]
        ] = []

    # ------------------------------------------------------------------
    def on_evict(
        self, callback: typing.Callable[[DiscoveryEntry, str], None]
    ) -> None:
        """Register ``callback(entry, reason)`` for every eviction."""
        self._on_evict.append(callback)

    def observe(self, beacon: PresenceBeacon) -> int:
        """Absorb one overheard beacon; returns entries added/refreshed.

        Last-writer-wins on incarnation: a beacon older than the highest
        incarnation heard from its owner is dropped whole, and a name
        moves between owners only when the newcomer's incarnation is at
        least as new as the holder's.  A fresh beacon also *retracts*:
        names this owner previously advertised but no longer does are
        evicted immediately.
        """
        now = self.env.now
        known = self._owner_incarnation.get(beacon.owner, 0)
        if beacon.incarnation < known:
            self.env.stats.counter("discovery.stale_beacons").increment()
            return 0
        self._owner_incarnation[beacon.owner] = beacon.incarnation
        advertised = {name.lower() for name in beacon.names}
        # Retraction: the owner speaks for its own name set.
        for key in [
            key
            for key, entry in self._entries.items()
            if entry.owner == beacon.owner and key not in advertised
        ]:
            self._evict(key, "retracted")
        touched = 0
        for name, value in beacon.names.items():
            key = name.lower()
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.owner != beacon.owner
                and beacon.incarnation < entry.incarnation
            ):
                # A different owner already holds the name with a newer
                # incarnation: the overheard claim lost the write race.
                self.env.stats.counter("discovery.lww_rejects").increment()
                continue
            self._entries[key] = DiscoveryEntry(
                name=name,
                owner=beacon.owner,
                address=beacon.address,
                value=value,
                incarnation=beacon.incarnation,
                heard_at=now,
                ttl_deadline=now + self.policy.entry_ttl_ms,
                watchdog_deadline=now + self.policy.watchdog_deadline_ms(),
            )
            touched += 1
        if touched:
            self.env.stats.counter("discovery.observed").increment(touched)
        return touched

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> typing.Optional[DiscoveryEntry]:
        """Serve ``name`` from the view, or None.

        TTL-expired entries are evicted on the spot.  Watchdog-lapsed
        entries are *misses* but are left in place — the sweep's
        suspect-probe may yet resurrect them — so a query mid-lapse
        falls back to re-query rather than serving a maybe-dead binding.
        """
        key = name.lower()
        entry = self._entries.get(key)
        if entry is None:
            return None
        now = self.env.now
        if now >= entry.ttl_deadline:
            self._evict(key, "ttl")
            return None
        if self.policy.liveness and now >= entry.watchdog_deadline:
            self.env.stats.counter("discovery.watchdog_misses").increment()
            return None
        return entry

    def peek(self, name: str) -> typing.Optional[DiscoveryEntry]:
        """The raw entry, deadlines ignored (for tests and the sweep)."""
        return self._entries.get(name.lower())

    def entries(self) -> typing.List[DiscoveryEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def remaining_ms(self, entry: DiscoveryEntry) -> float:
        """Time until the effective deadline (may be <= 0)."""
        return entry.deadline(self.policy.liveness) - self.env.now

    # ------------------------------------------------------------------
    def refresh(self, entry: DiscoveryEntry) -> None:
        """A probe confirmed liveness: push the deadlines out."""
        now = self.env.now
        entry.heard_at = now
        entry.ttl_deadline = now + self.policy.entry_ttl_ms
        entry.watchdog_deadline = now + self.policy.watchdog_deadline_ms()
        entry.suspect = False
        self.env.stats.counter("discovery.probe_refreshes").increment()

    def evict(self, name: str, reason: str) -> bool:
        return self._evict(name.lower(), reason)

    def _evict(self, key: str, reason: str) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.env.stats.counter("discovery.evictions").increment()
        self.env.stats.counter(f"discovery.evict.{reason}").increment()
        self.env.trace.emit(
            "discovery",
            f"evicted {entry.name} (owner {entry.owner}, {reason})",
            incarnation=entry.incarnation,
        )
        for callback in self._on_evict:
            callback(entry, reason)
        return True

    # ------------------------------------------------------------------
    def membership_digest(self) -> str:
        """Stable digest of the live view: (name, owner, incarnation).

        Two listeners with identical views produce identical digests —
        the convergence check the partition/heal scenario asserts.
        Deadline-expired entries are excluded without being evicted, so
        digesting is read-only (digest-neutral for determinism runs).
        """
        now = self.env.now
        lines = sorted(
            f"{entry.name.lower()}|{entry.owner}|{entry.incarnation}|{entry.address}"
            for entry in self._entries.values()
            if now < entry.deadline(self.policy.liveness)
        )
        raw = "\n".join(lines).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]


class BeaconService(Service):
    """The active half: beacon loop, probe answering, watchdog sweep.

    Binds :data:`BEACON_PORT`.  Also keeps a co-resident
    :class:`~repro.broadcast.locator.NameOwnerService` (creating one on
    :data:`LOCATOR_PORT` unless the host already has one) mirrored with
    this host's announcements, so the one-shot broadcast locator — the
    degraded mode ``DiscoveryPolicy.disabled()`` selects, and the
    re-query fallback on a cache miss — resolves the same names.
    """

    def __init__(
        self,
        host: Host,
        transport: DatagramTransport,
        policy: DiscoveryPolicy = DEFAULT_DISCOVERY_POLICY,
        secret: str = SEGMENT_SECRET,
    ):
        self.host = host
        self.env = host.env
        self.transport = transport
        self.policy = policy
        self.secret = secret
        self.cache = DiscoveryCache(host.env, policy)
        self.incarnation = 1
        self._names: typing.Dict[str, str] = {}
        self._running = True
        existing = host.service_at(LOCATOR_PORT)
        if isinstance(existing, NameOwnerService):
            self.owner_service = existing
        else:
            self.owner_service = NameOwnerService(host)
        host.bind(BEACON_PORT, self)
        if policy.enabled:
            self.env.process(
                self._beacon_loop(), name=f"{host.name}.beacon"
            )
            self.env.process(
                self._watchdog_loop(), name=f"{host.name}.watchdog"
            )

    # ------------------------------------------------------------------
    # Advertisement
    # ------------------------------------------------------------------
    def announce(self, name: str, port: int) -> None:
        """Advertise a name this host serves (carried by every beacon)."""
        if not name:
            raise ValueError("cannot announce the empty name")
        self._names[name] = str(port)
        self.owner_service.own(name, port=port)

    def retract(self, name: str) -> bool:
        """Stop advertising; listeners retract on the next beacon."""
        self.owner_service.disown(name)
        return self._names.pop(name, None) is not None

    def announced(self) -> typing.Dict[str, str]:
        return dict(self._names)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Pause beaconing (the host stays up; for tests)."""
        self._running = False

    def start(self) -> None:
        self._running = True

    def restart(self) -> None:
        """Model a host restart: bump the incarnation so listeners'
        last-writer-wins reconciles to the new life, then resume."""
        self.incarnation += 1
        self._running = True
        self.env.stats.counter("discovery.restarts").increment()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _period_ms(self) -> float:
        """Jittered beacon period — desynchronizes the segment's hosts."""
        policy = self.policy
        if policy.beacon_jitter <= 0:
            return policy.beacon_period_ms
        rng = self.env.rng.stream(f"discovery.beacon:{self.host.name}")
        spread = policy.beacon_jitter
        return policy.beacon_period_ms * (1.0 - spread + 2.0 * spread * rng.random())

    def _beacon_loop(self) -> typing.Generator:
        while True:
            yield self.env.timeout(self._period_ms())
            if not self._running or not self.host.is_up:
                continue
            beacon = PresenceBeacon.signed(
                owner=self.host.name,
                address=str(self.host.address),
                incarnation=self.incarnation,
                names=self._names,
                secret=self.secret,
            )
            with self.env.obs.span(
                "discovery.beacon",
                owner=self.host.name,
                incarnation=self.incarnation,
                names=len(self._names),
            ):
                self.env.stats.counter("discovery.beacons_sent").increment()
                # A host hears itself: its own names belong in its own
                # view, or per-host membership digests could never match.
                self.cache.observe(beacon)
                yield from self.transport.broadcast(
                    self.host,
                    BEACON_PORT,
                    beacon,
                    size_bytes=64 + 16 * max(1, len(self._names)),
                    wait_ms=1.0,  # one-way: no replies to gather
                )

    def _watchdog_loop(self) -> typing.Generator:
        """Sweep the passive view; probe suspects before evicting."""
        interval = self.policy.beacon_period_ms
        while True:
            yield self.env.timeout(interval)
            if not self.host.is_up:
                continue
            now = self.env.now
            for entry in self.cache.entries():
                current = self.cache.peek(entry.name)
                if current is not entry:
                    continue  # replaced since the scan snapshot
                if now >= entry.ttl_deadline:
                    self._evict_with_span(entry, "ttl")
                    continue
                if not self.policy.liveness or now < entry.watchdog_deadline:
                    continue
                if not self.policy.probe_before_evict:
                    self._evict_with_span(entry, "watchdog")
                    continue
                entry.suspect = True
                self.env.stats.counter("discovery.probes").increment()
                alive = yield from self._probe(entry)
                if alive:
                    self.cache.refresh(entry)
                else:
                    self._evict_with_span(entry, "probe_failed")

    def _probe(self, entry: DiscoveryEntry) -> typing.Generator:
        """One unicast liveness check; False on silence or refusal."""
        try:
            reply = yield from self.transport.request(
                self.host,
                Endpoint(entry.address, BEACON_PORT),
                ProbeRequest(entry.name),
                size_bytes=48,
                timeout_ms=self.policy.probe_timeout_ms,
            )
        except (TransportTimeout, HostDown, NoRouteToHost, RemoteCallError):
            return False
        return (
            isinstance(reply, ProbeResponse)
            and reply.alive
            and reply.incarnation >= entry.incarnation
        )

    def _evict_with_span(self, entry: DiscoveryEntry, reason: str) -> None:
        with self.env.obs.span(
            "discovery.evict",
            name=entry.name,
            owner=entry.owner,
            reason=reason,
        ):
            self.cache.evict(entry.name, reason)

    # ------------------------------------------------------------------
    # Service interface: overheard beacons and liveness probes
    # ------------------------------------------------------------------
    def handle(self, datagram, responder):
        payload = datagram.payload
        if isinstance(payload, PresenceBeacon):
            yield from self.host.cpu.compute(OBSERVE_COST_MS)
            if not payload.verify(self.secret):
                self.env.stats.counter("discovery.bad_signatures").increment()
                return
            self.cache.observe(payload)
            return
        if isinstance(payload, ProbeRequest):
            yield from self.host.cpu.compute(PROBE_COST_MS)
            name = payload.name
            responder(
                ProbeResponse(
                    name=name,
                    owner=self.host.name,
                    incarnation=self.incarnation,
                    alive=self._running and name in self._names,
                ),
                size_bytes=48,
            )
