"""Ad-hoc discovery wire messages: presence beacons and liveness probes.

Beacons are *signed*: a host that cannot prove it shares the segment
secret cannot claim names.  The signature here is a CRC over the
canonical field encoding keyed with the shared secret — a stand-in with
the right shape (deterministic, cheap, covers every field) rather than
real cryptography, which the simulation does not need.
"""

from __future__ import annotations

import dataclasses
import typing
import zlib

from repro.broadcast.messages import decode_data, encode_data
from repro.serial import BoolType, StringType, StructType, U32Type

#: the well-known port every discovery listener binds
BEACON_PORT = 1112

#: segment-wide shared secret the beacon signature is keyed with
SEGMENT_SECRET = "hcs-adhoc-v1"

PRESENCE_BEACON_IDL = StructType(
    "PresenceBeacon",
    [
        ("owner", StringType(64)),
        ("address", StringType(64)),
        ("incarnation", U32Type()),
        # "key=value;key=value" — name -> port, as strings (wire encoding)
        ("names", StringType(255)),
        ("signature", U32Type()),
    ],
)

PROBE_REQUEST_IDL = StructType(
    "ProbeRequest",
    [("name", StringType(255))],
)

PROBE_RESPONSE_IDL = StructType(
    "ProbeResponse",
    [
        ("name", StringType(255)),
        ("owner", StringType(64)),
        ("incarnation", U32Type()),
        ("alive", BoolType()),
    ],
)


def sign_beacon(
    owner: str,
    address: str,
    incarnation: int,
    names: typing.Mapping[str, str],
    secret: str = SEGMENT_SECRET,
) -> int:
    """CRC-keyed signature over the canonical beacon encoding."""
    canonical = "|".join(
        (secret, owner, address, str(incarnation), encode_data(names))
    )
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclasses.dataclass
class PresenceBeacon:
    """One host's periodic presence announcement."""

    owner: str            # host name
    address: str          # dotted quad
    incarnation: int      # bumped on every restart; last-writer-wins
    names: typing.Dict[str, str]
    signature: int

    idl_type = PRESENCE_BEACON_IDL

    @classmethod
    def signed(
        cls,
        owner: str,
        address: str,
        incarnation: int,
        names: typing.Mapping[str, str],
        secret: str = SEGMENT_SECRET,
    ) -> "PresenceBeacon":
        return cls(
            owner=owner,
            address=address,
            incarnation=incarnation,
            names=dict(names),
            signature=sign_beacon(owner, address, incarnation, names, secret),
        )

    def verify(self, secret: str = SEGMENT_SECRET) -> bool:
        return self.signature == sign_beacon(
            self.owner, self.address, self.incarnation, self.names, secret
        )

    def to_idl(self) -> dict:
        return {
            "owner": self.owner,
            "address": self.address,
            "incarnation": self.incarnation,
            "names": encode_data(self.names),
            "signature": self.signature,
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "PresenceBeacon":
        return cls(
            owner=typing.cast(str, value["owner"]),
            address=typing.cast(str, value["address"]),
            incarnation=typing.cast(int, value["incarnation"]),
            names=decode_data(typing.cast(str, value["names"])),
            signature=typing.cast(int, value["signature"]),
        )


@dataclasses.dataclass
class ProbeRequest:
    """Unicast liveness check before a suspect entry is evicted."""

    name: str

    idl_type = PROBE_REQUEST_IDL

    def to_idl(self) -> dict:
        return {"name": self.name}

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "ProbeRequest":
        return cls(name=typing.cast(str, value["name"]))


@dataclasses.dataclass
class ProbeResponse:
    """The suspect's answer: still here (or not advertising that name)."""

    name: str
    owner: str
    incarnation: int
    alive: bool

    idl_type = PROBE_RESPONSE_IDL

    def to_idl(self) -> dict:
        return {
            "name": self.name,
            "owner": self.owner,
            "incarnation": self.incarnation,
            "alive": self.alive,
        }

    @classmethod
    def from_idl(cls, value: typing.Mapping[str, object]) -> "ProbeResponse":
        return cls(
            name=typing.cast(str, value["name"]),
            owner=typing.cast(str, value["owner"]),
            incarnation=typing.cast(int, value["incarnation"]),
            alive=typing.cast(bool, value["alive"]),
        )
