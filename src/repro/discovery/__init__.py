"""Ad-hoc discovery: a name service with no servers at all.

The paper's HNS federates *administered* name services (BIND zones, a
Clearinghouse); the systems it explicitly declines — broadcast-based
location — reappear here as the natural fit for hosts that come and go
without administration.  Each host runs a :class:`BeaconService` that
periodically broadcasts a signed presence beacon (name set + address +
incarnation number); every listener keeps a passive
:class:`DiscoveryCache` whose entries expire on the earlier of a TTL
and a liveness watchdog, with last-writer-wins on incarnation.

:class:`DiscoveryNsm` puts that view behind the standard NSM ``query``
interface (query class ``AdHocService``), so ``HNS.find_nsm`` can hand
out an ad-hoc binding and :class:`~repro.core.nsm.NsmStub` dispatches
to it unchanged — heterogeneity extended to systems that were never
administered in the first place.  :class:`~repro.resolution.DiscoveryPolicy`
holds the knobs; ``DiscoveryPolicy.disabled()`` degrades the tier to the
one-shot broadcast locator the paper measured against.
"""

from repro.discovery.beacon import BeaconService, DiscoveryCache, DiscoveryEntry
from repro.discovery.messages import (
    BEACON_PORT,
    PresenceBeacon,
    ProbeRequest,
    ProbeResponse,
)
from repro.discovery.nsm import ADHOC_NS, DiscoveryNsm

__all__ = [
    "ADHOC_NS",
    "BEACON_PORT",
    "BeaconService",
    "DiscoveryCache",
    "DiscoveryEntry",
    "DiscoveryNsm",
    "PresenceBeacon",
    "ProbeRequest",
    "ProbeResponse",
]
