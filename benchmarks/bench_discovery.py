"""Ad-hoc discovery: what liveness-driven eviction buys under churn.

The beacon tier (:mod:`repro.discovery`) has no administered authority
to consult, so a cached binding is only as good as the last beacon
heard.  These benches put numbers on the two mechanisms the subsystem
adds over the one-shot broadcast locator:

1. the churn grid — hosts vanish silently and return with bumped
   incarnations while a client keeps resolving; per-entry watchdog
   deadlines (``watchdog=x3``) race the entry TTL (``ttl_only``) on how
   long dead bindings keep being served.  This is a thin definition
   over the registered ``discovery`` ablation grid: the workload body
   lives in :func:`repro.workloads.adhoc.drive_churn` and the knob
   registry in :data:`repro.harness.grids.DISCOVERY_GRID`;
2. partition/heal — how long after the segment heals until every
   host's membership digest agrees, as a function of beacon period.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import os

import pytest

from repro.harness import AblationStudy
from repro.harness.ablation import BASELINE_KEY
from repro.harness.grids import DISCOVERY_GRID
from repro.resolution import DiscoveryPolicy
from repro.workloads.adhoc import build_adhoc_world

from conftest import write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


# ----------------------------------------------------------------------
# 1. The churn grid: watchdog eviction vs waiting out the TTL
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="discovery")
def test_churn_staleness_grid(benchmark):
    """Staleness-after-vanish across churn rate x beacon period x
    watchdog.  With the watchdog on, a vanished owner's binding is
    probed and evicted within a few beacon periods; TTL-only eviction
    serves the dead binding until the entry expires."""
    study = AblationStudy(DISCOVERY_GRID, smoke=SMOKE)
    specs = study.expand()

    def measure():
        return study.execute(specs)

    results = benchmark(measure)
    failed = [r.spec.key for r in results if not r.ok]
    assert not failed, failed
    rows = {r.spec.key: r.metrics for r in results}
    write_bench_results(
        "discovery",
        "churn_staleness",
        {"runs": rows, "importance": study.importance(results)},
    )
    print(f"\nad-hoc churn grid ({len(results)} runs):")
    for key, row in rows.items():
        print(
            f"  {key:<24} {row['queries']:5.0f} queries, "
            f"staleness {row['staleness_after_vanish_ms']:6.0f} ms, "
            f"{row['stale_serves']:3.0f} stale serves, "
            f"{row['evictions']:3.0f} evictions, "
            f"avail {row['availability']:.3f}"
        )
    live = rows[BASELINE_KEY]
    ttl_only = rows["watchdog=ttl_only"]
    # Acceptance: liveness eviction beats TTL-only on how long queries
    # keep serving a vanished owner's binding, and on how many stale
    # answers escape overall.
    assert (
        live["staleness_after_vanish_ms"]
        < ttl_only["staleness_after_vanish_ms"]
    )
    assert live["stale_serves"] < ttl_only["stale_serves"]
    assert live["availability"] > ttl_only["availability"]
    # The watchdog actually fired: evictions happened before any TTL
    # could expire (the TTL-only arm never evicts mid-outage).
    assert live["evictions"] > 0


# ----------------------------------------------------------------------
# 2. Partition/heal: reconvergence time tracks the beacon period
# ----------------------------------------------------------------------
def _heal_convergence_ms(seed, beacon_period_ms):
    """Simulated ms from heal until every membership digest agrees."""
    world = build_adhoc_world(
        seed,
        policy=DiscoveryPolicy(
            beacon_period_ms=beacon_period_ms,
            entry_ttl_ms=60_000.0,
            watchdog_multiplier=3.0,
        ),
        host_count=6,
    )
    env = world.env
    left, right = world.hosts[:3], world.hosts[3:]
    world.beacons[1].announce("editor", 9_001)
    world.beacons[4].announce("printer", 9_004)

    def digests():
        return {b.cache.membership_digest() for b in world.beacons}

    converged_at = []

    def drive():
        yield env.timeout(6.0 * beacon_period_ms + 200.0)
        assert len(digests()) == 1, "views never converged before split"
        world.segment.partition(left, right)
        yield env.timeout(8.0 * beacon_period_ms)
        world.segment.heal()
        healed_at = env.now
        while len(digests()) != 1:
            yield env.timeout(50.0)
        converged_at.append(env.now - healed_at)

    env.run(until=env.process(drive(), name="bench.heal_driver"))
    return converged_at[0]


@pytest.mark.benchmark(group="discovery")
def test_partition_heal_convergence(benchmark):
    """After a heal, views reconcile as soon as every partitioned-away
    owner beacons again — so convergence time scales with the beacon
    period, and both sides end digest-identical without any
    administered authority."""
    periods = (250.0, 500.0, 2_000.0) if not SMOKE else (500.0, 2_000.0)

    def measure():
        return {
            f"period={period:.0f}ms": _heal_convergence_ms(71, period)
            for period in periods
        }

    table = benchmark(measure)
    write_bench_results("discovery", "partition_heal_convergence", table)
    print("\nheal-to-converged time by beacon period:")
    for label, ms in table.items():
        print(f"  {label:<14} {ms:7.0f} ms")
    values = [table[f"period={p:.0f}ms"] for p in periods]
    # Acceptance: every period reconverges within a handful of beacon
    # rounds, and faster beacons reconverge no slower than slow ones.
    for period, ms in zip(periods, values):
        assert ms <= 4.0 * period + 500.0, (period, ms)
    assert values[0] <= values[-1]
