"""Availability of the resolution path under faults.

The :class:`~repro.resolution.ResolutionPolicy` layer (retry with
jittered backoff, negative caching, serve-stale, circuit breakers) is
an extension beyond the paper's prototype; these benches measure what
it buys:

1. a wire-drop sweep — FindNSM availability and p50/p99 latency as the
   segment loses 0-20% of datagrams, with the default policy vs the
   single-pass prototype behaviour (``ResolutionPolicy.disabled()``);
2. a meta-server crash — resolution availability during an outage
   shorter than the stale window, with and without serve-stale, plus
   recovery once the server restarts.

Both run the resolution path over a *raw* datagram transport
(``retries=0``, no link-layer retransmission) so the policy layer is
the only fault tolerance in play — the ablation is not masked by
transport-level retries.
"""

import dataclasses

import pytest

from repro.core.hns import HNS
from repro.core.metastore import MetaStore
from repro.core.nsms import BindHostAddressNSM
from repro.harness import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, TransportTimeout
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    PolicySet,
    ResolutionPolicy,
)
from repro.workloads import build_testbed
from repro.workloads.scenarios import BIND_NS

from conftest import FIJI, run, write_bench_results


def percentile(samples, p):
    """Linear-interpolated percentile of a non-empty sample list."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    k = (len(ordered) - 1) * (p / 100.0)
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)


def idle(env, ms):
    """Advance simulated time by ``ms`` with nothing in flight."""

    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


def raw_wire_hns(testbed, policy):
    """An HNS whose whole resolution path runs over a raw datagram
    transport: no retransmission below the policy layer.

    Returns (hns, hostaddr_nsm) so callers can flush both caches.
    """
    raw = DatagramTransport(testbed.internet, name="rawudp", retries=0)
    metastore = MetaStore(
        testbed.client,
        raw,
        testbed.meta_endpoint,
        calibration=testbed.calibration,
        policies=PolicySet(resolution=policy),
    )
    hns = HNS(metastore, calibration=testbed.calibration)
    hostaddr = BindHostAddressNSM(
        testbed.client,
        BIND_NS,
        raw,
        testbed.public_endpoint,
        calibration=testbed.calibration,
    )
    hns.link_host_address_nsm(BIND_NS, hostaddr)
    return hns, hostaddr


def attempt_find(env, hns):
    """One FindNSM; returns (ok, elapsed_ms)."""

    def one():
        try:
            yield from hns.find_nsm(FIJI, "HRPCBinding")
            return True
        except TransportTimeout:
            return False

    start = env.now
    ok = run(env, one())
    return ok, env.now - start


# ----------------------------------------------------------------------
# 1. Wire-drop sweep
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fault_tolerance")
def test_drop_probability_sweep(benchmark):
    """Cold FindNSM needs six datagram exchanges; without retries the
    chance that all six survive collapses as the wire degrades, while
    the default policy confines the damage to the latency tail."""
    TRIALS = 100
    DROPS = (0.0, 0.05, 0.10, 0.20)
    CONFIGS = (
        ("default policy", DEFAULT_RESOLUTION_POLICY),
        ("no policy", ResolutionPolicy.disabled()),
    )

    def measure():
        table = {}
        for label, policy in CONFIGS:
            for drop in DROPS:
                testbed = build_testbed(seed=141)
                env = testbed.env
                hns, hostaddr = raw_wire_hns(testbed, policy)
                testbed.internet.segments[0].drop_probability = drop
                latencies = []
                failures = 0
                for _ in range(TRIALS):
                    hns.metastore.cache.clear()
                    assert hostaddr.cache is not None
                    hostaddr.cache.clear()
                    ok, elapsed = attempt_find(env, hns)
                    if ok:
                        latencies.append(elapsed)
                    else:
                        failures += 1
                table[(label, drop)] = (
                    1.0 - failures / TRIALS,
                    percentile(latencies, 50),
                    percentile(latencies, 99),
                    env.stats.counter("bind.meta@client.retries").value
                    + env.stats.counter("hns.find_nsm.retries").value,
                )
        return table

    table = benchmark(measure)
    write_bench_results("fault_tolerance", "drop_probability_sweep", table)
    print(f"\ncold FindNSM over a lossy wire ({TRIALS} trials/cell):")
    for label, _ in CONFIGS:
        for drop in DROPS:
            avail, p50, p99, retries = table[(label, drop)]
            print(
                f"  {label:<15} drop={drop:4.2f}: availability {avail:6.1%}, "
                f"p50 {p50:7.1f} ms, p99 {p99:7.1f} ms, retries {retries}"
            )
    # Acceptance: >=99% success at 10% drop with the default policy...
    assert table[("default policy", 0.10)][0] >= 0.99
    # ...while the prototype's single-pass behaviour loses roughly one
    # cold lookup in two (1 - 0.9^6).
    assert table[("no policy", 0.10)][0] <= 0.75
    assert table[("no policy", 0.20)][0] < table[("no policy", 0.10)][0]
    # A clean wire is unaffected either way, and the policy's retry cost
    # lives in the tail: p99 at 10% drop absorbs at least one timeout.
    assert table[("default policy", 0.0)][0] == 1.0
    assert table[("no policy", 0.0)][0] == 1.0
    assert (
        table[("default policy", 0.10)][2]
        > table[("default policy", 0.0)][1] + 400
    )


# ----------------------------------------------------------------------
# 2. Meta-server crash: serve-stale
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fault_tolerance")
def test_meta_outage_serve_stale(benchmark):
    """With the meta server down and every meta TTL expired, serve-stale
    keeps FindNSM answering (degraded, from expired entries) for the
    length of the stale window; without it every lookup fails until the
    server returns."""
    PROBES = 4
    # Short meta TTL so the outage outlives every fresh entry; trimmed
    # retry budget so each degraded lookup fails over to stale quickly.
    CALIBRATION = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    CONFIGS = (
        (
            "serve-stale",
            dataclasses.replace(
                DEFAULT_RESOLUTION_POLICY, attempts=2, call_timeout_ms=500.0
            ),
        ),
        ("no policy", ResolutionPolicy.disabled()),
    )

    def measure():
        out = {}
        for label, policy in CONFIGS:
            testbed = build_testbed(seed=142, calibration=CALIBRATION)
            env = testbed.env
            hns, _hostaddr = raw_wire_hns(testbed, policy)
            ok, _ = attempt_find(env, hns)  # warm every mapping
            assert ok
            testbed.meta_host.crash()
            idle(env, 6_000)  # past the meta TTL, inside the stale window
            successes = 0
            latencies = []
            for _ in range(PROBES):
                ok, elapsed = attempt_find(env, hns)
                if ok:
                    successes += 1
                    latencies.append(elapsed)
                idle(env, 2_000)
            stale_hits = env.stats.counter("bind.meta@client.stale_hits").value
            testbed.meta_host.restart()
            recovered, recovery_ms = attempt_find(env, hns)
            out[label] = {
                "availability": successes / PROBES,
                "stale_hits": stale_hits,
                "degraded_ms": percentile(latencies, 50),
                "recovered": recovered,
                "recovery_ms": recovery_ms,
            }
        return out

    out = benchmark(measure)
    write_bench_results("fault_tolerance", "meta_outage_serve_stale", out)
    print(f"\nmeta-server outage ({PROBES} FindNSMs while down, TTLs expired):")
    for label, r in out.items():
        degraded = (
            f"{r['degraded_ms']:7.1f} ms degraded"
            if r["availability"]
            else "       --        "
        )
        print(
            f"  {label:<12} availability {r['availability']:6.1%}, "
            f"stale hits {r['stale_hits']:3d}, {degraded}, "
            f"recovery {r['recovery_ms']:6.1f} ms"
        )
    # Acceptance: serve-stale masks an outage shorter than the stale
    # window completely; the prototype behaviour loses every lookup.
    assert out["serve-stale"]["availability"] == 1.0
    assert out["no policy"]["availability"] == 0.0
    # Each masked FindNSM re-serves its five expired meta mappings.
    assert out["serve-stale"]["stale_hits"] == 5 * PROBES
    assert out["no policy"]["stale_hits"] == 0
    # Both configurations reconverge once the server is back.
    assert out["serve-stale"]["recovered"] and out["no policy"]["recovered"]
