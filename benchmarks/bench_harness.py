"""The ablation engine itself: fan-out correctness and parallel speedup.

Two benches over :mod:`repro.harness.ablation`:

1. jobs-equality — the same grid executed at ``jobs=1`` and ``jobs=4``
   must serialize to byte-identical artifacts once wall-clock fields
   are stripped: the engine seeds each run from its spec identity and
   merges results in expansion order, never completion order;
2. parallel speedup — the full cartesian fast-path grid (20 specs in
   smoke shape) fanned over every core vs executed serially.  The
   >=2.5x bar is asserted on hosts with >=4 cores (CI runners); the
   measured ratio and core count are recorded either way in
   ``BENCH_harness.json``.
"""

import os

import pytest

from repro.harness.ablation import (
    AblationStudy,
    dump_payload,
    now_wall,
    strip_wall_clock,
    study_payload,
)
from repro.harness.grids import FAST_PATH_GRID

from conftest import write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Speedup bar for the parallel fan-out, asserted only where the host
#: has enough cores for the bar to be physical.
MIN_PARALLEL_SPEEDUP = 2.5
MIN_CORES_FOR_BAR = 4


def canonical(study, results, jobs):
    """The equality view of a study: canonical JSON, wall clock stripped."""
    payload = study_payload(study, results, jobs=jobs, wall_s=0.0)
    return dump_payload(strip_wall_clock(payload))


@pytest.mark.benchmark(group="harness")
def test_jobs_equality(benchmark):
    """A fanned execution must be indistinguishable from a serial one.

    Runs the real fast-path grid (smoke shape, so the bench stays
    CI-sized) serially and over a four-worker pool, then compares the
    canonical artifacts byte for byte."""
    study = AblationStudy(FAST_PATH_GRID, smoke=True)
    specs = study.expand()

    def measure():
        serial = study.execute(specs, jobs=1)
        fanned = study.execute(specs, jobs=4)
        return serial, fanned

    serial, fanned = benchmark(measure)
    assert all(r.ok for r in serial), [r.spec.key for r in serial if not r.ok]
    one = canonical(study, serial, jobs=1)
    four = canonical(study, fanned, jobs=4)
    assert one == four
    write_bench_results(
        "harness",
        "jobs_equality",
        {"specs": len(specs), "identical": True, "artifact_bytes": len(one)},
    )
    print(f"\njobs equality: {len(specs)} specs, {len(one)} canonical bytes")


@pytest.mark.benchmark(group="harness")
def test_parallel_speedup(benchmark):
    """Fanning the full cartesian grid over every core vs serial.

    The simulator is single-threaded and deterministic, so the grid is
    embarrassingly parallel; on a multi-core host the fan-out must buy
    at least :data:`MIN_PARALLEL_SPEEDUP`.  Single-core hosts record
    the measured ratio without asserting the bar."""
    study = AblationStudy(FAST_PATH_GRID, smoke=True)
    specs = study.expand(full_grid=True)
    assert len(specs) >= 8
    cpus = os.cpu_count() or 1
    jobs = min(cpus, len(specs))

    def measure():
        t0 = now_wall()
        serial = study.execute(specs, jobs=1)
        t1 = now_wall()
        fanned = study.execute(specs, jobs=jobs)
        t2 = now_wall()
        return serial, fanned, t1 - t0, t2 - t1

    serial, fanned, serial_s, fanned_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert all(r.ok for r in serial), [r.spec.key for r in serial if not r.ok]
    assert canonical(study, serial, 1) == canonical(study, fanned, jobs)
    speedup = serial_s / fanned_s if fanned_s > 0 else float("inf")
    write_bench_results(
        "harness",
        "parallel_speedup",
        {
            "specs": len(specs),
            "fanned_jobs": jobs,
            "host_cpus": cpus,
            "serial_seconds": round(serial_s, 3),
            "fanned_seconds": round(fanned_s, 3),
            "speedup": round(speedup, 2),
            "bar": MIN_PARALLEL_SPEEDUP,
            "bar_asserted": cpus >= MIN_CORES_FOR_BAR,
        },
    )
    print(
        f"\nparallel fan-out: {len(specs)} specs, serial {serial_s:.2f} s, "
        f"jobs={jobs} {fanned_s:.2f} s -> {speedup:.2f}x on {cpus} cores"
    )
    if cpus >= MIN_CORES_FOR_BAR:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (speedup, cpus, jobs)
