"""The production write path: what batching, leases, and NOTIFY buy.

The :class:`~repro.resolution.UpdatePolicy` layer is an extension
beyond the paper's prototype, whose dynamic updates travel one record
per round trip and whose only invalidation is TTL expiry.  Two benches
measure it against that baseline:

1. staleness window after a rebinding — a writer re-registers a context
   while a fleet of warm readers polls it; time from the write to each
   reader observing the new binding, pure TTL vs lease-capped TTLs vs
   NOTIFY-pushed IXFR deltas;
2. registration-storm batching — meta-server round trips for an
   N-writer registration storm, coalesced through the batched pipeline
   vs the prototype's one-update-per-record writes, swept over the
   storm size.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import dataclasses
import os

import pytest

from repro.harness import DEFAULT_CALIBRATION
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    PolicySet,
    UpdatePolicy,
)
from repro.workloads.scenarios import build_testbed

from conftest import run, write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The prototype pins a one-hour meta TTL; pure-TTL staleness at that
#: setting would dwarf the plot, so the ablation runs a 60 s TTL and
#: the ratios below speak for any setting.
CAL_FAST_TTL = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=60_000.0)

UPDATE_MODES = {
    "ttl": UpdatePolicy(),
    "lease": UpdatePolicy(invalidation="lease", lease_ms=5_000.0),
    "notify": UpdatePolicy(invalidation="notify"),
}


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


@pytest.mark.benchmark(group="update_path")
def test_staleness_window_ablation(benchmark):
    """How long readers serve a retracted binding, per invalidation
    mode.  Leases cap every advertised TTL to the lease remainder;
    NOTIFY pushes the delta, so staleness collapses to the debounce
    window plus the poll quantum."""
    READERS = 4 if SMOKE else 8
    POLL_MS = 250.0

    def staleness_for(mode):
        update = UPDATE_MODES[mode]
        testbed = build_testbed(
            seed=29, calibration=CAL_FAST_TTL, update_policy=update
        )
        env = testbed.env
        writer = testbed.make_metastore(
            testbed.agent_host,
            policies=PolicySet(
                resolution=DEFAULT_RESOLUTION_POLICY, update=update
            ),
        )
        readers = [
            testbed.make_metastore(testbed.client) for _ in range(READERS)
        ]
        observed = [None] * READERS
        change_at = {}

        def poller(index):
            reader = readers[index]
            while True:
                ns = yield from reader.context_to_name_service("storm")
                if ns == "ns-v2":
                    observed[index] = env.now - change_at["t"]
                    return
                yield env.timeout(POLL_MS)

        def refresh(reader):
            ns = yield from reader.context_to_name_service("storm")
            assert ns == "ns-v1"

        def drive():
            yield from writer.register_context("storm", "ns-v1")
            for reader in readers:
                yield from refresh(reader)
                if update.notify:
                    yield from reader.subscribe_invalidation()
            yield env.timeout(max(0.0, 9_500.0 - env.now))
            # Refresh every reader just before the rebinding so the
            # lease-capped TTLs are live when the write lands; in pure
            # TTL mode these are cache hits and change nothing.
            yield env.all_of([env.process(refresh(r)) for r in readers])
            yield env.timeout(250.0)
            change_at["t"] = env.now
            yield from writer.register_context("storm", "ns-v2")
            pollers = [env.process(poller(i)) for i in range(READERS)]
            yield env.all_of(pollers)

        requests_before = env.stats.counters().get("bind.meta-bind.requests", 0)
        run(env, drive())
        requests = (
            env.stats.counters().get("bind.meta-bind.requests", 0)
            - requests_before
        )
        assert all(s is not None for s in observed)
        return {
            "staleness_ms_max": max(observed),
            "staleness_ms_mean": sum(observed) / len(observed),
            "meta_requests": requests,
        }

    def measure():
        return {mode: staleness_for(mode) for mode in UPDATE_MODES}

    table = benchmark(measure)
    write_bench_results(
        "update_path",
        "staleness_window",
        {"readers": READERS, "poll_ms": POLL_MS, "modes": table},
    )
    ttl = table["ttl"]["staleness_ms_max"]
    lease = table["lease"]["staleness_ms_max"]
    notify = table["notify"]["staleness_ms_max"]
    # The acceptance bar: each invalidation mode cuts the staleness
    # window at least 5x against pure TTL expiry.
    assert ttl / lease >= 5.0, (ttl, lease)
    assert ttl / notify >= 5.0, (ttl, notify)
    assert notify < lease  # push beats polling the lease out


@pytest.mark.benchmark(group="update_path")
def test_registration_storm_batching(benchmark):
    """Meta-server round trips for an N-writer registration storm:
    client-side coalescing flushes the whole window as one batched
    exchange (a few, past the 64-op wire cap)."""
    SIZES = (8, 32) if SMOKE else (8, 32, 128)
    # Both arms get the same patient policy: at storm scale the
    # prototype's one-update-per-record writes queue long enough at the
    # server to blow the default 1 s call timeout and trip the breaker.
    # Round trips are the metric here, not latency-to-failure.
    patient = dataclasses.replace(
        DEFAULT_RESOLUTION_POLICY,
        call_timeout_ms=30_000.0,
        breaker_threshold=10_000,
    )

    def storm(n, batched):
        update = UpdatePolicy() if batched else UpdatePolicy.disabled()
        testbed = build_testbed(seed=31, update_policy=UpdatePolicy())
        env = testbed.env
        # The prototype's single-op updates ride the transport's own
        # retransmit clock; give it the same patience.
        testbed.udp.retry_timeout_ms = 60_000.0
        store = testbed.make_metastore(
            testbed.agent_host,
            policies=PolicySet(resolution=patient, update=update),
        )
        # Round trips = datagrams delivered to the meta server: the
        # legacy path sends one update per record, the pipeline one
        # UpdateBatchRequest per flushed window.
        before = env.stats.counters().get("net.udp.delivered", 0)
        started = env.now

        def drive():
            writers = [
                env.process(store.register_context(f"ctx{i}", "BIND-cs"))
                for i in range(n)
            ]
            yield env.all_of(writers)

        run(env, drive())
        counters = env.stats.counters()
        return {
            "ops": n,
            "round_trips": counters.get("net.udp.delivered", 0) - before,
            "coalesced": counters.get("hns.meta.coalesced_writes", 0),
            "storm_ms": env.now - started,
        }

    def measure():
        out = {}
        for n in SIZES:
            out[f"storm_{n}"] = {
                "batched": storm(n, batched=True),
                "prototype": storm(n, batched=False),
            }
        return out

    table = benchmark(measure)
    write_bench_results("update_path", "registration_storm", table)
    for n in SIZES:
        row = table[f"storm_{n}"]
        assert row["prototype"]["round_trips"] == n
        assert row["batched"]["round_trips"] < n
        if n >= 32:
            # Coalescing amortizes at least 4x at storm scale.
            assert row["batched"]["round_trips"] <= n / 4, row
