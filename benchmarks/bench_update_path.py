"""The production write path: what batching, leases, and NOTIFY buy.

The :class:`~repro.resolution.UpdatePolicy` layer is an extension
beyond the paper's prototype, whose dynamic updates travel one record
per round trip and whose only invalidation is TTL expiry.  The bench
is a thin definition over the registered ``update_path`` ablation grid
(:func:`repro.harness.grids.run_update_path`): every knob assignment
measures

1. the staleness window after a rebinding — a writer re-registers a
   context while a fleet of warm readers polls it; time from the write
   to each reader observing the new binding, pure TTL vs lease-capped
   TTLs vs NOTIFY-pushed IXFR deltas (the ``invalidation`` knob);
2. registration-storm batching — meta-server round trips for an
   N-writer registration storm, coalesced through the batched pipeline
   vs the prototype's one-update-per-record writes (the ``batch``
   knob).

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import os

import pytest

from repro.harness import AblationStudy
from repro.harness.ablation import BASELINE_KEY
from repro.harness.grids import UPDATE_GRID

from conftest import write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


@pytest.mark.benchmark(group="update_path")
def test_update_path_grid(benchmark):
    """How long readers serve a retracted binding per invalidation
    mode, and how many round trips a registration storm costs per
    batching mode.  Leases cap every advertised TTL to the lease
    remainder; NOTIFY pushes the delta, so staleness collapses to the
    debounce window plus the poll quantum; client-side coalescing
    flushes a whole storm window as one batched exchange."""
    study = AblationStudy(UPDATE_GRID, smoke=SMOKE)
    specs = study.expand()

    def measure():
        return study.execute(specs)

    results = benchmark(measure)
    failed = [r.spec.key for r in results if not r.ok]
    assert not failed, failed
    rows = {r.spec.key: r.metrics for r in results}
    write_bench_results(
        "update_path",
        "ablation_grid",
        {"runs": rows, "importance": study.importance(results)},
    )
    print(f"\nupdate-path grid ({len(results)} runs):")
    for key, row in rows.items():
        print(
            f"  {key:<20} staleness max {row['staleness_ms_max']:8.1f} ms, "
            f"storm {row['storm_round_trips']:3.0f} round trips "
            f"/ {row['storm_ops']:.0f} ops"
        )
    notify = rows[BASELINE_KEY]
    lease = rows["invalidation=lease"]
    ttl = rows["invalidation=ttl"]
    prototype = rows["batch=off"]
    # The staleness acceptance bar: each invalidation mode cuts the
    # window at least 5x against pure TTL expiry, and push beats
    # polling the lease out.
    assert ttl["staleness_ms_max"] / lease["staleness_ms_max"] >= 5.0
    assert ttl["staleness_ms_max"] / notify["staleness_ms_max"] >= 5.0
    assert notify["staleness_ms_max"] < lease["staleness_ms_max"]
    # The storm acceptance bar: the prototype pays one round trip per
    # record; the batched pipeline coalesces the window at least 4x.
    assert prototype["storm_round_trips"] == prototype["storm_ops"]
    assert notify["storm_round_trips"] < notify["storm_ops"]
    assert notify["storm_round_trips"] <= notify["storm_ops"] / 4.0
